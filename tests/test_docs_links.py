"""Every relative link in README.md and docs/*.md must resolve.

Thin wrapper over ``tools/check_docs_links.py`` so that tier-1 pytest
fails on a broken link without waiting for the CI step.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_docs_links", REPO_ROOT / "tools" / "check_docs_links.py"
)
check_docs_links = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_docs_links", check_docs_links)
_SPEC.loader.exec_module(check_docs_links)

DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]


def test_default_set_covers_readme_and_docs():
    assert check_docs_links.DEFAULT_FILES == ("README.md", "docs")
    assert DOC_FILES, "no docs found to check"


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_no_broken_links(path):
    broken = check_docs_links.broken_links(path)
    assert broken == [], f"broken links in {path.name}: {broken}"


def test_checker_finds_planted_broken_link(tmp_path):
    doc = tmp_path / "bad.md"
    doc.write_text(
        "# Anchor\n"
        "see [missing](no-such-file.md) and [ok](#anchor)\n"
        "```\n[not a link](also-missing.md)\n```\n"
        "[web](https://example.com) ![img](missing.png)\n"
    )
    broken = check_docs_links.broken_links(doc)
    assert [target for _, target in broken] == ["no-such-file.md", "missing.png"]


def test_cross_file_anchor_checked_against_headings(tmp_path):
    (tmp_path / "other.md").write_text("# Real Section\n")
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[ok](other.md#real-section) [bad](other.md#section) "
        "[gone](gone.md#section)\n"
    )
    assert [t for _, t in check_docs_links.broken_links(doc)] == [
        "other.md#section",
        "gone.md#section",
    ]


def test_in_page_anchor_checked_against_own_headings(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "# The `span` schema\n## Worked example\n## Worked example\n"
        "[a](#the-span-schema) [b](#worked-example) [c](#worked-example-1)\n"
        "[broken](#no-such-heading)\n"
    )
    assert [t for _, t in check_docs_links.broken_links(doc)] == [
        "#no-such-heading"
    ]


def test_anchor_on_non_markdown_target_ignored(tmp_path):
    (tmp_path / "data.json").write_text("{}")
    doc = tmp_path / "doc.md"
    doc.write_text("[x](data.json#whatever)\n")
    assert check_docs_links.broken_links(doc) == []


def test_slugify_matches_github_conventions():
    assert check_docs_links.slugify("The `span` schema") == "the-span-schema"
    assert check_docs_links.slugify("Eq. 5 (steady state)") == "eq-5-steady-state"
    assert check_docs_links.slugify("A_b  c") == "a_b--c"


def test_cli_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.md"
    good.write_text("[self](good.md)\n")
    assert check_docs_links.main([str(good)]) == 0
    assert "docs links OK" in capsys.readouterr().out

    bad = tmp_path / "bad.md"
    bad.write_text("[x](nope.md)\n")
    assert check_docs_links.main([str(bad)]) == 1
    assert "broken link" in capsys.readouterr().out
