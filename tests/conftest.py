"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Rect, RectArray


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


def random_rects(
    rng: np.random.Generator, n: int, dim: int = 2, max_side: float = 0.3
) -> RectArray:
    """``n`` random rectangles inside the unit cube."""
    sides = rng.random((n, dim)) * max_side
    lo = rng.random((n, dim)) * (1.0 - sides)
    return RectArray(lo, lo + sides)


def brute_force_intersecting(
    rects: list[Rect], query: Rect
) -> list[int]:
    """Indices of rectangles intersecting ``query`` (reference oracle)."""
    return [i for i, r in enumerate(rects) if r.intersects(query)]
