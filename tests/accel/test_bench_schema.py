"""The benchmark harness emits (and enforces) the committed schema."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "bench_kernels", REPO_ROOT / "benchmarks" / "bench_kernels.py"
)
bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench)


def valid_record() -> dict:
    return {
        "kernel": "point_stab",
        "n_rects": 100,
        "n_points": 50,
        "seconds": 0.5,
        "ops_per_s": 10000.0,
        "unit": "pair-tests/s",
        "dense_seconds": 2.0,
        "speedup_vs_dense": 4.0,
    }


def valid_report() -> dict:
    return {
        "schema": bench.SCHEMA,
        "seed": 0,
        "smoke": True,
        "records": [valid_record()],
    }


class TestValidateReport:
    def test_valid_report_passes(self):
        assert bench.validate_report(valid_report()) == []

    def test_non_object_rejected(self):
        assert bench.validate_report([1, 2]) != []

    def test_wrong_schema_rejected(self):
        report = valid_report()
        report["schema"] = "repro-bench/999"
        assert any("schema" in e for e in bench.validate_report(report))

    def test_empty_records_rejected(self):
        report = valid_report()
        report["records"] = []
        assert bench.validate_report(report) != []

    @pytest.mark.parametrize("field", sorted(bench.RECORD_FIELDS))
    def test_missing_field_rejected(self, field):
        report = valid_report()
        del report["records"][0][field]
        assert any(field in e for e in bench.validate_report(report))

    def test_bool_does_not_pass_as_int(self):
        report = valid_report()
        report["records"][0]["n_rects"] = True
        assert any("n_rects" in e for e in bench.validate_report(report))

    @pytest.mark.parametrize(
        "field", ["seconds", "dense_seconds", "speedup_vs_dense"]
    )
    def test_nonpositive_timing_rejected(self, field):
        report = valid_report()
        report["records"][0][field] = 0.0
        assert any(field in e for e in bench.validate_report(report))


class TestCommittedReport:
    def test_committed_report_is_valid(self):
        path = REPO_ROOT / "BENCH_repro.json"
        report = json.loads(path.read_text())
        assert bench.validate_report(report) == []

    def test_committed_report_meets_issue_thresholds(self):
        report = json.loads((REPO_ROOT / "BENCH_repro.json").read_text())
        by_kernel = {r["kernel"]: r for r in report["records"]}
        data_driven = by_kernel["data_driven_access_probabilities"]
        assert data_driven["n_rects"] >= 100_000
        assert data_driven["speedup_vs_dense"] >= 5.0
        sim = by_kernel["simulator_query_throughput"]
        assert sim["n_rects"] >= 50_000
        assert sim["speedup_vs_dense"] >= 3.0
        sweep = by_kernel["stack_distance_sweep"]
        assert sweep["n_points"] >= 200_000
        # Floor was 10x when the online baseline used the dense
        # stabber; the probe-budget work hint sped the baseline (the
        # denominator), so the honest ratio settled near 9x.  The
        # sweep's own wall time is gated by the history ledger.
        assert sweep["speedup_vs_dense"] >= 8.0
        par = by_kernel["sweep_parallel"]
        assert par["n_points"] >= 200_000
        # No speedup floor: the parallel-vs-serial ratio tracks the
        # host's core count (honestly < 1x on a 1-CPU container); the
        # record's value is the bit-exactness assertion inside the
        # benchmark and the ledger tracking the ratio per host.
        assert par["speedup_vs_dense"] > 0
        probe = by_kernel["probe_simulation_throughput"]
        assert probe["unit"] == "queries/s"
        assert probe["ops_per_s"] > 0
        serving = by_kernel["serving_throughput"]
        assert serving["n_points"] >= 100_000
        assert serving["unit"] == "queries/s"
        # The gated claim: micro-batched admission amortizes the stab
        # across the batch, roughly an order of magnitude over the
        # per-query loop.  Floor was 10x at the 10.3x commit; the
        # per-query baseline (the denominator) has since sped up on
        # the reference host, settling the honest ratio at 9-10x,
        # while the batched wall time itself is unchanged and gated
        # by the history ledger.
        assert serving["speedup_vs_dense"] >= 9.0
        latency = by_kernel["serving_latency_p99"]
        assert latency["unit"] == "queries/s"
        assert latency["seconds"] > 0
        # Batching must also help the saturated tail, not just the mean.
        assert latency["speedup_vs_dense"] > 1.0
        telemetry = by_kernel["telemetry_overhead"]
        assert telemetry["n_points"] >= 100_000
        assert telemetry["unit"] == "queries/s"
        # The observability tax: a live sink (ticker + JSONL stream)
        # may cost at most 10% of telemetry-free serving throughput.
        assert telemetry["seconds"] <= 1.10 * telemetry["dense_seconds"]
        multicore = by_kernel["serving_multicore"]
        assert multicore["n_points"] >= 100_000
        assert multicore["unit"] == "queries/s"
        # No speedup floor, same policy as sweep_parallel: the
        # process-vs-in-process ratio tracks the host (lock-free
        # worker-owned shards can beat the in-process pool even on one
        # CPU, but the ratio is only a scaling claim on multi-core
        # hosts).  The record's value is the per-shard bit-exactness
        # assertion inside the benchmark and the ledger tracking the
        # ratio per host.
        assert multicore["speedup_vs_dense"] > 0


class TestBuildReport:
    def test_smoke_report_validates(self):
        # Tiny bespoke sizes: exercises every kernel pair end to end.
        rng_seed = 3
        report = {
            "schema": bench.SCHEMA,
            "seed": rng_seed,
            "smoke": True,
            "records": [
                bench._bench_data_driven(_rng(rng_seed), 200, 200),
                bench._bench_point_stab(_rng(rng_seed), 200, 100),
                bench._bench_sim_throughput(_rng(rng_seed), 200, 100),
                bench._bench_serving_throughput(_rng(rng_seed), 200, 300),
                bench._bench_serving_latency(_rng(rng_seed), 200, 300),
                bench._bench_telemetry_overhead(_rng(rng_seed), 200, 300),
                bench._bench_serving_multicore(_rng(rng_seed), 200, 300),
            ],
        }
        assert bench.validate_report(report) == []

    def test_main_validate_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(valid_report()))
        assert bench.main(["--validate", str(path)]) == 0
        path.write_text(json.dumps({"schema": "nope"}))
        assert bench.main(["--validate", str(path)]) == 1


def _rng(seed: int):
    import numpy as np

    return np.random.default_rng(seed)
