"""Unit tests for the CSR containment structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import DenseStabber, SparseContainment
from tests.conftest import random_rects


class TestFromDense:
    def test_roundtrip(self, rng):
        matrix = rng.random((7, 5)) < 0.4
        sparse = SparseContainment.from_dense(matrix)
        assert np.array_equal(sparse.to_dense(), matrix)

    def test_shape_bookkeeping(self, rng):
        matrix = rng.random((6, 9)) < 0.3
        sparse = SparseContainment.from_dense(matrix)
        assert sparse.n_points == 6
        assert sparse.n_rects == 9
        assert sparse.nnz == int(matrix.sum())

    def test_rows_are_ascending_ids(self, rng):
        matrix = rng.random((10, 8)) < 0.5
        sparse = SparseContainment.from_dense(matrix)
        for q in range(10):
            row = sparse.row(q)
            assert np.array_equal(row, np.nonzero(matrix[q])[0])
            assert np.all(np.diff(row) > 0)

    def test_iter_rows_matches_row(self, rng):
        matrix = rng.random((5, 6)) < 0.5
        sparse = SparseContainment.from_dense(matrix)
        rows = list(sparse.iter_rows())
        assert len(rows) == 5
        for q, ids in enumerate(rows):
            assert np.array_equal(ids, sparse.row(q))

    def test_empty_matrix(self):
        sparse = SparseContainment.from_dense(np.zeros((0, 4), dtype=bool))
        assert sparse.n_points == 0
        assert sparse.nnz == 0
        assert list(sparse.iter_rows()) == []

    def test_all_true_matrix(self):
        sparse = SparseContainment.from_dense(np.ones((3, 4), dtype=bool))
        assert sparse.nnz == 12
        for q in range(3):
            assert np.array_equal(sparse.row(q), np.arange(4))


class TestDenseStabber:
    def test_matches_contains_points(self, rng):
        rects = random_rects(rng, 20)
        points = rng.random((15, 2))
        sparse = DenseStabber(rects).stab(points)
        assert np.array_equal(sparse.to_dense(), rects.contains_points(points))

    def test_row_out_of_range(self, rng):
        sparse = DenseStabber(random_rects(rng, 3)).stab(rng.random((2, 2)))
        with pytest.raises(IndexError):
            sparse.row(2)
