"""Property-based equivalence: sparse kernels == dense oracles, exactly.

The accel layer's contract is *bit-exactness*: the grid stabber and the
sorted range counter must return precisely what the dense containment
matrix returns, on every input — including boundary-touching points
(closed boundaries), zero-area slivers, and duplicate rectangles.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.accel import (
    DenseStabber,
    GridStabbingIndex,
    SortedRangeCounter,
    count_points_inside,
    make_stabber,
)
from repro.geometry import RectArray
from tests.conftest import random_rects

unit_floats = st.floats(min_value=0.0, max_value=1.0, width=64)


@st.composite
def rect_arrays(draw, max_n: int = 16, dim: int = 2) -> RectArray:
    """Random boxes in the unit cube; spans may be zero (slivers)."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    lo = draw(arrays(np.float64, (n, dim), elements=unit_floats))
    span = draw(arrays(np.float64, (n, dim), elements=unit_floats))
    return RectArray(lo, np.minimum(lo + span, 1.0))


@st.composite
def points_arrays(draw, max_n: int = 16, dim: int = 2) -> np.ndarray:
    n = draw(st.integers(min_value=1, max_value=max_n))
    return draw(arrays(np.float64, (n, dim), elements=unit_floats))


def assert_same_stab(rects: RectArray, points: np.ndarray) -> None:
    grid = GridStabbingIndex(rects).stab(points)
    dense = DenseStabber(rects).stab(points)
    assert np.array_equal(grid.indptr, dense.indptr)
    assert np.array_equal(grid.ids, dense.ids)


class TestGridEqualsDense:
    @settings(max_examples=60)
    @given(rect_arrays(), points_arrays())
    def test_random(self, rects, points):
        assert_same_stab(rects, points)

    @settings(max_examples=40)
    @given(rect_arrays())
    def test_boundary_touching_points(self, rects):
        # Query exactly the corners: closed boundaries must count.
        points = np.concatenate([rects.lo, rects.hi])
        assert_same_stab(rects, points)

    @settings(max_examples=40)
    @given(points_arrays(max_n=8))
    def test_zero_area_rects(self, points):
        # Degenerate slivers: lo == hi, containable only by exact hits.
        rects = RectArray(points, points.copy())
        queries = np.concatenate([points, points + 1e-9])
        assert_same_stab(rects, queries)

    @settings(max_examples=40)
    @given(rect_arrays(max_n=6), points_arrays())
    def test_duplicate_rects(self, rects, points):
        tiled = RectArray(
            np.tile(rects.lo, (3, 1)), np.tile(rects.hi, (3, 1))
        )
        assert_same_stab(tiled, points)

    def test_large_random(self, rng):
        rects = random_rects(rng, 5000, max_side=0.05)
        points = rng.random((2000, 2))
        assert_same_stab(rects, points)

    def test_pathological_full_cover(self, rng):
        # Every rect covers the whole square: the entry cap must
        # coarsen the grid rather than explode, and stay exact.
        n = 64
        rects = RectArray(np.zeros((n, 2)), np.ones((n, 2)))
        assert_same_stab(rects, rng.random((50, 2)))

    def test_auto_mode_picks_dense_for_small_sets(self, rng):
        stabber = make_stabber(random_rects(rng, 10), mode="auto")
        assert isinstance(stabber, DenseStabber)

    def test_auto_mode_picks_grid_for_large_sets(self, rng):
        stabber = make_stabber(random_rects(rng, 5000), mode="auto")
        assert isinstance(stabber, GridStabbingIndex)

    def test_auto_mode_point_hint_promotes_to_grid(self, rng):
        # A small rect set stabbed by enough points favours the grid:
        # dense work is rects x points, grid work is near-linear.
        rects = random_rects(rng, 500)
        assert isinstance(
            make_stabber(rects, mode="auto", n_points=200_000),
            GridStabbingIndex,
        )
        assert isinstance(
            make_stabber(rects, mode="auto", n_points=1_000),
            DenseStabber,
        )

    def test_point_hint_never_overrides_explicit_mode(self, rng):
        rects = random_rects(rng, 500)
        assert isinstance(
            make_stabber(rects, mode="dense", n_points=200_000),
            DenseStabber,
        )


def assert_same_count(rects: RectArray, points: np.ndarray) -> None:
    fast = count_points_inside(rects, points, method="sorted")
    dense = count_points_inside(rects, points, method="dense")
    assert fast.dtype == dense.dtype
    assert np.array_equal(fast, dense)


class TestSortedCountEqualsDense:
    @settings(max_examples=60)
    @given(rect_arrays(), points_arrays())
    def test_random(self, rects, points):
        assert_same_count(rects, points)

    @settings(max_examples=40)
    @given(rect_arrays())
    def test_boundary_touching_points(self, rects):
        points = np.concatenate([rects.lo, rects.hi])
        assert_same_count(rects, points)

    @settings(max_examples=40)
    @given(points_arrays(max_n=8))
    def test_zero_area_rects(self, points):
        rects = RectArray(points, points.copy())
        assert_same_count(rects, np.concatenate([points, points + 1e-9]))

    @settings(max_examples=40)
    @given(rect_arrays(max_n=6), points_arrays())
    def test_duplicate_rects(self, rects, points):
        tiled = RectArray(
            np.tile(rects.lo, (3, 1)), np.tile(rects.hi, (3, 1))
        )
        assert_same_count(tiled, points)

    @settings(max_examples=40)
    @given(rect_arrays(max_n=6))
    def test_duplicate_points(self, rects):
        points = np.tile(rects.centers(), (4, 1))
        assert_same_count(rects, points)

    def test_large_random(self, rng):
        rects = random_rects(rng, 3000)
        points = rng.random((4097, 2))  # off power-of-two on purpose
        assert_same_count(rects, points)

    def test_1d(self, rng):
        lo = rng.random((20, 1))
        rects = RectArray(lo, lo + rng.random((20, 1)) * 0.2)
        assert_same_count(rects, rng.random((33, 1)))

    def test_reused_counter_matches(self, rng):
        rects = random_rects(rng, 50)
        points = rng.random((200, 2))
        counter = SortedRangeCounter(points)
        fast = count_points_inside(rects, points, counter=counter)
        assert np.array_equal(
            fast, count_points_inside(rects, points, method="dense")
        )
