"""End-to-end: ``simulate()`` is backend-independent and deterministic.

The accel layer must be invisible in the results — the same seed must
produce an *identical* :class:`SimulationResult` whether containment
runs on the grid index or the dense matrix, down to trace entries and
per-batch buffer counters.
"""

from __future__ import annotations

import pytest

from repro.queries import (
    DataDrivenWorkload,
    MixedWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)
from repro.packing import pack_description
from repro.simulation import simulate
from tests.conftest import random_rects


def assert_identical_results(result_a, result_b) -> None:
    assert result_a.disk_accesses == result_b.disk_accesses
    assert result_a.node_accesses == result_b.node_accesses
    assert result_a.warmup_queries == result_b.warmup_queries
    assert result_a.buffer_filled == result_b.buffer_filled
    assert result_a.trace == result_b.trace
    assert len(result_a.batch_stats) == len(result_b.batch_stats)
    for stats_a, stats_b in zip(result_a.batch_stats, result_b.batch_stats):
        assert stats_a.requests == stats_b.requests
        assert stats_a.hits == stats_b.hits
        assert stats_a.misses == stats_b.misses
        assert stats_a.evictions == stats_b.evictions


def run_both(desc, workload, **kwargs):
    common = dict(
        buffer_size=20, n_batches=3, batch_size=300, trace_last=5, rng=7
    )
    common.update(kwargs)
    grid = simulate(desc, workload, accel="grid", **common)
    dense = simulate(desc, workload, accel="dense", **common)
    return grid, dense


@pytest.fixture
def desc(rng):
    return pack_description(random_rects(rng, 400), capacity=8, ordering="hs")


class TestBackendEquivalence:
    def test_point_workload(self, desc):
        assert_identical_results(*run_both(desc, UniformPointWorkload()))

    def test_region_workload(self, desc):
        workload = UniformRegionWorkload((0.05, 0.05))
        assert_identical_results(*run_both(desc, workload))

    def test_data_driven_workload(self, desc, rng):
        workload = DataDrivenWorkload(rng.random((300, 2)), (0.02, 0.02))
        assert_identical_results(*run_both(desc, workload))

    def test_mixed_workload(self, desc):
        workload = MixedWorkload(
            [
                (0.7, UniformPointWorkload()),
                (0.3, UniformRegionWorkload((0.1, 0.1))),
            ]
        )
        assert_identical_results(*run_both(desc, workload))

    def test_pinned_levels(self, desc):
        grid, dense = run_both(desc, UniformPointWorkload(), pinned_levels=1)
        assert_identical_results(grid, dense)


class TestSeedDeterminism:
    def test_same_seed_same_result(self, desc):
        workload = UniformRegionWorkload((0.05, 0.05))
        first = simulate(
            desc, workload, buffer_size=20,
            n_batches=3, batch_size=300, trace_last=5, rng=7, accel="auto",
        )
        second = simulate(
            desc, workload, buffer_size=20,
            n_batches=3, batch_size=300, trace_last=5, rng=7, accel="auto",
        )
        assert_identical_results(first, second)

    def test_bad_accel_mode_rejected(self, desc):
        with pytest.raises(ValueError):
            simulate(
                desc, UniformPointWorkload(), buffer_size=20,
                n_batches=2, batch_size=100, accel="quantum",
            )
