"""``segmented_left_rank`` and ``prefix_rank``: oracles and contracts.

Both kernels back the offline LRU stack-distance engine
(:mod:`repro.simulation.stackdist`): ``prefix_rank`` is the global
dominance oracle, ``segmented_left_rank`` the per-segment fast path.
Each must match a brute-force count exactly on every input — ranks
feed miss counts, so an off-by-one anywhere corrupts a simulation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accel import SortedRangeCounter, segmented_left_rank
from repro.geometry import GeometryError


def brute_left_rank(values: np.ndarray, segment: int) -> np.ndarray:
    """O(n·segment) reference: count ``<=`` predecessors per segment."""
    n = values.shape[0]
    out = np.zeros(n, dtype=np.int64)
    for i in range(n):
        start = (i // segment) * segment
        out[i] = int(np.sum(values[start:i] <= values[i]))
    return out


int_arrays = st.lists(
    st.integers(min_value=-50, max_value=50), min_size=0, max_size=400
)


class TestSegmentedLeftRank:
    @settings(max_examples=80)
    @given(
        int_arrays,
        st.sampled_from([1, 2, 4, 8]),
        st.integers(min_value=1, max_value=6),
    )
    def test_matches_brute_force(self, values, block, mult):
        v = np.asarray(values, dtype=np.int64)
        segment = block * mult
        got = segmented_left_rank(v, segment, block=block)
        assert got.dtype == np.int64
        assert np.array_equal(got, brute_left_rank(v, segment))

    @settings(max_examples=40)
    @given(int_arrays)
    def test_default_block(self, values):
        v = np.asarray(values, dtype=np.int64)
        got = segmented_left_rank(v, 128)
        assert np.array_equal(got, brute_left_rank(v, 128))

    def test_empty(self):
        out = segmented_left_rank(np.empty(0, dtype=np.int64), 64)
        assert out.shape == (0,)

    def test_ties_count(self):
        # Equal earlier values are included (``<=`` semantics).
        v = np.array([5, 5, 5, 5], dtype=np.int64)
        assert segmented_left_rank(v, 64).tolist() == [0, 1, 2, 3]

    def test_segment_boundaries_reset(self):
        v = np.array([0, 1, 2, 3], dtype=np.int64)
        assert segmented_left_rank(v, 2, block=2).tolist() == [0, 1, 0, 1]

    def test_unsigned_dtype_accepted(self):
        v = np.array([3, 1, 2, 2], dtype=np.uint32)
        assert np.array_equal(
            segmented_left_rank(v, 64), brute_left_rank(v.astype(np.int64), 64)
        )

    @pytest.mark.parametrize(
        "values, segment, kwargs",
        [
            (np.zeros((2, 2), dtype=np.int64), 64, {}),
            (np.zeros(4, dtype=np.float64), 64, {}),
            (np.zeros(4, dtype=np.int64), 0, {}),
            (np.zeros(4, dtype=np.int64), 96, {"block": 64}),
            (np.zeros(4, dtype=np.int64), 64, {"block": 0}),
        ],
    )
    def test_rejects_bad_inputs(self, values, segment, kwargs):
        with pytest.raises(GeometryError):
            segmented_left_rank(values, segment, **kwargs)


class TestPrefixRank:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-20, max_value=20),
                st.integers(min_value=-20, max_value=20),
            ),
            min_size=1,
            max_size=60,
        ),
        st.booleans(),
    )
    def test_matches_brute_force(self, pts, strict):
        points = np.asarray(pts, dtype=np.float64)
        counter = SortedRangeCounter(points)
        ys = points[np.argsort(points[:, 0], kind="stable"), 1]
        n = points.shape[0]
        k = np.arange(n + 1, dtype=np.int64)
        y = np.linspace(-25, 25, n + 1)
        got = counter.prefix_rank(k, y, strict=strict)
        for i in range(n + 1):
            head = ys[: k[i]]
            want = np.sum(head < y[i]) if strict else np.sum(head <= y[i])
            assert got[i] == want

    def test_rejects_out_of_range_prefix(self):
        counter = SortedRangeCounter(np.zeros((3, 2)))
        with pytest.raises(GeometryError):
            counter.prefix_rank(np.array([4]), np.array([0.0]))
        with pytest.raises(GeometryError):
            counter.prefix_rank(np.array([-1]), np.array([0.0]))

    def test_rejects_shape_mismatch(self):
        counter = SortedRangeCounter(np.zeros((3, 2)))
        with pytest.raises(GeometryError):
            counter.prefix_rank(np.array([1, 2]), np.array([0.0]))

    def test_rejects_non_2d_counter(self):
        counter = SortedRangeCounter(np.zeros((3, 1)))
        with pytest.raises(GeometryError):
            counter.prefix_rank(np.array([1]), np.array([0.0]))
