"""Integration: the example scripts must run and tell their stories."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "model:" in out
    assert "simulation:" in out
    assert "model error:" in out


def test_gis_workload_fast():
    out = run_example("gis_workload.py", "--fast")
    assert "ranking by nodes visited" in out
    assert "ranking by disk accesses" in out


def test_cfd_workload_fast():
    out = run_example("cfd_workload.py", "--fast")
    assert "buffer needed" in out
    assert "uniform" in out and "data-driven" in out


def test_buffer_sizing_fast():
    out = run_example("buffer_sizing.py", "--fast")
    assert "knee (point queries)" in out
    assert "ED point" in out


def test_pinning_advisor_fast():
    out = run_example("pinning_advisor.py", "--fast")
    assert "advice:" in out
    assert "pinnable" in out


def test_update_heavy_workload_fast():
    out = run_example("update_heavy_workload.py", "--fast")
    assert "always-dynamic R*" in out
    assert "nightly repack" in out


def test_all_examples_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.startswith('"""'), script
        assert '__name__ == "__main__"' in text, script
