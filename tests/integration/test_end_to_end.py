"""Integration: full pipelines through the public API."""

import numpy as np
import pytest

import repro
from repro import (
    DataDrivenWorkload,
    Rect,
    RectArray,
    TreeDescription,
    UniformPointWorkload,
    buffer_model,
    check_tree,
    load_description,
    load_tree,
    simulate,
    synthetic_region,
    sweep_pinning,
)


def test_public_api_surface():
    """Everything advertised in __all__ must resolve."""
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_quickstart_pipeline():
    data = synthetic_region(5_000, rng=42)
    tree = load_tree("hs", data, capacity=50)
    check_tree(tree)

    query = Rect((0.4, 0.4), (0.45, 0.45))
    result = tree.query(query)
    # Cross-check against the raw data.
    expected = int(data.intersects_rect(query).sum())
    assert len(result.items) == expected

    desc = TreeDescription.from_tree(tree)
    workload = UniformPointWorkload()
    predicted = buffer_model(desc, workload, buffer_size=20)
    measured = simulate(desc, workload, 20, n_batches=5, batch_size=2000)
    assert predicted.disk_accesses == pytest.approx(
        measured.disk_accesses.mean, rel=0.1
    )


def test_dynamic_tree_can_be_evaluated_like_packed_ones():
    """The paper's point: the model evaluates *any* update operation.
    Build a tree dynamically, mutate it, and run the model on the
    result."""
    data = synthetic_region(2_000, rng=7)
    tree = load_tree("tat", data, capacity=25)
    # Delete a third of the data, then insert fresh rectangles.
    rects = list(data)
    for i in range(0, 2000, 3):
        assert tree.delete(rects[i], i)
    extra = synthetic_region(500, rng=8)
    for j, r in enumerate(extra):
        tree.insert(r, 2000 + j)
    check_tree(tree)

    desc = TreeDescription.from_tree(tree)
    result = buffer_model(desc, UniformPointWorkload(), 30)
    assert result.disk_accesses > 0
    assert result.disk_accesses <= result.node_accesses


def test_update_operations_degrade_packed_quality():
    """Deleting and reinserting through the dynamic path makes a packed
    tree worse — measurable through the model, as the paper intends."""
    data = synthetic_region(4_000, rng=11)
    fresh = load_description("hs", data, 25)
    fresh_cost = buffer_model(fresh, UniformPointWorkload(), 30).disk_accesses

    tree = load_tree("hs", data, capacity=25)
    rects = list(data)
    rng = np.random.default_rng(12)
    victims = rng.choice(4000, size=1500, replace=False)
    for i in victims:
        assert tree.delete(rects[int(i)], int(i))
    for i in victims:
        tree.insert(rects[int(i)], int(i))
    check_tree(tree)
    churned = TreeDescription.from_tree(tree)
    churned_cost = buffer_model(
        churned, UniformPointWorkload(), 30
    ).disk_accesses
    assert churned_cost > fresh_cost


def test_pinning_sweep_pipeline():
    data = synthetic_region(6_000, rng=3)
    desc = load_description("hs", data, 10)
    sweep = sweep_pinning(desc, UniformPointWorkload(), buffer_size=60)
    assert len(sweep.results) >= 2
    assert sweep.best.disk_accesses <= sweep.results[0].disk_accesses


def test_data_driven_end_to_end():
    data = synthetic_region(3_000, rng=5)
    desc = load_description("str", data, 25)
    workload = DataDrivenWorkload.from_rects(data, extents=(0.02, 0.02))
    predicted = buffer_model(desc, workload, 40)
    measured = simulate(desc, workload, 40, n_batches=5, batch_size=2000)
    assert predicted.disk_accesses == pytest.approx(
        measured.disk_accesses.mean, rel=0.15
    )


def test_three_dimensional_pipeline():
    """The model generalises to d > 2 (paper: 'straightforward')."""
    rng = np.random.default_rng(21)
    lo = rng.random((3_000, 3)) * 0.95
    data = RectArray(lo, lo + rng.random((3_000, 3)) * 0.05)
    desc = load_description("hs", data, 25)
    workload = UniformPointWorkload(dim=3)
    predicted = buffer_model(desc, workload, 30)
    measured = simulate(desc, workload, 30, n_batches=5, batch_size=2000)
    assert predicted.disk_accesses == pytest.approx(
        measured.disk_accesses.mean, rel=0.12
    )


def test_io_roundtrip_preserves_model_results(tmp_path):
    from repro.datasets import load_rects, save_rects

    data = synthetic_region(1_000, rng=17)
    path = tmp_path / "data.txt"
    save_rects(path, data)
    reloaded = load_rects(path)
    a = buffer_model(
        load_description("hs", data, 10), UniformPointWorkload(), 20
    )
    b = buffer_model(
        load_description("hs", reloaded, 10), UniformPointWorkload(), 20
    )
    assert a.disk_accesses == b.disk_accesses
