"""Integration: the paper's headline validation, at test scale.

The buffer model must track the LRU simulation for every combination
of loader, workload, and buffer size — this is Table 1's claim, run
here on smaller trees so it stays fast enough for the unit suite (the
full-scale version lives in benchmarks/test_table1_validation.py).
"""

import pytest

from repro.model import buffer_model
from repro.packing import load_description
from repro.queries import (
    DataDrivenWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)
from repro.simulation import simulate
from repro.datasets import synthetic_region, tiger_like


@pytest.fixture(scope="module")
def region_data():
    return synthetic_region(20_000, rng=101)


@pytest.fixture(scope="module")
def tiger_data():
    return tiger_like(15_000, rng=101)


@pytest.mark.parametrize("loader", ["nx", "hs", "str"])
@pytest.mark.parametrize("buffer_size", [20, 80])
def test_point_queries_agree(region_data, loader, buffer_size):
    desc = load_description(loader, region_data, 50)
    workload = UniformPointWorkload()
    predicted = buffer_model(desc, workload, buffer_size).disk_accesses
    measured = simulate(
        desc, workload, buffer_size, n_batches=10, batch_size=4000, rng=5
    ).disk_accesses
    assert predicted == pytest.approx(measured.mean, rel=0.06)


def test_region_queries_agree(region_data):
    desc = load_description("hs", region_data, 50)
    workload = UniformRegionWorkload((0.05, 0.05))
    predicted = buffer_model(desc, workload, 60).disk_accesses
    measured = simulate(
        desc, workload, 60, n_batches=10, batch_size=4000, rng=6
    ).disk_accesses
    assert predicted == pytest.approx(measured.mean, rel=0.08)


def test_data_driven_queries_agree(tiger_data):
    desc = load_description("hs", tiger_data, 50)
    workload = DataDrivenWorkload.from_rects(tiger_data)
    predicted = buffer_model(desc, workload, 60).disk_accesses
    measured = simulate(
        desc, workload, 60, n_batches=10, batch_size=4000, rng=7
    ).disk_accesses
    assert predicted == pytest.approx(measured.mean, rel=0.08)


def test_pinned_model_agrees_with_pinned_simulation(region_data):
    desc = load_description("hs", region_data, 25)
    workload = UniformPointWorkload()
    pinned_pages = desc.pages_in_top_levels(2)
    buffer_size = max(40, 2 * pinned_pages)
    predicted = buffer_model(
        desc, workload, buffer_size, pinned_levels=2
    ).disk_accesses
    measured = simulate(
        desc, workload, buffer_size, pinned_levels=2,
        n_batches=10, batch_size=4000, rng=8,
    ).disk_accesses
    assert predicted == pytest.approx(measured.mean, rel=0.08)


def test_node_access_expectation_is_exact(region_data):
    """Unlike ED, the bufferless expectation has no approximation: the
    simulated mean must converge to it within CI noise."""
    from repro.model import expected_node_accesses

    desc = load_description("hs", region_data, 50)
    workload = UniformPointWorkload()
    expected = expected_node_accesses(desc, workload)
    measured = simulate(
        desc, workload, 10, n_batches=20, batch_size=4000, rng=9
    ).node_accesses
    assert abs(measured.mean - expected) < 4 * max(measured.half_width, 1e-3)


def test_model_tracks_simulation_across_buffer_sweep(region_data):
    """The whole curve, not just single points: model and simulation
    must rank buffer sizes identically and stay within a few percent."""
    desc = load_description("nx", region_data, 50)
    workload = UniformPointWorkload()
    model_curve = []
    sim_curve = []
    for b in (10, 40, 160):
        model_curve.append(buffer_model(desc, workload, b).disk_accesses)
        sim_curve.append(
            simulate(
                desc, workload, b, n_batches=8, batch_size=3000, rng=10
            ).disk_accesses.mean
        )
    assert model_curve == sorted(model_curve, reverse=True)
    assert sim_curve == sorted(sim_curve, reverse=True)
    for m, s in zip(model_curve, sim_curve):
        assert m == pytest.approx(s, rel=0.10)
