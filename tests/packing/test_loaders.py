"""Tests for the loader facade and the TAT loader."""

import pytest

from repro.geometry import GeometryError, Rect
from repro.packing import (
    LOADERS,
    hs_description,
    hs_tree,
    load_description,
    load_tree,
    nx_description,
    str_description,
    tat_description,
    tat_tree,
)
from repro.rtree import TreeDescription, check_tree
from tests.conftest import random_rects


class TestFacade:
    @pytest.mark.parametrize("name", LOADERS)
    def test_load_tree_all_loaders(self, name, rng):
        arr = random_rects(rng, 150)
        tree = load_tree(name, arr, 10)
        check_tree(tree)
        assert len(tree) == 150
        assert sorted(tree.search(Rect((0, 0), (1, 1)))) == list(range(150))

    @pytest.mark.parametrize("name", LOADERS)
    def test_load_description_all_loaders(self, name, rng):
        arr = random_rects(rng, 150)
        desc = load_description(name, arr, 10)
        assert isinstance(desc, TreeDescription)
        assert desc.node_counts[0] == 1
        assert desc.levels[0].rect(0) == arr.mbr()

    def test_unknown_loader(self, rng):
        arr = random_rects(rng, 10)
        with pytest.raises(ValueError):
            load_tree("rplus", arr, 10)
        with pytest.raises(ValueError):
            load_description("rplus", arr, 10)

    def test_packed_descriptions_differ_between_loaders(self, rng):
        arr = random_rects(rng, 400)
        descs = {
            name: load_description(name, arr, 10) for name in ("nx", "hs", "str")
        }
        areas = {name: d.total_area() for name, d in descs.items()}
        # All loaders pack the same rectangles, so total node counts
        # match, but their MBR geometry must differ.
        assert len(set(areas.values())) == 3

    def test_named_helpers_agree_with_facade(self, rng):
        arr = random_rects(rng, 200)
        assert nx_description(arr, 10).levels == load_description("nx", arr, 10).levels
        assert hs_description(arr, 10).levels == load_description("hs", arr, 10).levels
        assert str_description(arr, 10).levels == load_description("str", arr, 10).levels


class TestTAT:
    def test_builds_valid_tree(self, rng):
        arr = random_rects(rng, 300)
        tree = tat_tree(arr, 10)
        check_tree(tree)
        assert len(tree) == 300

    def test_description_matches_tree(self, rng):
        arr = random_rects(rng, 200)
        desc = tat_description(arr, 8)
        tree = tat_tree(arr, 8)
        assert desc.node_counts == TreeDescription.from_tree(tree).node_counts

    def test_linear_split_variant(self, rng):
        arr = random_rects(rng, 200)
        tree = tat_tree(arr, 8, split="linear")
        check_tree(tree)
        assert len(tree) == 200

    def test_accepts_rect_list(self):
        rects = [Rect((i * 0.1, 0), (i * 0.1 + 0.05, 0.05)) for i in range(9)]
        tree = tat_tree(rects, 4)
        assert len(tree) == 9

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            tat_tree([], 4)

    def test_items_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            tat_tree(random_rects(rng, 5), 4, items=["a", "b"])

    def test_tat_worse_or_equal_packing_quality(self, rng):
        """The paper: TAT 'has worse space utilization' — it uses more
        nodes than a packed tree of the same capacity."""
        arr = random_rects(rng, 500, max_side=0.02)
        tat_nodes = tat_description(arr, 10).total_nodes
        hs_nodes = hs_description(arr, 10).total_nodes
        assert tat_nodes > hs_nodes
