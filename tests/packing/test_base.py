"""Tests for the generic bottom-up packer."""

import math

import numpy as np
import pytest

from repro.geometry import GeometryError, Rect, RectArray
from repro.packing import pack_description, pack_tree, resolve_ordering
from repro.rtree import TreeDescription, check_tree
from tests.conftest import random_rects


class TestPackDescription:
    def test_node_counts_follow_ceil_division(self, rng):
        arr = random_rects(rng, 1234)
        desc = pack_description(arr, 10, "hs")
        # 1234 -> 124 -> 13 -> 2 -> 1
        assert desc.node_counts == (1, 2, 13, 124)

    def test_paper_table2_shape(self, rng):
        """250,000 points at capacity 25 give 10000/400/16/1 (paper §5.5)."""
        pts = rng.random((250_000, 2))
        desc = pack_description(RectArray.from_points(pts), 25, "hs")
        assert desc.node_counts == (1, 16, 400, 10000)
        assert desc.pages_in_top_levels(3) == 417  # quoted in the paper

    def test_single_node_tree(self, rng):
        arr = random_rects(rng, 5)
        desc = pack_description(arr, 10, "nx")
        assert desc.node_counts == (1,)
        assert desc.levels[0].rect(0) == arr.mbr()

    def test_each_level_mbr_nests(self, rng):
        arr = random_rects(rng, 500)
        desc = pack_description(arr, 8, "hs")
        root = desc.levels[0].rect(0)
        assert root == arr.mbr()
        for level in desc.levels:
            for rect in level:
                assert root.contains_rect(rect)

    def test_empty_data_raises(self):
        with pytest.raises(GeometryError):
            pack_description(RectArray.empty(2), 10, "hs")

    def test_capacity_validation(self, rng):
        with pytest.raises(ValueError):
            pack_description(random_rects(rng, 10), 1, "hs")

    def test_unknown_ordering(self, rng):
        with pytest.raises(ValueError):
            pack_description(random_rects(rng, 10), 4, "peano")

    def test_callable_ordering_accepted(self, rng):
        arr = random_rects(rng, 50)
        identity = lambda rects, cap: np.arange(len(rects))
        desc = pack_description(arr, 10, identity)
        assert desc.node_counts == (1, 5)

    def test_resolve_ordering_passthrough(self):
        fn = lambda rects, cap: np.arange(len(rects))
        assert resolve_ordering(fn) is fn


class TestPackTree:
    def test_tree_matches_description(self, rng):
        arr = random_rects(rng, 777)
        for ordering in ("nx", "hs", "str"):
            tree = pack_tree(arr, 9, ordering)
            desc_from_tree = TreeDescription.from_tree(tree)
            desc_direct = pack_description(arr, 9, ordering)
            assert desc_from_tree.node_counts == desc_direct.node_counts
            # Within-level order may differ (BFS vs construction order);
            # the set of node MBRs per level must be identical.
            for a, b in zip(desc_from_tree.levels, desc_direct.levels):
                a_sorted = sorted(map(tuple, np.hstack([a.lo, a.hi]).tolist()))
                b_sorted = sorted(map(tuple, np.hstack([b.lo, b.hi]).tolist()))
                assert a_sorted == b_sorted

    def test_tree_is_valid(self, rng):
        arr = random_rects(rng, 300)
        tree = pack_tree(arr, 7, "hs")
        check_tree(tree)
        assert len(tree) == 300

    def test_default_items_are_indices(self, rng):
        arr = random_rects(rng, 120)
        tree = pack_tree(arr, 10, "hs")
        found = sorted(tree.search(Rect((0, 0), (1, 1))))
        assert found == list(range(120))

    def test_custom_items(self, rng):
        arr = random_rects(rng, 30)
        items = [f"obj{i}" for i in range(30)]
        tree = pack_tree(arr, 5, "nx", items=items)
        assert sorted(tree.search(Rect((0, 0), (1, 1)))) == sorted(items)

    def test_items_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            pack_tree(random_rects(rng, 10), 4, "nx", items=["a"])

    def test_queries_match_brute_force(self, rng):
        from tests.conftest import brute_force_intersecting

        arr = random_rects(rng, 400)
        rects = list(arr)
        tree = pack_tree(arr, 12, "hs")
        for _ in range(30):
            lo = rng.random(2) * 0.7
            q = Rect(tuple(lo), tuple(lo + 0.2))
            assert sorted(tree.search(q)) == brute_force_intersecting(rects, q)

    def test_height_is_logarithmic(self, rng):
        arr = random_rects(rng, 1000)
        tree = pack_tree(arr, 10, "hs")
        # 1000 rects -> 100 leaves -> 10 -> 1: three levels of nodes.
        assert tree.height == math.ceil(math.log(1000, 10))
        assert tree.height == 3
