"""Tests for the packing orderings (NX, HS, STR)."""

import numpy as np
import pytest

from repro.geometry import RectArray
from repro.packing import ORDERINGS, hilbert_order, nearest_x_order, str_order
from tests.conftest import random_rects


@pytest.fixture
def arr(rng) -> RectArray:
    return random_rects(rng, 250, max_side=0.05)


@pytest.mark.parametrize("name", sorted(ORDERINGS))
def test_is_a_permutation(name, arr):
    perm = ORDERINGS[name](arr, 10)
    assert sorted(perm.tolist()) == list(range(len(arr)))


@pytest.mark.parametrize("name", sorted(ORDERINGS))
def test_deterministic(name, arr):
    a = ORDERINGS[name](arr, 10)
    b = ORDERINGS[name](arr, 10)
    assert np.array_equal(a, b)


class TestNearestX:
    def test_sorts_by_center_x(self, arr):
        perm = nearest_x_order(arr, 10)
        xs = arr.centers()[perm, 0]
        assert np.all(np.diff(xs) >= 0)

    def test_stable_on_ties(self):
        lo = np.zeros((5, 2))
        hi = np.ones((5, 2))
        arr = RectArray(lo, hi)  # identical rects: ties everywhere
        perm = nearest_x_order(arr, 2)
        assert perm.tolist() == [0, 1, 2, 3, 4]


class TestHilbertOrder:
    def test_groups_are_spatially_compact(self, arr):
        """Hilbert groups of 10 should have far smaller MBRs than
        input-order groups."""
        perm = hilbert_order(arr, 10)
        centers = arr.centers()

        def group_area(order):
            total = 0.0
            for s in range(0, len(order), 10):
                block = centers[order[s : s + 10]]
                span = block.max(axis=0) - block.min(axis=0)
                total += span.prod()
            return total

        assert group_area(perm) < 0.25 * group_area(np.arange(len(arr)))


class TestSTR:
    def test_slab_structure(self, rng):
        # 90 points, capacity 10 -> 9 pages -> 3 vertical slabs of 30.
        pts = rng.random((90, 2))
        arr = RectArray.from_points(pts)
        perm = str_order(arr, 10)
        xs = pts[perm, 0]
        ys = pts[perm, 1]
        # Within each slab of 30, y must be sorted.
        for s in range(0, 90, 30):
            assert np.all(np.diff(ys[s : s + 30]) >= 0)
        # Slab x-ranges must be non-overlapping and increasing.
        maxes = [xs[s : s + 30].max() for s in range(0, 90, 30)]
        mins = [xs[s : s + 30].min() for s in range(0, 90, 30)]
        assert maxes[0] <= mins[1] and maxes[1] <= mins[2]

    def test_capacity_validation(self, arr):
        with pytest.raises(ValueError):
            str_order(arr, 0)

    def test_three_dimensional(self, rng):
        pts = rng.random((100, 3))
        arr = RectArray.from_points(pts)
        perm = str_order(arr, 5)
        assert sorted(perm.tolist()) == list(range(100))
