"""Tests for the self-contained statistics helpers.

scipy is available in the test environment, so the incomplete beta and
Student-t implementations are checked directly against it.
"""

import math

import pytest

scipy_stats = pytest.importorskip("scipy.stats")
scipy_special = pytest.importorskip("scipy.special")

from repro.simulation import (
    regularized_incomplete_beta,
    student_t_cdf,
    student_t_quantile,
)


class TestIncompleteBeta:
    @pytest.mark.parametrize("a,b", [(0.5, 0.5), (1, 1), (2, 5), (10, 0.5), (9.5, 9.5)])
    @pytest.mark.parametrize("x", [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0])
    def test_against_scipy(self, a, b, x):
        got = regularized_incomplete_beta(a, b, x)
        assert got == pytest.approx(scipy_special.betainc(a, b, x), abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            regularized_incomplete_beta(0, 1, 0.5)
        with pytest.raises(ValueError):
            regularized_incomplete_beta(1, 1, 1.5)


class TestStudentT:
    @pytest.mark.parametrize("df", [1, 2, 5, 19, 30, 120])
    @pytest.mark.parametrize("t", [-3.0, -1.0, 0.0, 0.5, 2.5])
    def test_cdf_against_scipy(self, df, t):
        got = student_t_cdf(t, df)
        assert got == pytest.approx(scipy_stats.t.cdf(t, df), abs=1e-10)

    @pytest.mark.parametrize("df", [1, 2, 5, 19, 30])
    @pytest.mark.parametrize("p", [0.05, 0.1, 0.5, 0.9, 0.95, 0.99])
    def test_quantile_against_scipy(self, df, p):
        got = student_t_quantile(p, df)
        assert got == pytest.approx(scipy_stats.t.ppf(p, df), abs=1e-6, rel=1e-6)

    def test_quantile_symmetry(self):
        assert student_t_quantile(0.95, 19) == pytest.approx(
            -student_t_quantile(0.05, 19)
        )

    def test_paper_batch_means_quantile(self):
        """The 90% CI with 20 batches uses t_{0.95, 19} ≈ 1.729."""
        assert student_t_quantile(0.95, 19) == pytest.approx(1.7291, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            student_t_cdf(0.0, 0)
        with pytest.raises(ValueError):
            student_t_quantile(0.0, 5)
        with pytest.raises(ValueError):
            student_t_quantile(1.0, 5)


def test_cdf_quantile_roundtrip():
    for df in (3, 19):
        for p in (0.2, 0.6, 0.975):
            t = student_t_quantile(p, df)
            assert student_t_cdf(t, df) == pytest.approx(p, abs=1e-9)
