"""The sharded sweep: bit-exact against the in-process path.

The process-pool path's entire contract (``docs/PARALLELISM.md``) is
that ``workers >= 1`` is an *execution* choice, never a model change:
for every workload, warm-up mode and pinning level the sharded sweep
must reproduce the ``workers=0`` results bit for bit, for any worker
count.  The matrix here exercises exactly that, plus the shared-memory
plumbing (:class:`SharedArray` ownership, :class:`WriteGrant` slice
views, the deterministic shard plan) and the per-shard worker spans.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.obs import Tracer, chrome_trace, use_tracer
from repro.packing import pack_description
from repro.queries import UniformPointWorkload, UniformRegionWorkload
from repro.simulation import simulate_sweep
from repro.simulation.shard import (
    SharedArray,
    ShmSpec,
    WriteGrant,
    attach_readonly,
    fork_available,
    plan_shards,
)
from tests.conftest import random_rects
from tests.simulation.test_stackdist import assert_results_identical

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="sharded sweep needs the fork start method"
)

_RECTS = random_rects(np.random.default_rng(23), 900, max_side=0.03)
_DESC = pack_description(_RECTS, capacity=16, ordering="hs")

_SERIAL_CACHE: dict[str, tuple] = {}


def _serial_for(case_id: str, workload, common: dict) -> tuple:
    if case_id not in _SERIAL_CACHE:
        _SERIAL_CACHE[case_id] = simulate_sweep(_DESC, workload, **common)
    return _SERIAL_CACHE[case_id]


class TestBitExactAgainstSerial:
    # workers × warm-up modes × pinning: every cell must match the
    # workers=0 tuple per-field (BufferStats compares by identity).
    CASES = [
        (
            "warm-until-full",
            UniformPointWorkload(),
            dict(buffer_sizes=(1, 3, 11, 45), warmup_cap=4096),
        ),
        (
            "pinned-explicit-warmup",
            UniformRegionWorkload((0.08, 0.08)),
            dict(
                buffer_sizes=(2, 9, 40), pinned_levels=1, warmup_queries=500
            ),
        ),
        (
            "zero-warmup",
            UniformPointWorkload(),
            dict(buffer_sizes=(4, 19), warmup_queries=0),
        ),
    ]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize(
        "case_id, workload, kwargs",
        CASES,
        ids=[c[0] for c in CASES],
    )
    def test_matches_in_process_sweep(self, case_id, workload, kwargs, workers):
        common = dict(n_batches=3, batch_size=200, rng=5, **kwargs)
        serial = _serial_for(case_id, workload, common)
        sharded = simulate_sweep(_DESC, workload, workers=workers, **common)
        assert len(sharded) == len(serial)
        for a, b in zip(sharded, serial):
            assert_results_identical(a, b)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            simulate_sweep(
                _DESC, UniformPointWorkload(), (4,), workers=-1
            )


class TestShardPlan:
    def test_covers_range_without_gaps(self):
        spans = plan_shards(1000, 3)
        assert spans[0][0] == 0
        assert spans[-1][1] == 1000
        for (_, a_hi), (b_lo, _) in zip(spans, spans[1:]):
            assert a_hi == b_lo

    def test_alignment_respected(self):
        spans = plan_shards(10_000, 7, align=512)
        for lo, hi in spans[:-1]:
            assert lo % 512 == 0
            assert hi % 512 == 0
        assert spans[-1][1] == 10_000

    def test_empty_and_degenerate(self):
        assert plan_shards(0, 4) == []
        assert plan_shards(5, 100) == [(i, i + 1) for i in range(5)]
        assert plan_shards(5, 1) == [(0, 5)]

    def test_deterministic(self):
        assert plan_shards(9999, 4, align=64) == plan_shards(
            9999, 4, align=64
        )


class TestSharedArray:
    def test_create_grant_write_read_dispose(self):
        arr = SharedArray.create(100, np.int64)
        try:
            assert arr.owner
            assert arr.created_pid == os.getpid()
            assert isinstance(arr.spec, ShmSpec)
            grant = arr.grant(10, 20)
            assert isinstance(grant, WriteGrant)
            view = grant.writable()
            assert view.shape == (10,)
            view[:] = np.arange(10)
            # The write landed at [10, 20) of the owner's full view.
            assert np.array_equal(arr.array[10:20], np.arange(10))
            assert np.all(arr.array[:10] == 0)
            assert np.all(arr.array[20:] == 0)
            arr.release_grants()
        finally:
            arr.dispose()

    def test_grant_bounds_validated(self):
        arr = SharedArray.create(10, np.int64)
        try:
            for lo, hi in [(-1, 5), (0, 11), (7, 3)]:
                with pytest.raises(ValueError):
                    arr.grant(lo, hi)
        finally:
            arr.dispose()

    def test_writable_view_cannot_reach_outside_grant(self):
        # The view *is* the slice: its buffer spans exactly hi - lo
        # items, so there is no index that lands outside the grant.
        arr = SharedArray.create(50, np.int64)
        try:
            view = arr.grant(20, 30).writable()
            assert view.size == 10
            with pytest.raises(IndexError):
                view[10] = 1
        finally:
            arr.dispose()

    def test_attach_readonly_is_readonly(self):
        arr = SharedArray.create(8, np.int64)
        try:
            arr.array[:] = np.arange(8)
            ro = attach_readonly(arr.spec)
            assert np.array_equal(ro, np.arange(8))
            with pytest.raises(ValueError):
                ro[0] = 99
        finally:
            arr.dispose()

    def test_zero_length_segment(self):
        arr = SharedArray.create(0, np.int64)
        try:
            assert arr.array.shape == (0,)
        finally:
            arr.dispose()


class TestShardSpans:
    def test_worker_spans_replayed_deterministically(self):
        tracer = Tracer()
        previous = use_tracer(tracer)
        try:
            simulate_sweep(
                _DESC,
                UniformPointWorkload(),
                (2, 8, 33),
                n_batches=2,
                batch_size=150,
                warmup_queries=200,
                rng=1,
                workers=2,
            )
        finally:
            use_tracer(previous)
        finished = tracer.finished()
        (root,) = [s for s in finished if s.name == "simulate.sweep"]
        assert root.attrs["mode"] == "stackdist"
        assert root.attrs["workers"] == 2
        shard_spans = [s for s in finished if s.name == "stackdist.shard"]
        # prev, distances and account each fan out to 2 workers (the
        # stream is too short to shard its stab phase).
        phases = {s.attrs["phase"] for s in shard_spans}
        assert phases == {"prev", "distances", "account"}
        for phase in phases:
            assert sum(s.attrs["phase"] == phase for s in shard_spans) == 2
        # Worker spans carry real worker pids, not the parent's.
        pids = {s.attrs["pid"] for s in shard_spans}
        assert os.getpid() not in pids
        # Replay order is shard order: span ids are a dense range.
        assert sorted(s.span_id for s in finished) == list(
            range(len(finished))
        )
        # Worker lanes densify like thread lanes and export cleanly.
        payload = chrome_trace(finished)
        tids = {
            e["tid"] for e in payload["traceEvents"] if e.get("ph") == "X"
        }
        assert tids == {s.thread_index for s in finished}
        assert all(s.end_ns >= s.start_ns for s in shard_spans)
