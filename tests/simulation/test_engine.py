"""Tests for the §4 validation simulator."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.packing import pack_description
from repro.queries import (
    DataDrivenWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)
from repro.rtree import TreeDescription
from repro.simulation import simulate
from tests.conftest import random_rects


def tiny_description() -> TreeDescription:
    """Root + two half-plane leaves: hand-checkable access sets."""
    return TreeDescription.from_level_rects(
        [
            [Rect((0, 0), (1, 1))],
            [Rect((0, 0), (0.5, 1)), Rect((0.5, 0), (1, 1))],
        ]
    )


class TestExactBehaviours:
    def test_every_node_cached_when_buffer_big_enough(self):
        desc = tiny_description()
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=3,
            n_batches=2, batch_size=200,
        )
        # After warm-up, all three nodes are resident: zero misses.
        assert result.disk_accesses.mean == 0.0
        assert result.node_accesses.mean > 0

    def test_node_accesses_match_expectation(self):
        desc = tiny_description()
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=3,
            n_batches=5, batch_size=2000,
        )
        # Every point hits the root and exactly one leaf.
        assert result.node_accesses.mean == pytest.approx(2.0, abs=1e-9)

    def test_single_page_buffer_thrashes(self):
        desc = tiny_description()
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=1,
            n_batches=2, batch_size=500,
        )
        # LRU order per query: root, then leaf — with one slot the
        # leaf always displaces the root, so every access misses.
        assert result.disk_accesses.mean == pytest.approx(2.0)

    def test_pinning_the_root_saves_one_access(self):
        desc = tiny_description()
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=1, pinned_levels=1,
            n_batches=2, batch_size=500,
        )
        # Root pinned, one slot left: alternating leaves still miss
        # roughly half the time; misses are at most 1 per query.
        assert result.disk_accesses.mean <= 1.0

    def test_deterministic_given_seed(self, rng):
        desc = pack_description(random_rects(rng, 300), 10, "hs")
        kwargs = dict(buffer_size=10, n_batches=3, batch_size=500)
        a = simulate(desc, UniformPointWorkload(), rng=42, **kwargs)
        b = simulate(desc, UniformPointWorkload(), rng=42, **kwargs)
        assert a.disk_accesses.mean == b.disk_accesses.mean

    def test_warmup_reported(self, rng):
        desc = pack_description(random_rects(rng, 300), 10, "hs")
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=5,
            n_batches=2, batch_size=100,
        )
        assert result.buffer_filled
        assert result.warmup_queries > 0

    def test_explicit_warmup(self, rng):
        desc = pack_description(random_rects(rng, 300), 10, "hs")
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=5,
            n_batches=2, batch_size=100, warmup_queries=7,
        )
        assert result.warmup_queries == 7

    def test_hit_ratio(self, rng):
        desc = pack_description(random_rects(rng, 300), 10, "hs")
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=20,
            n_batches=3, batch_size=500,
        )
        expected = 1 - result.disk_accesses.mean / result.node_accesses.mean
        assert result.hit_ratio == pytest.approx(expected)

    def test_validation_errors(self, rng):
        desc = tiny_description()
        w = UniformPointWorkload()
        with pytest.raises(ValueError):
            simulate(desc, w, 2, n_batches=1)
        with pytest.raises(ValueError):
            simulate(desc, w, 2, batch_size=0)
        with pytest.raises(ValueError):
            simulate(desc, w, 2, policy="mru")
        with pytest.raises(ValueError):
            simulate(desc, w, 2, pinned_levels=5)


class TestBatchStats:
    """Regression: ``BufferStats.reset()`` is called between batches.

    The docstring always promised it ("used between measurement
    batches"); the engine historically never did it, so per-batch
    counters would have been cumulative had they been exposed."""

    def test_batch_stats_are_independent_not_cumulative(self):
        desc = tiny_description()
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=1,
            n_batches=4, batch_size=500,
        )
        assert len(result.batch_stats) == 4
        requests = [s.requests for s in result.batch_stats]
        # Cumulative counters would grow ~linearly across batches;
        # independent ones stay near one batch's worth of requests.
        assert max(requests) < 2 * min(requests)
        assert max(requests) <= 2 * 500  # <= accesses of a single batch

    def test_batch_stats_agree_with_estimates(self):
        desc = tiny_description()
        n_batches, batch_size = 3, 400
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=1,
            n_batches=n_batches, batch_size=batch_size,
        )
        for stats, miss_mean, access_mean in zip(
            result.batch_stats,
            result.disk_accesses.batch_values,
            result.node_accesses.batch_values,
        ):
            assert stats.misses == miss_mean * batch_size
            assert stats.requests == access_mean * batch_size
            # hits + misses account for every request, per batch
            assert stats.hits + stats.misses == stats.requests

    def test_warmup_excluded_from_batch_stats(self):
        desc = tiny_description()
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=3,
            n_batches=2, batch_size=100,
        )
        assert result.warmup_queries > 0
        total_requests = sum(s.requests for s in result.batch_stats)
        # 200 measured queries touch at most 2 nodes each; warm-up
        # leakage would push the total far above that.
        assert total_requests <= 2 * 200


class TestStatisticalAgreement:
    def test_region_queries_touch_more_nodes(self, rng):
        desc = pack_description(random_rects(rng, 500), 10, "hs")
        point = simulate(
            desc, UniformPointWorkload(), 10, n_batches=3, batch_size=1000
        )
        region = simulate(
            desc, UniformRegionWorkload((0.2, 0.2)), 10,
            n_batches=3, batch_size=1000,
        )
        assert region.node_accesses.mean > point.node_accesses.mean

    def test_node_accesses_match_model_expectation(self, rng):
        from repro.model import expected_node_accesses

        desc = pack_description(random_rects(rng, 800), 10, "hs")
        w = UniformRegionWorkload((0.1, 0.1))
        result = simulate(desc, w, 5, n_batches=10, batch_size=2000)
        expected = expected_node_accesses(desc, w)
        assert result.node_accesses.mean == pytest.approx(expected, rel=0.05)

    def test_data_driven_workload_simulates(self, rng):
        data = random_rects(rng, 500, max_side=0.05)
        desc = pack_description(data, 10, "hs")
        w = DataDrivenWorkload.from_rects(data)
        result = simulate(desc, w, 20, n_batches=3, batch_size=1000)
        assert result.disk_accesses.mean >= 0
        assert result.node_accesses.mean >= 1.0  # root always hit

    @pytest.mark.parametrize("policy", ["lru", "fifo", "clock", "random"])
    def test_all_policies_run(self, rng, policy):
        desc = pack_description(random_rects(rng, 300), 10, "hs")
        result = simulate(
            desc, UniformPointWorkload(), 15,
            n_batches=2, batch_size=300, policy=policy,
        )
        assert 0 <= result.disk_accesses.mean <= result.node_accesses.mean


class TestStabberWorkHint:
    """``simulate`` hints the stabber with its total probe budget.

    A fig6-sized run probes a few hundred nodes millions of times —
    the grid index wins even though the tree is far below the
    rect-count threshold.  The hint is speed-only: backends are
    bit-exact, so which one is picked never changes results.
    """

    def _backend(self, workload=None, **kwargs):
        from repro.obs import Tracer, use_tracer

        tracer = Tracer()
        previous = use_tracer(tracer)
        try:
            simulate(
                tiny_description(),
                workload or UniformPointWorkload(),
                buffer_size=3,
                n_batches=2,
                batch_size=100,
                **kwargs,
            )
        finally:
            use_tracer(previous)
        (root,) = [s for s in tracer.finished() if s.name == "simulate"]
        return root.attrs["backend"]

    def test_large_probe_budget_promotes_grid(self):
        # 3 nodes x a 2M-query budget crosses _DENSE_MAX_WORK; the
        # warm-up still ends after 3 misses, so the run stays fast.
        assert self._backend(warmup_cap=2_000_000) == "GridStabbingIndex"

    def test_small_budget_stays_dense(self):
        assert self._backend(warmup_queries=200) == "DenseStabber"

    def test_hint_reaches_mixed_components(self):
        from repro.queries import MixedWorkload

        mixed = MixedWorkload(
            [
                (0.5, UniformPointWorkload()),
                (0.5, UniformRegionWorkload((0.1, 0.1))),
            ]
        )
        assert (
            self._backend(mixed, warmup_cap=2_000_000) == "GridStabbingIndex"
        )
