"""Tests for the batch-means confidence intervals."""

import numpy as np
import pytest

from repro.simulation import batch_means


class TestBatchMeans:
    def test_mean_of_batches(self):
        est = batch_means([1.0, 2.0, 3.0, 4.0])
        assert est.mean == pytest.approx(2.5)
        assert est.n_batches == 4

    def test_identical_batches_zero_width(self):
        est = batch_means([5.0] * 10)
        assert est.half_width == 0.0
        assert est.relative_half_width == 0.0
        assert est.interval == (5.0, 5.0)

    def test_interval_centred_on_mean(self):
        est = batch_means([1.0, 3.0, 2.0, 4.0, 2.5])
        lo, hi = est.interval
        assert (lo + hi) / 2 == pytest.approx(est.mean)
        assert hi - lo == pytest.approx(2 * est.half_width)

    def test_known_t_interval(self):
        # Two batches: mean 1.5, s = sqrt(0.5), se = 0.5,
        # t_{0.95, 1} = 6.3138.
        est = batch_means([1.0, 2.0], confidence=0.90)
        assert est.half_width == pytest.approx(6.3138 * 0.5, abs=1e-3)

    def test_higher_confidence_wider(self):
        values = [1.0, 2.0, 1.5, 2.5, 1.2]
        narrow = batch_means(values, confidence=0.90)
        wide = batch_means(values, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_more_batches_narrower(self, rng):
        small = batch_means(rng.normal(10, 1, size=5))
        large = batch_means(rng.normal(10, 1, size=100))
        assert large.half_width < small.half_width

    def test_coverage_is_roughly_nominal(self, rng):
        """90% intervals should contain the true mean ~90% of the time."""
        true_mean = 3.0
        covered = 0
        trials = 400
        for _ in range(trials):
            est = batch_means(rng.normal(true_mean, 1.0, size=20), confidence=0.90)
            lo, hi = est.interval
            covered += lo <= true_mean <= hi
        assert 0.85 <= covered / trials <= 0.95

    def test_relative_half_width(self):
        est = batch_means([9.0, 11.0])
        assert est.relative_half_width == pytest.approx(est.half_width / 10.0)

    def test_zero_mean_relative_width_is_inf(self):
        est = batch_means([-1.0, 1.0])
        assert est.mean == 0.0
        assert est.relative_half_width == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means([1.0])
        with pytest.raises(ValueError):
            batch_means([1.0, 2.0], confidence=1.0)
        with pytest.raises(ValueError):
            batch_means([1.0, 2.0], confidence=0.0)
