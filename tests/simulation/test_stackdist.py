"""``simulate_sweep``: bit-exact against per-capacity ``simulate``.

The single-pass Mattson engine's whole contract is that it is an
*optimization*, never a model change: for every workload, pinning
level and warm-up mode it must return exactly the per-batch counters,
batch-means estimates and warm-up lengths the online engine produces
for each buffer size — and its outputs must not depend on the worker
thread count.  Monotonicity (more buffer never means more misses on
the same measurement window) is the inclusion property itself, checked
directly on the stack-distance arrays.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.buffer import PinningError
from repro.obs import MetricsRegistry, Tracer, chrome_trace, use_tracer
from repro.packing import pack_description
from repro.queries import (
    DataDrivenWorkload,
    MixedWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)
from repro.simulation import simulate, simulate_sweep
from repro.simulation.stackdist import _stack_distances
from tests.conftest import random_rects

_RECTS = random_rects(np.random.default_rng(11), 800, max_side=0.03)
_DESC = pack_description(_RECTS, capacity=16, ordering="hs")


def assert_results_identical(sweep_result, online_result) -> None:
    assert sweep_result.disk_accesses == online_result.disk_accesses
    assert sweep_result.node_accesses == online_result.node_accesses
    assert sweep_result.warmup_queries == online_result.warmup_queries
    assert sweep_result.buffer_filled == online_result.buffer_filled
    assert len(sweep_result.batch_stats) == len(online_result.batch_stats)
    for ours, theirs in zip(
        sweep_result.batch_stats, online_result.batch_stats
    ):
        assert ours.requests == theirs.requests
        assert ours.hits == theirs.hits
        assert ours.misses == theirs.misses
        assert ours.evictions == theirs.evictions


class TestBitExactAgainstOnline:
    CASES = [
        (
            "point-warm-until-full",
            UniformPointWorkload(),
            dict(buffer_sizes=(1, 3, 11, 45), warmup_cap=4096),
        ),
        (
            "region-pinned-root",
            UniformRegionWorkload((0.08, 0.08)),
            dict(buffer_sizes=(2, 9, 40), pinned_levels=1, warmup_cap=4096),
        ),
        (
            "data-driven-explicit-warmup",
            DataDrivenWorkload(_RECTS.centers(), (0.04, 0.04)),
            dict(buffer_sizes=(2, 17), warmup_queries=700),
        ),
        (
            "point-zero-warmup",
            UniformPointWorkload(),
            dict(buffer_sizes=(4, 19), warmup_queries=0),
        ),
        (
            "point-warmup-cap-hit",
            UniformPointWorkload(),
            dict(buffer_sizes=(5, 100_000), warmup_cap=300),
        ),
        (
            "mixed-fallback",
            MixedWorkload(
                [
                    (0.6, UniformPointWorkload()),
                    (0.4, UniformRegionWorkload((0.1, 0.1))),
                ]
            ),
            dict(buffer_sizes=(3, 12), warmup_cap=2048),
        ),
        (
            "fifo-replay",
            UniformPointWorkload(),
            dict(buffer_sizes=(3, 12), policy="fifo", warmup_cap=2048),
        ),
        (
            "clock-replay",
            UniformPointWorkload(),
            dict(buffer_sizes=(3, 12, 60), policy="clock", warmup_cap=2048),
        ),
        (
            "fifo-pinned-explicit-warmup",
            UniformRegionWorkload((0.06, 0.06)),
            dict(
                buffer_sizes=(2, 9, 40), policy="fifo",
                pinned_levels=1, warmup_queries=400,
            ),
        ),
        (
            "clock-zero-unpinned-capacity",
            UniformPointWorkload(),
            # buffer size 1 with the root pinned: zero unpinned slots,
            # every unpinned access is a miss (the engine's edge case).
            dict(
                buffer_sizes=(1, 6), policy="clock",
                pinned_levels=1, warmup_cap=1024,
            ),
        ),
        (
            "mixed-replay-explicit-warmup",
            MixedWorkload(
                [
                    (0.7, UniformPointWorkload()),
                    (0.3, UniformRegionWorkload((0.08, 0.08))),
                ]
            ),
            dict(buffer_sizes=(3, 12), policy="fifo", warmup_queries=500),
        ),
        (
            "mixed-lru-replay-explicit-warmup",
            MixedWorkload(
                [
                    (0.5, UniformPointWorkload()),
                    (0.5, UniformRegionWorkload((0.05, 0.05))),
                ]
            ),
            dict(buffer_sizes=(2, 20), warmup_queries=300),
        ),
        (
            "random-fallback",
            UniformPointWorkload(),
            dict(buffer_sizes=(3, 12), policy="random", warmup_cap=2048),
        ),
    ]

    @pytest.mark.parametrize(
        "workload, kwargs", [c[1:] for c in CASES], ids=[c[0] for c in CASES]
    )
    def test_every_size_matches_simulate(self, workload, kwargs):
        common = dict(n_batches=3, batch_size=200, rng=5, **kwargs)
        results = simulate_sweep(_DESC, workload, **common)
        buffer_sizes = common.pop("buffer_sizes")
        assert len(results) == len(buffer_sizes)
        for size, result in zip(buffer_sizes, results):
            assert_results_identical(
                result, simulate(_DESC, workload, size, **common)
            )

    def test_results_independent_of_thread_count(self):
        kwargs = dict(
            buffer_sizes=(2, 7, 30, 80),
            n_batches=3,
            batch_size=250,
            rng=3,
        )
        serial = simulate_sweep(_DESC, UniformPointWorkload(), **kwargs,
                                max_threads=1)
        threaded = simulate_sweep(_DESC, UniformPointWorkload(), **kwargs,
                                  max_threads=8)
        for a, b in zip(serial, threaded):
            assert_results_identical(a, b)


class TestInclusionProperty:
    @settings(
        max_examples=30, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=4000),
        st.integers(min_value=1, max_value=200),
    )
    def test_misses_monotone_in_capacity(self, seed, length, alphabet):
        # The inclusion property: a larger LRU holds a superset, so
        # per-access outcomes (hence total misses) can only improve.
        pages = np.random.default_rng(seed).integers(
            0, alphabet, size=length
        )
        cold, depth, ccold = _stack_distances(pages.astype(np.int64))
        misses = [
            int(np.sum(cold | (depth >= capacity)))
            for capacity in range(1, alphabet + 2)
        ]
        assert all(a >= b for a, b in zip(misses, misses[1:]))
        # Capacity > alphabet: only cold misses remain.
        assert misses[-1] == int(np.sum(cold)) == ccold[-1]

    def test_sweep_misses_monotone_on_fixed_window(self):
        # With an explicit warm-up every capacity measures the same
        # query window, so per-batch misses are monotone across sizes.
        results = simulate_sweep(
            _DESC,
            UniformPointWorkload(),
            (1, 2, 4, 8, 16, 32, 64, 128),
            n_batches=3,
            batch_size=300,
            warmup_queries=500,
            rng=9,
        )
        for smaller, larger in zip(results, results[1:]):
            for a, b in zip(smaller.batch_stats, larger.batch_stats):
                assert a.misses >= b.misses


class TestObservability:
    def test_spans_and_metrics(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        previous = use_tracer(tracer)
        try:
            simulate_sweep(
                _DESC,
                UniformPointWorkload(),
                (2, 8, 33),
                n_batches=2,
                batch_size=150,
                warmup_queries=200,
                rng=1,
                registry=registry,
            )
        finally:
            use_tracer(previous)
        by_name: dict[str, list] = {}
        for finished_span in tracer.finished():
            by_name.setdefault(finished_span.name, []).append(finished_span)
        (root,) = by_name["simulate.sweep"]
        assert root.attrs["mode"] == "stackdist"
        assert root.attrs["capacities"] == 3
        assert len(by_name["stackdist.capacity"]) == 3
        assert by_name["stackdist.stream"][0].attrs["queries"] > 0
        metrics = registry.to_dict()
        assert metrics["gauges"]["sweep.capacities"] == 3
        assert metrics["timers"]["simulate.sweep"]["count"] == 1

    def test_fallback_mode_span(self):
        # RANDOM's eviction draws interleave with sampling RNG, so it
        # is the one replacement policy left on the per-capacity path.
        tracer = Tracer()
        previous = use_tracer(tracer)
        try:
            simulate_sweep(
                _DESC,
                UniformPointWorkload(),
                (2, 8),
                n_batches=2,
                batch_size=100,
                warmup_queries=100,
                policy="random",
                rng=1,
            )
        finally:
            use_tracer(previous)
        (root,) = [s for s in tracer.finished() if s.name == "simulate.sweep"]
        assert root.attrs["mode"] == "fallback"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(policy="fifo", warmup_queries=100),
            dict(policy="clock", warmup_cap=1024),
        ],
        ids=["fifo", "clock"],
    )
    def test_replay_mode_span(self, kwargs):
        tracer = Tracer()
        previous = use_tracer(tracer)
        try:
            simulate_sweep(
                _DESC,
                UniformPointWorkload(),
                (2, 8, 20),
                n_batches=2,
                batch_size=100,
                rng=1,
                **kwargs,
            )
        finally:
            use_tracer(previous)
        (root,) = [s for s in tracer.finished() if s.name == "simulate.sweep"]
        assert root.attrs["mode"] == "replay"
        capacity_spans = [
            s for s in tracer.finished() if s.name == "stackdist.capacity"
        ]
        assert len(capacity_spans) == 3

    def test_mixed_until_full_stays_on_fallback(self):
        # A mixture's draws depend on chunk boundaries, and an
        # until-full warm-up makes those boundaries capacity-dependent:
        # no shared stream exists, so the sweep must not pretend.
        tracer = Tracer()
        previous = use_tracer(tracer)
        mixed = MixedWorkload(
            [
                (0.5, UniformPointWorkload()),
                (0.5, UniformRegionWorkload((0.1, 0.1))),
            ]
        )
        try:
            simulate_sweep(
                _DESC, mixed, (2, 8),
                n_batches=2, batch_size=100, policy="fifo",
                warmup_cap=512, rng=1,
            )
        finally:
            use_tracer(previous)
        (root,) = [s for s in tracer.finished() if s.name == "simulate.sweep"]
        assert root.attrs["mode"] == "fallback"

    def test_worker_threads_densified_in_trace(self):
        # The sweep is a genuinely concurrent tracer workload: worker
        # spans must carry small densified thread indices, not OS ids.
        tracer = Tracer()
        previous = use_tracer(tracer)
        try:
            simulate_sweep(
                _DESC,
                UniformPointWorkload(),
                (1, 2, 4, 8, 16, 32, 64, 128),
                n_batches=2,
                batch_size=200,
                warmup_queries=300,
                rng=2,
                max_threads=4,
            )
        finally:
            use_tracer(previous)
        indices = {s.thread_index for s in tracer.finished()}
        assert indices == set(range(len(indices)))
        capacity_spans = [
            s for s in tracer.finished() if s.name == "stackdist.capacity"
        ]
        assert len(capacity_spans) == 8
        assert all(s.thread_index >= 1 for s in capacity_spans)
        # The export carries the densified ids, never OS thread ids.
        payload = chrome_trace(tracer.finished())
        tids = {
            e["tid"] for e in payload["traceEvents"] if e.get("ph") == "X"
        }
        assert tids == indices


class TestValidation:
    def test_rejects_generator_rng(self):
        with pytest.raises(TypeError, match="reproducible seed"):
            simulate_sweep(
                _DESC,
                UniformPointWorkload(),
                (2,),
                rng=np.random.default_rng(0),
            )

    def test_rejects_unpinnable_sizes(self):
        with pytest.raises(PinningError):
            simulate_sweep(
                _DESC,
                UniformPointWorkload(),
                (2, 500),
                pinned_levels=_DESC.height,
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(buffer_sizes=()),
            dict(buffer_sizes=(0,)),
            dict(buffer_sizes=(4,), n_batches=1),
            dict(buffer_sizes=(4,), batch_size=0),
            dict(buffer_sizes=(4,), warmup_cap=-1),
            dict(buffer_sizes=(4,), policy="nonsense"),
            dict(buffer_sizes=(4,), pinned_levels=99),
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            simulate_sweep(_DESC, UniformPointWorkload(), **kwargs)
