"""Tests for the validate_model API."""

import pytest

from repro.packing import pack_description
from repro.queries import UniformPointWorkload
from repro.simulation import ValidationReport, validate_model
from tests.conftest import random_rects


@pytest.fixture(scope="module")
def desc():
    import numpy as np

    return pack_description(
        random_rects(np.random.default_rng(77), 8000, max_side=0.02), 25, "hs"
    )


class TestValidateModel:
    def test_report_structure(self, desc):
        report = validate_model(
            desc,
            UniformPointWorkload(),
            buffer_sizes=(10, 50),
            n_batches=4,
            batch_size=1500,
            rng=1,
        )
        assert isinstance(report, ValidationReport)
        assert [r.buffer_size for r in report.rows] == [10, 50]
        assert report.pinned_levels == 0
        assert report.policy == "lru"

    def test_agreement_on_well_behaved_setup(self, desc):
        report = validate_model(
            desc,
            UniformPointWorkload(),
            buffer_sizes=(40, 120),
            n_batches=8,
            batch_size=4000,
            rng=2,
        )
        assert report.max_abs_percent_difference < 6.0

    def test_zero_cost_rows_have_zero_difference(self, desc):
        report = validate_model(
            desc,
            UniformPointWorkload(),
            buffer_sizes=(desc.total_nodes,),
            n_batches=2,
            batch_size=200,
            rng=3,
        )
        row = report.rows[0]
        assert row.model == 0.0
        assert row.simulated == 0.0
        assert row.percent_difference == 0.0

    def test_pinned_validation(self, desc):
        pinned_pages = desc.pages_in_top_levels(2)
        report = validate_model(
            desc,
            UniformPointWorkload(),
            buffer_sizes=(pinned_pages + 30,),
            pinned_levels=2,
            n_batches=6,
            batch_size=3000,
            rng=4,
        )
        assert report.pinned_levels == 2
        assert abs(report.rows[0].percent_difference) < 10.0

    def test_to_text(self, desc):
        report = validate_model(
            desc,
            UniformPointWorkload(),
            buffer_sizes=(10,),
            n_batches=2,
            batch_size=500,
            rng=5,
        )
        text = report.to_text("My validation")
        assert "My validation" in text
        assert "diff %" in text

    def test_within_ci_flag(self, desc):
        report = validate_model(
            desc,
            UniformPointWorkload(),
            buffer_sizes=(desc.total_nodes,),
            n_batches=2,
            batch_size=100,
            rng=6,
        )
        assert report.rows[0].within_ci  # 0 == 0 exactly
