"""Tests for the FIFO / CLOCK / RANDOM replacement policies."""

import numpy as np
import pytest

from repro.buffer import (
    POLICIES,
    ClockBuffer,
    FIFOBuffer,
    LRUBuffer,
    PinningError,
    RandomBuffer,
)


def make(policy, capacity, pinned=()):
    if policy is RandomBuffer:
        return policy(capacity, pinned, rng=np.random.default_rng(7))
    return policy(capacity, pinned)


ALL = [LRUBuffer, FIFOBuffer, ClockBuffer, RandomBuffer]


@pytest.mark.parametrize("policy", ALL)
class TestCommonContract:
    def test_miss_then_hit(self, policy):
        buf = make(policy, 2)
        assert not buf.request("a")
        assert buf.request("a")

    def test_never_exceeds_capacity(self, policy):
        buf = make(policy, 3)
        rng = np.random.default_rng(0)
        for _ in range(500):
            buf.request(int(rng.integers(10)))
            assert len(buf) <= 3

    def test_accounting_consistent(self, policy):
        buf = make(policy, 4)
        rng = np.random.default_rng(1)
        for _ in range(300):
            buf.request(int(rng.integers(12)))
        s = buf.stats
        assert s.requests == 300
        assert s.hits + s.misses == 300
        assert s.evictions == s.misses - len(buf)

    def test_pinned_always_hit_never_evicted(self, policy):
        buf = make(policy, 3, pinned=["r"])
        rng = np.random.default_rng(2)
        for _ in range(200):
            buf.request(int(rng.integers(8)))
        assert buf.request("r")
        assert "r" in buf

    def test_pinning_overflow_raises(self, policy):
        with pytest.raises(PinningError):
            make(policy, 1, pinned=["a", "b"])

    def test_single_page_working_set_always_hits(self, policy):
        buf = make(policy, 1)
        buf.request("x")
        for _ in range(10):
            assert buf.request("x")


class TestFIFO:
    def test_eviction_ignores_hits(self):
        buf = FIFOBuffer(2)
        buf.request("a")
        buf.request("b")
        buf.request("a")  # hit must NOT refresh FIFO position
        buf.request("c")  # evicts a (oldest arrival)
        assert "a" not in buf
        assert "b" in buf


class TestClock:
    def test_second_chance(self):
        buf = ClockBuffer(2)
        buf.request("a")
        buf.request("b")
        buf.request("a")  # sets a's reference bit
        buf.request("c")  # sweep clears a's bit, evicts b
        assert "a" in buf
        assert "b" not in buf

    def test_sweep_wraps_around(self):
        buf = ClockBuffer(3)
        for p in ("a", "b", "c"):
            buf.request(p)
        for p in ("a", "b", "c"):
            buf.request(p)  # all referenced
        buf.request("d")  # must clear all bits, wrap, and evict one
        assert len(buf) == 3
        assert "d" in buf


class TestRandom:
    def test_deterministic_with_seed(self):
        def trace(seed):
            buf = RandomBuffer(2, rng=np.random.default_rng(seed))
            out = []
            for p in ("a", "b", "c", "a", "d", "b", "c"):
                out.append(buf.request(p))
            return out

        assert trace(3) == trace(3)

    def test_eviction_keeps_index_consistent(self):
        buf = RandomBuffer(3, rng=np.random.default_rng(0))
        rng = np.random.default_rng(5)
        for _ in range(500):
            p = int(rng.integers(10))
            expected_resident = p in buf
            assert buf.request(p) == expected_resident


def test_policy_registry():
    assert set(POLICIES) == {"lru", "fifo", "clock", "random"}
