"""Property test: LRUBuffer agrees with a naive reference model."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.buffer import LRUBuffer


class NaiveLRU:
    """Reference: a plain list kept in recency order."""

    def __init__(self, capacity: int, pinned: frozenset = frozenset()) -> None:
        self.capacity = capacity
        self.pinned = pinned
        self.stack: list = []  # least recent first

    def request(self, page) -> bool:
        if page in self.pinned:
            return True
        if page in self.stack:
            self.stack.remove(page)
            self.stack.append(page)
            return True
        room = self.capacity - len(self.pinned)
        if room > 0:
            if len(self.stack) >= room:
                self.stack.pop(0)
            self.stack.append(page)
        return False


@settings(max_examples=200)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    pinned=st.sets(st.integers(min_value=0, max_value=3), max_size=1),
    requests=st.lists(st.integers(min_value=0, max_value=12), max_size=200),
)
def test_matches_reference(capacity, pinned, requests):
    if len(pinned) > capacity:
        return
    real = LRUBuffer(capacity, pinned)
    naive = NaiveLRU(capacity, frozenset(pinned))
    for page in requests:
        assert real.request(page) == naive.request(page)
    assert real.lru_order() == naive.stack


@settings(max_examples=100)
@given(requests=st.lists(st.integers(min_value=0, max_value=20), max_size=300))
def test_bigger_buffer_never_hits_less(requests):
    """LRU has the stack property: inclusion of cache contents across
    sizes, so hits are monotone in capacity."""
    small = LRUBuffer(3)
    large = LRUBuffer(6)
    for page in requests:
        hit_small = small.request(page)
        hit_large = large.request(page)
        assert not (hit_small and not hit_large)
