"""Sharded buffer pool: partitioning, K=1 exactness, sum reconciliation."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.buffer import LRUBuffer, PinningError, ShardedBufferPool
from repro.buffer.policies import POLICIES


def _trace(rng: np.random.Generator, n: int, universe: int) -> list[int]:
    return [int(p) for p in rng.integers(0, universe, n)]


class TestConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardedBufferPool(8, 0)

    def test_each_shard_needs_a_page(self):
        with pytest.raises(ValueError):
            ShardedBufferPool(3, 4)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ShardedBufferPool(8, 2, policy="mru")

    @pytest.mark.parametrize("capacity,shards", [(8, 3), (10, 4), (7, 7)])
    def test_capacities_split_evenly_and_sum(self, capacity, shards):
        pool = ShardedBufferPool(capacity, shards)
        caps = pool.shard_capacities()
        assert sum(caps) == capacity
        assert max(caps) - min(caps) <= 1

    def test_pins_partition_to_home_shards(self):
        pins = range(6)
        pool = ShardedBufferPool(12, 3, pinned=pins)
        for page in pins:
            assert page in pool
        assert len(pool) == 6

    def test_overfull_shard_pin_raises(self):
        # 10 pins homed to one shard of two cannot fit its 8 slots,
        # even though the 16-page total would hold them.
        pins = [p for p in range(64) if hash(p) % 2 == 0][:10]
        with pytest.raises(PinningError):
            ShardedBufferPool(16, 2, pinned=pins)

    def test_total_pin_overflow_raises(self):
        with pytest.raises(PinningError):
            ShardedBufferPool(4, 2, pinned=range(5))


class TestKOneExactness:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_k1_matches_plain_pool_request_by_request(self, policy):
        rng = np.random.default_rng(7)
        trace = _trace(rng, 5000, 200)
        kwargs = {"rng": 42} if policy == "random" else {}
        sharded = ShardedBufferPool(
            32, 1, policy=policy, pinned=range(4), **kwargs
        )
        if policy == "random":
            plain = POLICIES[policy](
                32, range(4), rng=np.random.default_rng(42)
            )
        else:
            plain = POLICIES[policy](32, range(4))
        for page in trace:
            assert sharded.request(page) == plain.request(page)
        assert sharded.aggregate_stats().as_dict() == plain.stats.as_dict()
        assert len(sharded) == len(plain)

    def test_k1_is_full_and_contains(self):
        sharded = ShardedBufferPool(4, 1)
        plain = LRUBuffer(4)
        for page in range(10):
            sharded.request(page)
            plain.request(page)
            assert sharded.is_full() == plain.is_full()
            assert (page in sharded) == (page in plain)


class TestDecomposition:
    """Each shard == a plain pool fed its hash-filtered subsequence."""

    @pytest.mark.parametrize("shards", [2, 3, 8])
    def test_shards_match_filtered_replay(self, shards):
        rng = np.random.default_rng(11)
        trace = _trace(rng, 8000, 500)
        pool = ShardedBufferPool(32, shards)
        for page in trace:
            pool.request(page)

        caps = pool.shard_capacities()
        for s in range(shards):
            reference = LRUBuffer(caps[s])
            for page in trace:
                if hash(page) % shards == s:
                    reference.request(page)
            assert (
                pool.shard_stats()[s].as_dict()
                == reference.stats.as_dict()
            )

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_aggregate_is_shard_sum(self, shards):
        rng = np.random.default_rng(13)
        pool = ShardedBufferPool(24, shards)
        for page in _trace(rng, 6000, 300):
            pool.request(page)
        agg = pool.aggregate_stats().as_dict()
        per = [s.as_dict() for s in pool.shard_stats()]
        for field in agg:
            assert agg[field] == sum(p[field] for p in per)
        assert agg["hits"] + agg["misses"] == agg["requests"]

    def test_reset_stats_zeros_every_shard(self):
        pool = ShardedBufferPool(8, 2)
        for page in range(20):
            pool.request(page)
        pool.reset_stats()
        assert pool.aggregate_stats().as_dict() == {
            "requests": 0, "hits": 0, "misses": 0, "evictions": 0,
        }
        # contents survive a stats reset
        assert len(pool) > 0

    def test_unpinned_capacity(self):
        pool = ShardedBufferPool(16, 4, pinned=range(5))
        assert pool.unpinned_capacity == 11


class TestConcurrency:
    def test_concurrent_totals_reconcile(self):
        pool = ShardedBufferPool(64, 8)
        n_threads, n_requests = 4, 5000
        errors: list[Exception] = []

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for page in rng.integers(0, 1000, n_requests):
                    pool.request(int(page))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,))
            for s in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        agg = pool.aggregate_stats()
        assert agg.requests == n_threads * n_requests
        assert agg.hits + agg.misses == agg.requests
        per = pool.shard_stats()
        assert agg.requests == sum(s.requests for s in per)
        assert agg.evictions == sum(s.evictions for s in per)
