"""Unit tests for the LRU buffer pool."""

import pytest

from repro.buffer import LRUBuffer, PinningError


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUBuffer(0)

    def test_miss_then_hit(self):
        buf = LRUBuffer(2)
        assert not buf.request("a")  # miss
        assert buf.request("a")  # hit
        assert buf.stats.requests == 2
        assert buf.stats.hits == 1
        assert buf.stats.misses == 1

    def test_eviction_is_least_recently_used(self):
        buf = LRUBuffer(2)
        buf.request("a")
        buf.request("b")
        buf.request("a")  # refresh a; LRU order is now b, a
        buf.request("c")  # evicts b
        assert "b" not in buf
        assert "a" in buf and "c" in buf
        assert buf.stats.evictions == 1

    def test_hit_refreshes_recency(self):
        buf = LRUBuffer(3)
        for p in ("a", "b", "c"):
            buf.request(p)
        buf.request("a")
        buf.request("d")  # evicts b, not a
        assert "a" in buf and "b" not in buf

    def test_lru_order_exposed(self):
        buf = LRUBuffer(3)
        for p in ("a", "b", "c"):
            buf.request(p)
        buf.request("b")
        assert buf.lru_order() == ["a", "c", "b"]

    def test_len_and_is_full(self):
        buf = LRUBuffer(2)
        assert len(buf) == 0
        assert not buf.is_full()
        buf.request("a")
        assert len(buf) == 1
        buf.request("b")
        assert buf.is_full()
        buf.request("c")
        assert len(buf) == 2  # still full, not over

    def test_stats_reset(self):
        buf = LRUBuffer(2)
        buf.request("a")
        buf.stats.reset()
        assert buf.stats.requests == 0
        assert "a" in buf  # contents survive a stats reset

    def test_hit_ratio(self):
        buf = LRUBuffer(2)
        assert buf.stats.hit_ratio == 0.0
        buf.request("a")
        buf.request("a")
        buf.request("a")
        assert buf.stats.hit_ratio == pytest.approx(2 / 3)


class TestPinning:
    def test_pinned_pages_always_hit(self):
        buf = LRUBuffer(3, pinned=["root"])
        assert buf.request("root")  # hit without ever loading
        assert buf.stats.misses == 0

    def test_pinned_never_evicted(self):
        buf = LRUBuffer(2, pinned=["root"])
        buf.request("a")
        buf.request("b")  # evicts a (only 1 unpinned slot)
        buf.request("c")  # evicts b
        assert "root" in buf
        assert buf.request("root")

    def test_pinned_consume_capacity(self):
        buf = LRUBuffer(2, pinned=["r1", "r2"])
        assert buf.unpinned_capacity == 0
        assert not buf.request("a")
        assert not buf.request("a")  # no space: always a miss
        assert buf.stats.misses == 2

    def test_pinning_more_than_capacity_raises(self):
        with pytest.raises(PinningError):
            LRUBuffer(2, pinned=["a", "b", "c"])

    def test_len_includes_pinned(self):
        buf = LRUBuffer(3, pinned=["r"])
        assert len(buf) == 1
        buf.request("a")
        assert len(buf) == 2

    def test_is_full_with_pinning(self):
        buf = LRUBuffer(2, pinned=["r"])
        assert not buf.is_full()
        buf.request("a")
        assert buf.is_full()
