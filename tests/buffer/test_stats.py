"""BufferStats snapshot/reset semantics (the per-batch building block)."""

from repro.buffer import BufferStats, LRUBuffer


class TestSnapshot:
    def test_snapshot_is_an_independent_copy(self):
        stats = BufferStats()
        stats.requests, stats.hits, stats.misses, stats.evictions = 4, 2, 2, 1
        frozen = stats.snapshot()
        stats.reset()
        assert (frozen.requests, frozen.hits, frozen.misses, frozen.evictions) == (
            4, 2, 2, 1,
        )
        assert stats.requests == 0

    def test_as_dict(self):
        stats = BufferStats()
        stats.requests, stats.hits = 3, 1
        assert stats.as_dict() == {
            "requests": 3, "hits": 1, "misses": 0, "evictions": 0,
        }

    def test_reset_between_windows_gives_independent_counts(self):
        pool = LRUBuffer(2)
        for page in (1, 2, 3):
            pool.request(page)
        first = pool.stats.snapshot()
        pool.stats.reset()
        pool.request(3)  # hit, resident from the first window
        second = pool.stats.snapshot()
        assert first.requests == 3 and first.misses == 3
        assert second.requests == 1 and second.hits == 1
        assert second.misses == 0
