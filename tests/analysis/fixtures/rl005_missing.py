"""RL005 fixture: public defs but no __all__ at all."""


def public_without_all():
    return 3
