"""RL010 triggers: in-place mutation of array parameters."""

import numpy as np


def normalize_into(values, out):
    np.divide(values, values.sum(), out=out)
    return out


def shift(values):
    values += 1.0
    return values


def zero_first(values):
    values[0] = 0.0
    return values


def order(values):
    values.sort()
    return values
