"""RL001 fixture: comparisons the rule must leave alone."""


def check(area: float, ratio: float, count: int) -> bool:
    if area <= 0.0:  # ordering comparisons are fine
        return True
    if count == 0:  # integer literals are fine
        return False
    suppressed = area == 1.0  # reprolint: disable=RL001
    return suppressed or ratio > 0.5
