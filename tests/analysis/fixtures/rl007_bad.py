"""RL007 fixture: nondeterminism that must be flagged."""

import random

import numpy as np
from numpy.random import default_rng


def unseeded_generator():
    return default_rng()  # no seed: irreproducible


def unseeded_np_attr():
    return np.random.default_rng()  # no seed via attribute access


def legacy_global_rng(n):
    return np.random.rand(n)  # legacy global RNG


def stdlib_random():
    return random.random()  # process-global stdlib RNG


def swallow_everything(fn):
    try:
        return fn()
    except:  # bare except
        return None
