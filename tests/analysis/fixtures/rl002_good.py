"""RL002 fixture: stable forms and exempt small exponents."""

import numpy as np


def distinct_nodes(probs, n_queries):
    log_miss = np.log1p(-probs)  # the sanctioned spelling
    return probs.size - np.sum(np.exp(n_queries * log_miss))


def squared_complement(t):
    return (1 - t) ** 2  # small constant exponent is exact


def interpolate(a, b, t):
    return a * (1.0 - t) + b * t  # no power at all
