"""RL003 fixture: kernels that mutate parameters or global state."""

COUNTER = 0


def write_into_param(out, values):
    out[: len(values)] = values  # subscript store into a parameter
    return out


def inplace_sort(items):
    items.sort()  # in-place mutator method on a parameter
    return items


def set_attribute(node, mbr):
    node.mbr = mbr  # attribute store into a parameter
    return node


def bump_counter():
    global COUNTER  # module state from inside a kernel
    COUNTER += 1
