"""RL007 fixture: seeded, explicit randomness and targeted excepts."""

import random

import numpy as np
from numpy.random import default_rng


def seeded_generator(seed):
    return default_rng(seed)


def seeded_np_attr():
    return np.random.default_rng(1998)


def seeded_stdlib(seed):
    return random.Random(seed)  # explicitly seeded instance is fine


def draw(rng: np.random.Generator, n: int):
    return rng.random(n)  # methods on a passed-in Generator are fine


def targeted_except(fn):
    try:
        return fn()
    except ValueError:
        return None
