"""RL003 fixture: pure kernels the rule must accept."""


def copy_then_own(lo, hi):
    lo = list(lo)  # plain rebinding: the copy-then-own idiom
    hi = list(hi)
    lo[0] = min(lo[0], hi[0])
    return lo, hi


def fresh_result(values):
    out = [0.0] * len(values)  # locals may be mutated freely
    for i, v in enumerate(values):
        out[i] = v * 2.0
    return out


class Carrier:
    def __init__(self, lo, hi):
        self.lo = lo  # `self` is exempt: constructors own the instance
        self.hi = hi
