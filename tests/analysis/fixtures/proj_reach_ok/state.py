"""Worker-reachable functions that synchronize correctly."""

import threading

LOCK = threading.Lock()
RESULTS = []


def record(value):
    with LOCK:
        RESULTS.append(value)
    return value


def fill(out, lo, hi):
    # disjoint slice write: the sanctioned sharding idiom
    out[lo:hi] = range(lo, hi)


def pure(value):
    local = []
    local.append(value)
    return local
