"""Fixture package."""
