"""Submit sites whose workers are all concurrency-clean."""

from concurrent.futures import ThreadPoolExecutor

from proj_reach_ok.state import fill, pure, record


def fan_out(items, out):
    with ThreadPoolExecutor() as pool:
        for index, item in enumerate(items):
            pool.submit(record, item)
            pool.submit(fill, out, index, index + 1)
        pool.map(pure, items)
