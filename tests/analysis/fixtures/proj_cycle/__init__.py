"""Fixture package."""
