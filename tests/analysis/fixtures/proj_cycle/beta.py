"""Second half of a deliberate import cycle."""

from proj_cycle import alpha


def pong():
    return alpha.ping()
