"""First half of a deliberate import cycle."""

from proj_cycle import beta


def ping():
    return beta.pong()
