"""RL005 fixture: clean __all__ hygiene."""

from math import sqrt

__all__ = ["Shape", "area", "sqrt"]

PRIVATE_CONSTANT = 42  # public assignments need not be exported


class Shape:
    pass


def area(shape):
    return sqrt(float(shape))


def _helper():
    return None
