"""RL006 fixture: citing an equation the paper does not define.

The buffer model is Eq. 17 of the paper, and Eqs. 40-42 expand it.
"""


def model():
    """Implements Eq. 99."""
    return None
