"""A consumer-tree file (tests/benchmarks style) using the dead export."""

from proj_dead.lib import dead_fn


def exercise():
    return dead_fn()
