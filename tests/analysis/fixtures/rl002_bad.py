"""RL002 fixture: unstable probability math that must be flagged."""

import numpy as np


def distinct_nodes(probs, n_queries):
    return probs.size - np.sum((1 - probs) ** n_queries)  # pow, line 7


def log_miss(probs):
    return np.log(1.0 - probs)  # log(1 - p), line 11


def miss_power(probs, n_queries):
    return np.power(1 - probs, n_queries)  # power(1 - p, n), line 15
