"""RL001 fixture: float equality comparisons that must be flagged."""


def check(area: float, ratio: float) -> bool:
    if area == 0.0:  # line 5: ==
        return True
    if 1.0 != ratio:  # line 7: != with literal on the left
        return False
    return ratio == -1.0  # line 9: negated literal
