"""RL005 fixture: broken __all__ hygiene."""

__all__ = ["exported_fn", "ghost_name", "exported_fn"]


def exported_fn():
    return 1


def forgotten_fn():  # public but missing from __all__
    return 2
