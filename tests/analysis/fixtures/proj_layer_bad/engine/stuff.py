"""Middle-layer module."""

VALUE = 42
