"""Fixture package."""
