"""Fixture package."""
