"""Fixture package."""
