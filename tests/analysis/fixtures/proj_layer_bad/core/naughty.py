"""Bottom layer reaching up into the engine — a layering violation."""

from proj_layer_bad.engine import stuff


def cheat():
    return stuff.VALUE
