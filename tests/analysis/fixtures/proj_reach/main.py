"""Fans work out to threads — reachability crosses the module edge."""

from concurrent.futures import ThreadPoolExecutor

from proj_reach.state import bump, record


def fan_out(items):
    with ThreadPoolExecutor() as pool:
        for item in items:
            pool.submit(record, item)
        pool.submit(bump)


def closure_capture(items):
    counts = {}

    def work(item):
        counts[item] = item * 2

    with ThreadPoolExecutor() as pool:
        pool.map(work, items)
    return counts
