"""Shared mutable state written by worker-reachable functions."""

RESULTS = []
TOTALS = {}
COUNTER = 0


def record(value):
    RESULTS.append(value)
    TOTALS[value] = True
    return value


def bump():
    global COUNTER
    COUNTER += 1
