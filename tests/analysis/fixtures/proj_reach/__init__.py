"""Fixture package."""
