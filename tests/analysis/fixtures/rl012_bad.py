"""RL012 triggers: leaked executors, file handles, and mmaps."""

import mmap
from concurrent.futures import ThreadPoolExecutor


def leaky_pool(items):
    pool = ThreadPoolExecutor(max_workers=2)
    return list(pool.map(str, items))


def leaky_read(path):
    return open(path).read()


def leaky_map(fd):
    view = mmap.mmap(fd, 0)
    return view[0]


class Holder:
    def __init__(self):
        self.pool = ThreadPoolExecutor(max_workers=1)
