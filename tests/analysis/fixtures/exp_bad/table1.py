"""RL004 fixture: META present but malformed."""

__all__ = ["Result", "run"]

META = {
    "name": "table9",  # wrong: module is table1
    "title": "Mismatched metadata",
    # "source" missing entirely
}


class Result:
    pass


def run():
    return Result()
