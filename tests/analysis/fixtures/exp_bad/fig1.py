"""RL004 fixture: experiment module with no META and no run()."""

__all__ = ["helper"]


def helper():
    return None
