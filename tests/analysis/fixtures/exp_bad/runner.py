"""RL004 fixture: runner that forgets to register its experiments."""

EXPERIMENTS = {
    "fig1": None,
    # table1 is missing
}
