"""Fixture package."""
