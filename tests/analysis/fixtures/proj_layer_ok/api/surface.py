"""Top layer: may import engine and core."""

from proj_layer_ok.core import ops
from proj_layer_ok.engine import turbine


def serve():
    return ops.combine(turbine.spin(), 1)
