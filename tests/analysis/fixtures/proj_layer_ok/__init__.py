"""Fixture package."""
