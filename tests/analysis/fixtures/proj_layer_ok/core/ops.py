"""Bottom-layer module with no project dependencies."""

BASE = 1


def combine(a, b):
    return a + b + BASE
