"""Uses the deferred-import escape hatch to reach up a layer."""


def peek_engine():
    # function-level import: legal even against the DAG direction
    from proj_layer_ok.engine import turbine

    return turbine.spin()
