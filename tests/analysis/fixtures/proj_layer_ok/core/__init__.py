"""Fixture package."""
