"""Fixture package."""
