"""Middle layer: may import core."""

from proj_layer_ok.core import ops


def spin():
    return ops.combine(1, 2)
