"""One live export, one dead one."""

__all__ = ["dead_fn", "used_fn"]


def used_fn():
    return 1


def dead_fn():
    return 2
