"""Fixture package."""
