"""In-project consumer of one of lib's exports."""

from proj_dead.lib import used_fn


def main():
    return used_fn()
