"""RL004 fixture: a fully registered, metadata-carrying experiment."""

__all__ = ["run"]

META = {
    "name": "fig1",
    "title": "A well-formed experiment",
    "source": "Fig. 1",
}


def run():
    return None
