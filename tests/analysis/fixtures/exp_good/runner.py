"""RL004 fixture: runner registering every sibling experiment."""

from typing import Callable

EXPERIMENTS: dict[str, Callable[[], object]] = {
    "fig1": None,
}
