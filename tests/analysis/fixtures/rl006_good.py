"""RL006 fixture: valid equation citations.

``D(N)`` is Eq. 5 and ``ED`` is Eq. 6; together they are Eqs. 5-6.
"""


def distinct(probs, n):
    """Eq. 5 of the paper (see also Eq. 2 for the bufferless case)."""
    return None


class Model:
    """Covers Eqs. 1-4 plus the equipment list (not an Eq reference)."""
