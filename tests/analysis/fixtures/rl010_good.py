"""RL010 clean: copy-then-own, local outputs, returning variants."""

import numpy as np


def normalize(values):
    values = np.asarray(values, dtype=float).copy()
    values /= values.sum()
    return values


def scaled(values, factor):
    out = np.empty_like(values)
    np.multiply(values, factor, out=out)
    return out


def ordered(values):
    return np.sort(values)
