"""RL012 clean: context-managed, explicitly released, or transferred."""

from concurrent.futures import ThreadPoolExecutor


def pooled(items):
    with ThreadPoolExecutor(max_workers=2) as pool:
        return list(pool.map(str, items))


def conditional(items, parallel):
    pool = ThreadPoolExecutor(max_workers=2) if parallel else None
    try:
        if pool is None:
            return [str(item) for item in items]
        return list(pool.map(str, items))
    finally:
        if pool is not None:
            pool.shutdown()


def read(path):
    with open(path) as handle:
        return handle.read()


def make_pool():
    return ThreadPoolExecutor(max_workers=1)


class Holder:
    def __init__(self):
        self.pool = ThreadPoolExecutor(max_workers=1)

    def close(self):
        self.pool.shutdown()
