"""Fixture package."""
