"""Definitions re-exported through a star import."""

__all__ = ["helper", "shared_value"]

shared_value = 7


def helper():
    return shared_value
