"""Star-imports base; callers here resolve through the fixpoint."""

from proj_star.base import *  # noqa: F403


def run_all():
    return helper()  # noqa: F405
