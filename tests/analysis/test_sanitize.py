"""The shared-state sanitizer: seeded races must be caught, real
concurrent workloads must stay legal, uninstall must restore.

The seeded-race test is the regression the sanitizer exists for: a
cross-thread ``stats.hits += 1`` that is *silent* without the
sanitizer and raises :class:`SanitizerError` with it.

The whole suite also runs under ``REPRO_SANITIZE=1`` in CI, where the
sanitizer is installed before collection; tests that need the plain
(unpatched) world skip there, and tests that uninstall put the
environment-requested patches back before returning.
"""

from __future__ import annotations

import os
import threading

import pytest

import numpy as np

from repro.analysis import sanitize
from repro.analysis.sanitize import (
    SanitizerError,
    adopt,
    enabled_by_env,
    guard,
)
from repro.buffer.base import BufferStats
from repro.buffer.lru import LRUBuffer
from repro.obs.spans import Tracer
from repro.simulation.shard import SharedArray, fork_available

_ENV_INSTALLED = sanitize.is_installed()
needs_plain_world = pytest.mark.skipif(
    _ENV_INSTALLED,
    reason="sanitizer pre-installed via REPRO_SANITIZE",
)


@pytest.fixture()
def sanitizer():
    """Install the sanitizer for one test, restoring afterwards.

    Teardown must run even when the test body raises -- a leaked
    patch would silently alter every later test in the session.
    """
    already = sanitize.is_installed()
    sanitize.install()
    try:
        yield sanitize
    finally:
        if not already:
            sanitize.uninstall()


def _mutate_in_thread(fn):
    """Run ``fn`` in a fresh thread; return the exception it raised."""
    caught: list[BaseException] = []

    def runner():
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to the test
            caught.append(exc)

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    return caught[0] if caught else None


class TestSeededRace:
    @needs_plain_world
    def test_cross_thread_write_is_silent_without_sanitizer(self):
        assert not sanitize.is_installed()
        stats = BufferStats()

        def race():
            stats.hits += 1

        assert _mutate_in_thread(race) is None
        assert stats.hits == 1

    def test_cross_thread_write_raises_with_sanitizer(self, sanitizer):
        stats = BufferStats()

        def race():
            stats.hits += 1

        error = _mutate_in_thread(race)
        assert isinstance(error, SanitizerError)
        assert "hits" in str(error)
        assert stats.hits == 0

    def test_same_thread_writes_stay_legal(self, sanitizer):
        stats = BufferStats()
        stats.hits += 1
        assert stats.hits == 1

    def test_pool_request_checks_affinity(self, sanitizer):
        pool = LRUBuffer(capacity=4)
        pool.request(1)  # owning thread: fine
        error = _mutate_in_thread(lambda: pool.request(2))
        assert isinstance(error, SanitizerError)
        assert "request" in str(error)

    def test_error_names_both_threads(self, sanitizer):
        stats = BufferStats()
        owner = threading.get_ident()
        error = _mutate_in_thread(lambda: stats.__setattr__("hits", 9))
        assert str(owner) in str(error)


class TestAdopt:
    def test_adopt_transfers_ownership(self, sanitizer):
        stats = BufferStats()

        def handoff():
            adopt(stats)
            stats.hits += 1

        assert _mutate_in_thread(handoff) is None
        assert stats.hits == 1

    def test_original_owner_loses_access_after_adopt(self, sanitizer):
        stats = BufferStats()
        assert _mutate_in_thread(lambda: adopt(stats)) is None
        with pytest.raises(SanitizerError):
            stats.hits += 1


class TestTracerDiscipline:
    def test_multithreaded_tracing_stays_legal(self, sanitizer):
        # Spans genuinely finish on many threads; the tracer locks
        # internally, so this must NOT trip the sanitizer.
        tracer = Tracer()
        errors = []

        def work():
            try:
                with tracer.span("w"):
                    pass
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(tracer.finished()) == 4

    def test_unguarded_container_mutation_raises(self, sanitizer):
        tracer = Tracer()
        with pytest.raises(SanitizerError, match="_finished"):
            tracer._finished.append(object())

    def test_guarded_mutation_is_allowed(self, sanitizer):
        tracer = Tracer()
        with tracer._lock:
            tracer._finished.append(object())
        assert len(tracer._finished) == 1


class TestSharedMemoryDiscipline:
    def test_disjoint_grants_stay_legal(self, sanitizer):
        arr = SharedArray.create(100, np.int64)
        try:
            arr.grant(0, 50)
            arr.grant(50, 100)
        finally:
            arr.dispose()

    def test_overlapping_grant_raises(self, sanitizer):
        # The seeded violation: two workers about to share writable
        # bytes.  Silent without the sanitizer, loud with it — and
        # loud *at issue time*, before any worker runs.
        arr = SharedArray.create(100, np.int64)
        try:
            arr.grant(0, 60)
            with pytest.raises(SanitizerError, match="overlap"):
                arr.grant(59, 100)
        finally:
            arr.dispose()

    def test_release_grants_resets_the_phase(self, sanitizer):
        arr = SharedArray.create(100, np.int64)
        try:
            arr.grant(0, 100)
            arr.release_grants()  # phase barrier: all futures done
            arr.grant(0, 100)  # re-granting the same range is fine now
        finally:
            arr.dispose()

    def test_non_creator_dispose_raises(self, sanitizer):
        # A forked child copies owner=True, so the flag alone cannot
        # stop a child unlink; the pid check can.  Simulate the child
        # by faking the recorded creator pid.
        arr = SharedArray.create(10, np.int64)
        arr.created_pid = os.getpid() + 1
        with pytest.raises(SanitizerError, match="pid"):
            arr.dispose()
        arr.created_pid = os.getpid()
        arr.dispose()

    def test_pid_addressed_grant_refuses_foreign_process(self, sanitizer):
        # The serving pool addresses each stats grant to one worker
        # pid; materializing it anywhere else is the cross-process
        # analogue of a cross-thread write.
        arr = SharedArray.create(10, np.int64)
        try:
            foreign = arr.grant(0, 5, pid=os.getpid() + 1)
            with pytest.raises(SanitizerError, match="pid"):
                foreign.writable()
            ours = arr.grant(5, 10, pid=os.getpid())
            ours.writable()[:] = 7  # addressed to us: fine
        finally:
            arr.release_grants()
            arr.dispose()

    def test_unaddressed_grant_stays_legal(self, sanitizer):
        # pid=None keeps the PR-7 sweep semantics: any process that
        # holds the grant may materialize it.
        arr = SharedArray.create(10, np.int64)
        try:
            arr.grant(0, 10).writable()[:] = 1
        finally:
            arr.release_grants()
            arr.dispose()

    @needs_plain_world
    def test_overlapping_grant_is_silent_without_sanitizer(self):
        assert not sanitize.is_installed()
        arr = SharedArray.create(100, np.int64)
        try:
            arr.grant(0, 60)
            arr.grant(59, 100)  # silent: exactly the race RL009 fears
        finally:
            arr.dispose()

    @pytest.mark.skipif(
        not fork_available(), reason="sharded sweep needs fork"
    )
    def test_sharded_sweep_runs_clean_under_sanitizer(self, sanitizer):
        # The real workload: a 2-worker sweep issues dozens of grants
        # across three phases and disposes five segments — all of it
        # must satisfy the grant/ownership discipline.
        from repro.packing import pack_description
        from repro.queries import UniformPointWorkload
        from repro.simulation import simulate_sweep
        from tests.conftest import random_rects

        rects = random_rects(np.random.default_rng(7), 400, max_side=0.04)
        desc = pack_description(rects, capacity=16, ordering="hs")
        results = simulate_sweep(
            desc,
            UniformPointWorkload(),
            (2, 9),
            n_batches=2,
            batch_size=100,
            warmup_queries=100,
            rng=3,
            workers=2,
        )
        assert len(results) == 2


class TestShardLockGuards:
    """The sharded pool's shards are lock-guarded, not thread-affine."""

    def test_concurrent_requests_stay_legal(self, sanitizer):
        from repro.buffer import ShardedBufferPool

        pool = ShardedBufferPool(64, 8)
        errors: list[BaseException] = []

        def work(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for page in rng.integers(0, 500, 2000):
                    pool.request(int(page))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(s,)) for s in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        agg = pool.aggregate_stats()
        assert agg.requests == 8000
        assert agg.hits + agg.misses == agg.requests

    def test_unguarded_shard_request_raises(self, sanitizer):
        from repro.buffer import ShardedBufferPool

        pool = ShardedBufferPool(16, 2)
        # Same thread, no lock: affinity would wave this through, the
        # guard does not — the lock is the synchronization statement.
        with pytest.raises(SanitizerError, match="guard"):
            pool._pools[0].request(123)

    def test_unguarded_shard_stats_write_raises(self, sanitizer):
        from repro.buffer import ShardedBufferPool

        pool = ShardedBufferPool(16, 2)
        with pytest.raises(SanitizerError, match="guard"):
            pool._pools[1].stats.hits += 1

    def test_holding_the_shard_lock_makes_it_legal(self, sanitizer):
        from repro.buffer import ShardedBufferPool

        pool = ShardedBufferPool(16, 2)
        with pool._locks[0]:
            pool._pools[0].request(123)
        assert pool.aggregate_stats().requests == 1

    def test_cross_thread_guarded_write_is_legal(self, sanitizer):
        from repro.buffer import ShardedBufferPool

        pool = ShardedBufferPool(16, 2)

        def guarded():
            with pool._locks[0]:
                pool._pools[0].request(7)

        assert _mutate_in_thread(guarded) is None
        assert pool.aggregate_stats().requests == 1

    def test_guard_converts_affinity_to_lock_discipline(self, sanitizer):
        # guard() is the generic registration the sharded-pool patch
        # uses: after it, the lock — not the creating thread — decides.
        stats = BufferStats()
        lock = threading.Lock()
        guard(stats, lock)
        with pytest.raises(SanitizerError, match="guard"):
            stats.hits += 1  # same thread, lock not held
        with lock:
            stats.hits += 1
        assert stats.hits == 1

    def test_adopt_clears_a_guard(self, sanitizer):
        stats = BufferStats()
        guard(stats, threading.Lock())
        adopt(stats)
        stats.hits += 1  # affinity again: owner thread, no lock needed
        assert stats.hits == 1

    def test_plain_pools_keep_affinity_semantics(self, sanitizer):
        # guard() registration is per-shard-instance: an unrelated
        # plain pool still gets the thread-affinity check.
        pool = LRUBuffer(capacity=4)
        pool.request(1)
        error = _mutate_in_thread(lambda: pool.request(2))
        assert isinstance(error, SanitizerError)

    def test_seeded_concurrent_soak_reconciles(self, sanitizer):
        # The acceptance soak: seeded concurrent traffic through the
        # full serving stack stays sanitizer-clean and the shard sums
        # reconcile with the aggregate.
        from repro.packing import pack_description
        from repro.queries import UniformPointWorkload
        from repro.serving import LoadGenerator, QueryService
        from tests.conftest import random_rects

        rects = random_rects(np.random.default_rng(17), 400, max_side=0.04)
        desc = pack_description(rects, capacity=16, ordering="hs")
        service = QueryService(
            desc, UniformPointWorkload(), 16, shards=4, max_batch=64,
        )
        generator = LoadGenerator(
            service, rate_qps=50_000, n_queries=600, seed=2
        )
        service.start(workers=2)
        try:
            report = generator.run()
        finally:
            service.stop()
        assert report.queries == 600
        agg = report.buffer_aggregate
        for field in agg:
            assert agg[field] == sum(
                s[field] for s in report.buffer_per_shard
            )


class TestTelemetryDiscipline:
    """The telemetry sink's window state is lock-guarded."""

    def make_sink(self, writer=None):
        from repro.obs.telemetry import TelemetrySink
        from repro.packing import pack_description
        from repro.queries import UniformPointWorkload
        from repro.serving import QueryService
        from tests.conftest import random_rects

        rects = random_rects(np.random.default_rng(23), 400, max_side=0.04)
        desc = pack_description(rects, capacity=16, ordering="hs")
        service = QueryService(
            desc, UniformPointWorkload(), 16, shards=2, max_batch=64
        )
        return service, TelemetrySink(service, writer=writer)

    def test_unguarded_window_mutation_raises(self, sanitizer):
        _, sink = self.make_sink()
        with pytest.raises(SanitizerError, match="_window_deltas"):
            sink._window_deltas.append((1, 1, 0))

    def test_guarded_mutation_is_allowed(self, sanitizer):
        _, sink = self.make_sink()
        with sink._lock:
            sink._window_deltas.append((1, 1, 0))
        assert len(sink._window_deltas) == 1

    def test_tick_path_stays_legal(self, sanitizer):
        service, sink = self.make_sink()
        rng = np.random.default_rng(2)
        for _ in range(3):
            service.process(
                service.workload.sample_points(100, rng)
            )
            tick = sink.tick()
        assert tick["seq"] == 2
        assert (
            tick["cumulative"]["aggregate"]["requests"]
            == service.pool.aggregate_stats().requests
        )

    def test_concurrent_serving_with_ticker_stays_legal(self, sanitizer):
        from repro.serving import LoadGenerator

        service, sink = self.make_sink()
        service.telemetry = sink
        generator = LoadGenerator(
            service, rate_qps=50_000, n_queries=400, seed=3
        )
        sink.interval_s = 0.005
        service.start(workers=2)
        sink.start()
        try:
            report = generator.run()
        finally:
            sink.close()
            service.stop()
        assert report.queries == 400
        pointer = sink.pointer()
        assert pointer["final"]["aggregate"] == (
            service.pool.aggregate_stats().as_dict()
        )


class TestInstallLifecycle:
    def test_install_is_idempotent(self, sanitizer):
        sanitize.install()  # second call must not double-wrap
        stats = BufferStats()
        stats.hits = 3
        assert stats.hits == 3

    @needs_plain_world
    def test_uninstall_restores_plain_behavior(self):
        sanitize.install()
        sanitize.uninstall()
        stats = BufferStats()
        assert _mutate_in_thread(lambda: setattr(stats, "hits", 5)) is None
        assert stats.hits == 5

    @needs_plain_world
    def test_uninstall_without_install_is_a_noop(self):
        assert not sanitize.is_installed()
        sanitize.uninstall()
        assert not sanitize.is_installed()

    def test_enabled_by_env(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
        assert not enabled_by_env()
        for value in ("1", "true", "on"):
            monkeypatch.setenv(sanitize.ENV_FLAG, value)
            assert enabled_by_env()
        monkeypatch.setenv(sanitize.ENV_FLAG, "0")
        assert not enabled_by_env()

    def test_existing_instances_are_covered(self):
        # Patching happens on the class, so objects created *before*
        # install are checked too (they self-adopt on first touch).
        stats = BufferStats()
        sanitize.install()
        try:
            stats.hits += 1  # first touch adopts to this thread
            error = _mutate_in_thread(lambda: setattr(stats, "hits", 0))
            assert isinstance(error, SanitizerError)
        finally:
            if not _ENV_INSTALLED:
                sanitize.uninstall()
