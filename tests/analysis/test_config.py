"""Config loading: pyproject table, fallback parser, overrides."""

from __future__ import annotations

import pytest

from repro.analysis import Config, find_pyproject, load_config
from repro.analysis.config import _parse_table_fallback

SAMPLE = """\
[project]
name = "demo"

[tool.repro.analysis]
paths = ["src", "extra"]
exclude = [
    "tests/analysis/fixtures",
    "build",
]
ignore = ["RL006"]
float-eq-paths = ["repro/geometry/"]

[tool.other]
paths = ["nope"]
"""


class TestLoadConfig:
    def test_repo_pyproject_round_trip(self, repo_root):
        config = load_config(repo_root / "pyproject.toml")
        assert config.paths == ("src",)
        assert "tests/analysis/fixtures" in config.exclude
        assert config.float_eq_paths == (
            "repro/accel/", "repro/geometry/", "repro/model/"
        )
        assert config.kernel_paths == (
            "repro/accel/", "repro/geometry/", "repro/packing/"
        )

    def test_missing_file_yields_defaults(self, tmp_path):
        assert load_config(tmp_path / "nope.toml") == Config()
        assert load_config(None) == Config()

    def test_sample_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(SAMPLE, encoding="utf-8")
        config = load_config(pyproject)
        assert config.paths == ("src", "extra")
        assert config.exclude == ("tests/analysis/fixtures", "build")
        assert config.ignore == ("RL006",)
        assert config.float_eq_paths == ("repro/geometry/",)
        # keys from other tables must not leak in
        assert config.kernel_paths == Config().kernel_paths

    def test_unknown_key_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.analysis]\nbogus = true\n", encoding="utf-8"
        )
        with pytest.raises(ValueError, match="unknown reprolint config key"):
            load_config(pyproject)


class TestFallbackParser:
    """The 3.10 path: no tomllib, a hand-rolled table reader."""

    def test_matches_tomllib_for_the_sample(self):
        parsed = _parse_table_fallback(SAMPLE, "tool.repro.analysis")
        assert parsed == {
            "paths": ["src", "extra"],
            "exclude": ["tests/analysis/fixtures", "build"],
            "ignore": ["RL006"],
            "float-eq-paths": ["repro/geometry/"],
        }

    def test_matches_tomllib_for_repo_pyproject(self, repo_root):
        tomllib = pytest.importorskip("tomllib")
        text = (repo_root / "pyproject.toml").read_text(encoding="utf-8")
        expected = tomllib.loads(text)["tool"]["repro"]["analysis"]
        assert _parse_table_fallback(text, "tool.repro.analysis") == expected

    def test_config_from_fallback_equals_config_from_tomllib(self, repo_root):
        text = (repo_root / "pyproject.toml").read_text(encoding="utf-8")
        via_fallback = Config.from_mapping(
            _parse_table_fallback(text, "tool.repro.analysis")
        )
        assert via_fallback == load_config(repo_root / "pyproject.toml")


class TestFindPyproject:
    def test_walks_up_to_repo_root(self, repo_root):
        nested = repo_root / "tests" / "analysis"
        assert find_pyproject(nested) == repo_root / "pyproject.toml"

    def test_none_when_absent(self, tmp_path):
        assert find_pyproject(tmp_path) is None


class TestOverride:
    def test_override_replaces_only_named_fields(self):
        config = Config().override(select=("RL001",))
        assert config.select == ("RL001",)
        assert config.paths == Config().paths
