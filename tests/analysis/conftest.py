"""Shared helpers for the reprolint tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Config, check_module

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]


def fixture_config(**overrides):
    """A config whose path scopes select the fixture directory."""
    base: dict[str, object] = dict(
        float_eq_paths=("fixtures/",),
        kernel_paths=("fixtures/",),
        experiment_paths=("fixtures/",),
        rng_helper_paths=(),
    )
    base.update(overrides)
    return Config(**base)  # type: ignore[arg-type]


def run_rule(rule_id: str, fixture: str, **overrides):
    """Run exactly one rule over one fixture file."""
    config = fixture_config(**overrides).override(select=(rule_id,))
    return check_module(FIXTURES / fixture, config, root=REPO_ROOT)


@pytest.fixture()
def repo_root() -> Path:
    return REPO_ROOT
