"""Shared helpers for the reprolint tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Config, check_module
from repro.analysis.graph import build_project

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]


def fixture_config(**overrides):
    """A config whose path scopes select the fixture directory."""
    base: dict[str, object] = dict(
        float_eq_paths=("fixtures/",),
        kernel_paths=("fixtures/",),
        experiment_paths=("fixtures/",),
        rng_helper_paths=(),
    )
    base.update(overrides)
    return Config(**base)  # type: ignore[arg-type]


def run_rule(rule_id: str, fixture: str, **overrides):
    """Run exactly one rule over one fixture file."""
    config = fixture_config(**overrides).override(select=(rule_id,))
    return check_module(FIXTURES / fixture, config, root=REPO_ROOT)


def fixture_files(*parts: str) -> list[Path]:
    """Fixture paths expanded to their ``.py`` files (dirs recursed)."""
    files: list[Path] = []
    for part in parts:
        path = FIXTURES / part
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def build_fixture_project(*parts: str, usage: tuple[str, ...] = ()):
    """A ProjectGraph over fixture packages/files; returns (files, project)."""
    files = fixture_files(*parts)
    return files, build_project(
        files, usage_files=fixture_files(*usage), root=REPO_ROOT
    )


def run_project_rule(
    rule_id: str,
    *parts: str,
    usage: tuple[str, ...] = (),
    **overrides,
):
    """Run one whole-program rule over fixture mini-packages."""
    config = fixture_config(**overrides).override(select=(rule_id,))
    files, project = build_fixture_project(*parts, usage=usage)
    violations = []
    for path in files:
        violations.extend(
            check_module(path, config, root=REPO_ROOT, project=project)
        )
    return sorted(violations)


@pytest.fixture()
def repo_root() -> Path:
    return REPO_ROOT
