"""Tests for reprolint (repro.analysis): framework, rules, and gate."""
