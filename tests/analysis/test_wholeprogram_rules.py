"""RL008-RL012: the whole-program rules, over fixture mini-packages."""

from __future__ import annotations

from .conftest import run_project_rule, run_rule

from repro.analysis.rules.rl008_layering import parse_dag


class TestParseDag:
    def test_entries_parse_to_edge_sets(self):
        dag = parse_dag(("core ->", "api -> core engine"))
        assert dag["core"] == frozenset()
        assert dag["api"] == frozenset({"core", "engine"})


class TestRL008Layering:
    DAG = (
        "core ->",
        "engine -> core",
        "api -> core engine",
    )

    def test_upward_import_flagged(self):
        violations = run_project_rule(
            "RL008",
            "proj_layer_bad",
            dag_root="proj_layer_bad",
            package_dag=("core ->", "engine -> core"),
        )
        assert len(violations) == 1
        assert "core" in violations[0].message
        assert "engine" in violations[0].message

    def test_conforming_tree_is_clean(self):
        violations = run_project_rule(
            "RL008",
            "proj_layer_ok",
            dag_root="proj_layer_ok",
            package_dag=self.DAG,
        )
        assert violations == []

    def test_deferred_import_is_exempt(self):
        # proj_layer_ok/core/deferred.py imports engine *inside* a
        # function -- the sanctioned escape hatch -- and must stay
        # clean even though core -> engine is not a DAG edge.
        violations = run_project_rule(
            "RL008",
            "proj_layer_ok",
            dag_root="proj_layer_ok",
            package_dag=("core ->", "engine -> core", "api -> core engine"),
        )
        assert violations == []

    def test_import_cycle_reported_once(self):
        violations = run_project_rule(
            "RL008",
            "proj_cycle",
            dag_root="proj_cycle",
            package_dag=(),
        )
        cycle_hits = [v for v in violations if "cycle" in v.message]
        assert len(cycle_hits) == 1
        assert "proj_cycle.alpha" in cycle_hits[0].message
        assert "proj_cycle.beta" in cycle_hits[0].message


class TestRL009Concurrency:
    def test_racy_workers_flagged(self):
        violations = run_project_rule("RL009", "proj_reach")
        messages = "\n".join(v.message for v in violations)
        assert "`RESULTS`" in messages  # list .append in a worker
        assert "`TOTALS`" in messages  # dict subscript store
        assert "`COUNTER`" in messages  # global augmented assign
        assert "`counts`" in messages  # closure-captured dict

    def test_violations_name_the_worker(self):
        violations = run_project_rule("RL009", "proj_reach")
        workers = {v.message.split("`")[1] for v in violations}
        assert "record" in workers
        assert "bump" in workers

    def test_locked_and_disjoint_writes_are_clean(self):
        violations = run_project_rule("RL009", "proj_reach_ok")
        assert violations == []


class TestRL010Aliasing:
    def test_inplace_param_mutations_flagged(self):
        violations = run_rule("RL010", "rl010_bad.py", kernel_paths=())
        assert len(violations) == 4
        messages = "\n".join(v.message for v in violations)
        assert "out=" in messages
        assert ".sort(" in messages

    def test_copy_then_own_is_clean(self):
        violations = run_rule("RL010", "rl010_good.py", kernel_paths=())
        assert violations == []

    def test_kernel_paths_are_exempt(self):
        # fixture_config defaults kernel_paths to the fixture dir, so
        # without the override the bad file is sanctioned kernel code.
        violations = run_rule("RL010", "rl010_bad.py")
        assert violations == []


class TestRL011DeadExports:
    def test_unimported_export_flagged(self):
        violations = run_project_rule("RL011", "proj_dead")
        assert len(violations) == 1
        assert "dead_fn" in violations[0].message
        assert "used_fn" not in violations[0].message

    def test_anchored_at_the_entry_line(self):
        (violation,) = run_project_rule("RL011", "proj_dead")
        assert violation.line > 0

    def test_usage_tree_keeps_exports_alive(self):
        violations = run_project_rule(
            "RL011", "proj_dead", usage=("proj_dead_usage",)
        )
        assert violations == []

    def test_star_import_keeps_exports_alive(self):
        violations = run_project_rule("RL011", "proj_star")
        assert violations == []


class TestRL012Resources:
    def test_leaks_flagged(self):
        violations = run_rule("RL012", "rl012_bad.py")
        assert len(violations) == 4
        messages = "\n".join(v.message for v in violations)
        assert "executor" in messages
        assert "file handle" in messages
        assert "mmap" in messages

    def test_managed_and_transferred_are_clean(self):
        violations = run_rule("RL012", "rl012_good.py")
        assert violations == []
