"""Positive and negative fixture tests for every RL rule."""

from __future__ import annotations

import pytest

from .conftest import run_rule


def lines(violations):
    return sorted(v.line for v in violations)


class TestRL001FloatEquality:
    def test_flags_float_literal_comparisons(self):
        violations = run_rule("RL001", "rl001_bad.py")
        assert [v.rule_id for v in violations] == ["RL001"] * 3
        assert lines(violations) == [5, 7, 9]

    def test_accepts_ordering_int_and_pragma(self):
        assert run_rule("RL001", "rl001_good.py") == []

    def test_scoped_to_configured_paths(self):
        violations = run_rule(
            "RL001", "rl001_bad.py", float_eq_paths=("repro/geometry/",)
        )
        assert violations == []


class TestRL002ProbabilityStability:
    def test_flags_pow_log_and_power(self):
        violations = run_rule("RL002", "rl002_bad.py")
        assert [v.rule_id for v in violations] == ["RL002"] * 3
        assert lines(violations) == [7, 11, 15]
        messages = " ".join(v.message for v in violations)
        assert "log1p" in messages

    def test_accepts_log1p_and_small_exponents(self):
        assert run_rule("RL002", "rl002_good.py") == []


class TestRL003KernelPurity:
    def test_flags_mutation_and_global(self):
        violations = run_rule("RL003", "rl003_bad.py")
        assert len(violations) == 4
        messages = [v.message for v in violations]
        assert any("writes into parameter `out`" in m for m in messages)
        assert any("items.sort()" in m for m in messages)
        assert any("writes into parameter `node`" in m for m in messages)
        assert any("`global`" in m for m in messages)

    def test_accepts_copy_then_own_and_locals(self):
        assert run_rule("RL003", "rl003_good.py") == []

    def test_scoped_to_kernel_paths(self):
        assert (
            run_rule("RL003", "rl003_bad.py", kernel_paths=("repro/geometry/",))
            == []
        )


class TestRL004ExperimentRegistration:
    def test_flags_missing_meta_and_run(self):
        violations = run_rule("RL004", "exp_bad/fig1.py")
        messages = [v.message for v in violations]
        assert len(violations) == 3
        assert any("lacks a module-level META" in m for m in messages)
        assert any("lacks a top-level run()" in m for m in messages)
        assert any("__all__ must export `run`" in m for m in messages)

    def test_flags_malformed_meta(self):
        violations = run_rule("RL004", "exp_bad/table1.py")
        messages = [v.message for v in violations]
        assert len(violations) == 2
        assert any("missing required key 'source'" in m for m in messages)
        assert any("META['name'] is 'table9'" in m for m in messages)

    def test_flags_unregistered_experiment_in_runner(self):
        violations = run_rule("RL004", "exp_bad/runner.py")
        assert len(violations) == 1
        assert "'table1' is not registered" in violations[0].message

    @pytest.mark.parametrize("fixture", ["exp_good/fig1.py", "exp_good/runner.py"])
    def test_accepts_registered_experiments(self, fixture):
        assert run_rule("RL004", fixture) == []


class TestRL005AllHygiene:
    def test_flags_ghost_duplicate_and_missing_export(self):
        violations = run_rule("RL005", "rl005_bad.py")
        messages = [v.message for v in violations]
        assert len(violations) == 3
        assert any("more than once" in m for m in messages)
        assert any("'ghost_name'" in m for m in messages)
        assert any("`forgotten_fn` is missing" in m for m in messages)

    def test_flags_module_without_all(self):
        violations = run_rule("RL005", "rl005_missing.py")
        assert len(violations) == 1
        assert "no __all__" in violations[0].message

    def test_accepts_clean_module(self):
        assert run_rule("RL005", "rl005_good.py") == []


class TestRL006EquationReferences:
    def test_flags_unknown_equations(self):
        violations = run_rule("RL006", "rl006_bad.py")
        cited = sorted(
            int(v.message.split("Eq. ")[1].split(",")[0]) for v in violations
        )
        assert cited == [17, 40, 41, 42, 99]

    def test_accepts_known_equations_and_ranges(self):
        assert run_rule("RL006", "rl006_good.py") == []


class TestRL007Determinism:
    def test_flags_unseeded_rngs_and_bare_except(self):
        violations = run_rule("RL007", "rl007_bad.py")
        messages = [v.message for v in violations]
        assert len(violations) == 5
        assert sum("without a seed" in m for m in messages) == 2
        assert any("np.random.rand()" in m for m in messages)
        assert any("random.random()" in m for m in messages)
        assert any("bare `except:`" in m for m in messages)

    def test_accepts_seeded_randomness(self):
        assert run_rule("RL007", "rl007_good.py") == []

    def test_rng_helper_paths_exempt_seeding_but_not_excepts(self):
        violations = run_rule(
            "RL007", "rl007_bad.py", rng_helper_paths=("fixtures/",)
        )
        assert len(violations) == 1
        assert "bare `except:`" in violations[0].message
