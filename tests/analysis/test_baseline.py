"""Baseline files: write/load/apply roundtrip and CI-gating semantics."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    SCHEMA,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.core import Violation


def finding(path="src/a.py", line=10, rule="RL009", message="racy write"):
    return Violation(path=path, line=line, col=1, rule_id=rule, message=message)


class TestRoundtrip:
    def test_write_then_load_preserves_multiplicity(self, tmp_path):
        path = tmp_path / "baseline.json"
        entries = write_baseline(
            path, [finding(), finding(), finding(rule="RL011")]
        )
        assert entries == 2  # two distinct keys, one with count 2
        baseline = load_baseline(path)
        assert baseline[("src/a.py", "RL009", "racy write")] == 2
        assert baseline[("src/a.py", "RL011", "racy write")] == 1

    def test_file_is_sorted_and_schema_tagged(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding(rule="RL012"), finding(rule="RL008")])
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["schema"] == SCHEMA
        rules = [entry["rule"] for entry in data["entries"]]
        assert rules == sorted(rules)

    def test_unrecognized_schema_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"schema": "somebody-else/9", "entries": []}),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)


class TestApply:
    def test_matched_findings_are_absorbed(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding()])
        new, matched = apply_baseline([finding()], load_baseline(path))
        assert new == [] and matched == 1

    def test_line_moves_do_not_invalidate_the_baseline(self, tmp_path):
        # Lines are excluded from the key on purpose: unrelated edits
        # reflow accepted findings without creating churn.
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding(line=10)])
        new, matched = apply_baseline(
            [finding(line=99)], load_baseline(path)
        )
        assert new == [] and matched == 1

    def test_excess_repeats_count_as_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding()])
        new, matched = apply_baseline(
            [finding(), finding()], load_baseline(path)
        )
        assert matched == 1
        assert len(new) == 1

    def test_novel_finding_is_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding()])
        novel = finding(message="a different defect")
        new, matched = apply_baseline([novel], load_baseline(path))
        assert new == [novel] and matched == 0

    def test_empty_baseline_passes_everything_through(self):
        from collections import Counter

        new, matched = apply_baseline([finding()], Counter())
        assert len(new) == 1 and matched == 0
