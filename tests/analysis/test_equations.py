"""The paper-equation map, and its consistency with docs/MODEL.md."""

from __future__ import annotations

from repro.analysis import PAPER_EQUATIONS, known_equation
from repro.analysis.rules.rl006_equation_refs import iter_equation_numbers


class TestEquationMap:
    def test_covers_the_papers_numbering(self):
        assert sorted(PAPER_EQUATIONS) == [1, 2, 3, 4, 5, 6]

    def test_statements_name_the_key_quantities(self):
        assert "D(N)" in PAPER_EQUATIONS[5]
        assert "ED" in PAPER_EQUATIONS[6]

    def test_known_equation(self):
        assert known_equation(5)
        assert not known_equation(99)


class TestReferenceScanner:
    def test_single_and_range_references(self):
        text = "See Eq. 2 and Eqs. 5-6; also Eqs. 1–3 (en dash)."
        assert sorted(set(iter_equation_numbers(text))) == [1, 2, 3, 5, 6]

    def test_ignores_non_references(self):
        assert list(iter_equation_numbers("equipment list, Eq 5 without dot")) == []


class TestModelDocConsistency:
    def test_model_md_cites_only_mapped_equations(self, repo_root):
        text = (repo_root / "docs" / "MODEL.md").read_text(encoding="utf-8")
        cited = set(iter_equation_numbers(text))
        assert cited, "MODEL.md should cite at least one equation"
        unknown = cited - set(PAPER_EQUATIONS)
        assert not unknown, f"MODEL.md cites unmapped equations: {sorted(unknown)}"

    def test_analysis_doc_cites_only_mapped_equations(self, repo_root):
        doc = repo_root / "docs" / "ANALYSIS.md"
        cited = set(iter_equation_numbers(doc.read_text(encoding="utf-8")))
        unknown = cited - set(PAPER_EQUATIONS)
        assert not unknown, f"ANALYSIS.md cites unmapped equations: {sorted(unknown)}"
