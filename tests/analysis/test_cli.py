"""CLI behaviour: formats, exit codes, and the console entry point."""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys

import pytest

from repro.analysis.cli import main

REPORT_LINE = re.compile(r"^.+\.py:\d+:\d+ RL\d{3} .+$")


def write_violating_module(directory):
    path = directory / "seeded.py"
    path.write_text(
        '"""Module citing Eq. 77, which the paper does not define."""\n',
        encoding="utf-8",
    )
    return path


class TestMain:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Nothing to see."""\n', encoding="utf-8")
        assert main([str(clean)]) == 0
        captured = capsys.readouterr()
        assert "1 file clean" in captured.err

    def test_violation_exits_one_with_precise_report(self, tmp_path, capsys):
        path = write_violating_module(tmp_path)
        assert main([str(path)]) == 1
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 1
        assert REPORT_LINE.match(lines[0])
        assert "RL006" in lines[0]
        assert "Eq. 77" in lines[0]

    def test_json_format(self, tmp_path, capsys):
        path = write_violating_module(tmp_path)
        assert main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        (violation,) = payload["violations"]
        assert violation["rule"] == "RL006"
        assert violation["line"] == 1

    def test_select_limits_rules(self, tmp_path, capsys):
        path = write_violating_module(tmp_path)
        assert main([str(path), "--select", "RL001"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL004", "RL007"):
            assert rule_id in out

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path / "does-not-exist")])
        assert exc.value.code == 2

    def test_unknown_select_is_usage_error(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(SystemExit) as exc:
            main([str(clean), "--select", "RL999"])
        assert exc.value.code == 2


class TestModuleInvocation:
    """``python -m repro.analysis`` — the acceptance-criteria surface."""

    def _run(self, repo_root, *args):
        env = dict(os.environ)
        src = str(repo_root / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            cwd=repo_root,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_src_tree_is_clean(self, repo_root):
        result = self._run(repo_root, "src")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_seeded_violation_fails_with_report(self, repo_root, tmp_path):
        path = write_violating_module(tmp_path)
        result = self._run(repo_root, str(path))
        assert result.returncode == 1
        assert REPORT_LINE.match(result.stdout.strip().splitlines()[0])
