"""CLI behaviour: formats, exit codes, and the console entry point."""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys

import pytest

from repro.analysis.cli import expand_select, format_github, main
from repro.analysis.core import Violation

REPORT_LINE = re.compile(r"^.+\.py:\d+:\d+ RL\d{3} .+$")


def write_violating_module(directory):
    path = directory / "seeded.py"
    path.write_text(
        '"""Module citing Eq. 77, which the paper does not define."""\n',
        encoding="utf-8",
    )
    return path


class TestExpandSelect:
    def test_range_expands_to_registered_rules(self):
        expanded = expand_select(("RL001-RL003",))
        assert expanded == ("RL001", "RL002", "RL003")

    def test_full_range_reaches_rl012(self):
        expanded = expand_select(("RL001-RL012",))
        assert len(expanded) == 12
        assert expanded[-1] == "RL012"

    def test_short_upper_bound_form(self):
        assert expand_select(("RL010-12",)) == ("RL010", "RL011", "RL012")

    def test_plain_tokens_pass_through(self):
        assert expand_select(("RL005", "RL009")) == ("RL005", "RL009")

    def test_range_skips_unregistered_ids(self):
        # RL012 is the last registered rule; a range past it must not
        # invent ids the registry cannot honour.
        expanded = expand_select(("RL011-RL099",))
        assert expanded == ("RL011", "RL012")


class TestGithubFormat:
    def test_annotation_shape(self):
        violation = Violation(
            path="src/x.py", line=3, col=7, rule_id="RL009", message="boom"
        )
        assert format_github(violation) == (
            "::error file=src/x.py,line=3,col=7,title=RL009::boom"
        )

    def test_message_newlines_and_percents_escaped(self):
        violation = Violation(
            path="src/x.py",
            line=1,
            col=1,
            rule_id="RL001",
            message="50% worse\nthan before",
        )
        rendered = format_github(violation)
        assert "\n" not in rendered
        assert "%0A" in rendered and "%25" in rendered


class TestMain:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text('"""Nothing to see."""\n', encoding="utf-8")
        assert main([str(clean)]) == 0
        captured = capsys.readouterr()
        assert "1 file clean" in captured.err

    def test_violation_exits_one_with_precise_report(self, tmp_path, capsys):
        path = write_violating_module(tmp_path)
        assert main([str(path)]) == 1
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 1
        assert REPORT_LINE.match(lines[0])
        assert "RL006" in lines[0]
        assert "Eq. 77" in lines[0]

    def test_json_format(self, tmp_path, capsys):
        path = write_violating_module(tmp_path)
        assert main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        (violation,) = payload["violations"]
        assert violation["rule"] == "RL006"
        assert violation["line"] == 1

    def test_select_limits_rules(self, tmp_path, capsys):
        path = write_violating_module(tmp_path)
        assert main([str(path), "--select", "RL001"]) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL004", "RL007"):
            assert rule_id in out

    def test_github_format_output(self, tmp_path, capsys):
        path = write_violating_module(tmp_path)
        assert main([str(path), "--format", "github"]) == 1
        out = capsys.readouterr().out.strip()
        assert out.startswith("::error file=")
        assert "title=RL006" in out

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        path = write_violating_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        # accept the current findings...
        assert main(
            [str(path), "--write-baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        # ...and the same tree now gates clean against them
        assert main([str(path), "--baseline", str(baseline)]) == 0
        captured = capsys.readouterr()
        assert "baselined" in captured.err

    def test_new_finding_escapes_the_baseline(self, tmp_path, capsys):
        path = write_violating_module(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(path), "--write-baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        extra = tmp_path / "extra.py"
        extra.write_text(
            '"""Module citing Eq. 88, also undefined."""\n',
            encoding="utf-8",
        )
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "Eq. 88" in out
        assert "Eq. 77" not in out

    def test_missing_baseline_is_usage_error(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(SystemExit) as exc:
            main(
                [str(clean), "--baseline", str(tmp_path / "nope.json")]
            )
        assert exc.value.code == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main([str(tmp_path / "does-not-exist")])
        assert exc.value.code == 2

    def test_unknown_select_is_usage_error(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(SystemExit) as exc:
            main([str(clean), "--select", "RL999"])
        assert exc.value.code == 2


class TestModuleInvocation:
    """``python -m repro.analysis`` — the acceptance-criteria surface."""

    def _run(self, repo_root, *args):
        env = dict(os.environ)
        src = str(repo_root / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            cwd=repo_root,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_src_tree_is_clean_modulo_baseline(self, repo_root):
        result = self._run(
            repo_root, "src", "--baseline", "analysis-baseline.json"
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_full_rule_range_select(self, repo_root):
        result = self._run(
            repo_root,
            "src",
            "--select",
            "RL001-RL012",
            "--baseline",
            "analysis-baseline.json",
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_seeded_violation_fails_with_report(self, repo_root, tmp_path):
        path = write_violating_module(tmp_path)
        result = self._run(repo_root, str(path))
        assert result.returncode == 1
        assert REPORT_LINE.match(result.stdout.strip().splitlines()[0])
