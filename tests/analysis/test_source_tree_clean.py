"""The reprolint gate: the shipped source tree must be violation-free.

This is the test that makes the analyzer an enforced invariant rather
than an optional linter: any PR that introduces a float ``==`` in the
model, an unstable ``(1-p)**N``, an unseeded RNG, an unregistered
experiment, or a stale ``__all__`` fails the tier-1 suite here with
the exact ``file:line:col RLxxx message`` locations.
"""

from __future__ import annotations

from repro.analysis import load_config, run_analysis
from repro.analysis.baseline import apply_baseline, load_baseline


def test_src_tree_has_no_new_reprolint_violations(repo_root):
    """All twelve rules, modulo the committed accepted baseline."""
    config = load_config(repo_root / "pyproject.toml")
    paths = [repo_root / p for p in config.paths]
    violations, n_files = run_analysis(paths, config, root=repo_root)
    baseline = load_baseline(repo_root / "analysis-baseline.json")
    new, _matched = apply_baseline(violations, baseline)
    report = "\n".join(v.format() for v in new)
    assert not new, f"new reprolint violations in the source tree:\n{report}"
    assert n_files >= 55, "the analyzer should be scanning the whole src tree"


def test_baseline_has_no_stale_entries(repo_root):
    """Every accepted entry still matches a real finding.

    A fixed finding must leave the baseline too — otherwise the file
    silently grows a free pass for reintroducing the same bug.
    """
    config = load_config(repo_root / "pyproject.toml")
    paths = [repo_root / p for p in config.paths]
    violations, _ = run_analysis(paths, config, root=repo_root)
    baseline = load_baseline(repo_root / "analysis-baseline.json")
    _, matched = apply_baseline(violations, baseline)
    total = sum(baseline.values())
    assert matched == total, (
        f"baseline accepts {total} finding(s) but only {matched} still "
        "exist; regenerate with --write-baseline"
    )
