"""The reprolint gate: the shipped source tree must be violation-free.

This is the test that makes the analyzer an enforced invariant rather
than an optional linter: any PR that introduces a float ``==`` in the
model, an unstable ``(1-p)**N``, an unseeded RNG, an unregistered
experiment, or a stale ``__all__`` fails the tier-1 suite here with
the exact ``file:line:col RLxxx message`` locations.
"""

from __future__ import annotations

from repro.analysis import load_config, run_analysis


def test_src_tree_has_no_reprolint_violations(repo_root):
    config = load_config(repo_root / "pyproject.toml")
    paths = [repo_root / p for p in config.paths]
    violations, n_files = run_analysis(paths, config, root=repo_root)
    report = "\n".join(v.format() for v in violations)
    assert not violations, f"reprolint violations in the source tree:\n{report}"
    assert n_files >= 55, "the analyzer should be scanning the whole src tree"
