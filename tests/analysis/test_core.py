"""Framework tests: pragmas, violations, registry, file walking."""

from __future__ import annotations

import pytest

from repro.analysis import Config, Violation, check_module, registry, run_analysis
from repro.analysis.core import Rule, RuleRegistry


class TestViolation:
    def test_format_is_greppable(self):
        violation = Violation(
            path="src/repro/model/buffered.py",
            line=42,
            col=5,
            rule_id="RL001",
            message="float `==` comparison",
        )
        assert (
            violation.format()
            == "src/repro/model/buffered.py:42:5 RL001 float `==` comparison"
        )

    def test_to_dict_round_trips_fields(self):
        violation = Violation("a.py", 1, 2, "RL002", "msg")
        assert violation.to_dict() == {
            "path": "a.py",
            "line": 1,
            "col": 2,
            "rule": "RL002",
            "message": "msg",
        }

    def test_ordering_is_by_path_then_line(self):
        first = Violation("a.py", 1, 1, "RL002", "x")
        second = Violation("a.py", 9, 1, "RL001", "x")
        third = Violation("b.py", 1, 1, "RL001", "x")
        assert sorted([third, second, first]) == [first, second, third]


class TestPragmas:
    def _check(self, tmp_path, source):
        path = tmp_path / "mod.py"
        path.write_text(source, encoding="utf-8")
        config = Config(float_eq_paths=("",), select=("RL001",))
        return check_module(path, config, root=tmp_path)

    def test_line_pragma_suppresses_only_its_line(self, tmp_path):
        source = (
            "def f(x):\n"
            "    a = x == 1.0  # reprolint: disable=RL001\n"
            "    return x == 2.0 or a\n"
        )
        violations = self._check(tmp_path, source)
        assert [v.line for v in violations] == [3]

    def test_file_pragma_suppresses_whole_module(self, tmp_path):
        source = (
            "# reprolint: disable-file=RL001\n"
            "def f(x):\n"
            "    return x == 1.0\n"
        )
        assert self._check(tmp_path, source) == []

    def test_disable_all_suppresses_every_rule(self, tmp_path):
        source = "def f(x):\n    return x == 1.0  # reprolint: disable=all\n"
        assert self._check(tmp_path, source) == []

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        source = "def f(x):\n    return x == 1.0  # reprolint: disable=RL002\n"
        assert len(self._check(tmp_path, source)) == 1


class TestRegistry:
    def test_all_twelve_rules_registered(self):
        ids = [rule.id for rule in registry.all_rules()]
        assert ids == [f"RL{i:03d}" for i in range(1, 13)]

    def test_duplicate_registration_rejected(self):
        fresh = RuleRegistry()

        class Dummy(Rule):
            id = "RL999"

        fresh.register(Dummy)
        with pytest.raises(ValueError, match="duplicate"):
            fresh.register(Dummy)

    def test_select_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            registry.selected(Config(select=("RL999",)))

    def test_ignore_removes_rule(self):
        rules = registry.selected(Config(ignore=("RL001",)))
        assert "RL001" not in [rule.id for rule in rules]


class TestRunAnalysis:
    def test_syntax_error_reported_as_e001(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n", encoding="utf-8")
        violations, n_files = run_analysis([path], Config(), root=tmp_path)
        assert n_files == 1
        assert violations[0].rule_id == "E001"
        assert "syntax error" in violations[0].message

    def test_exclude_fragments_skip_files(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n", encoding="utf-8")
        skipped = tmp_path / "skipme"
        skipped.mkdir()
        (skipped / "gone.py").write_text("x == 1.0\n", encoding="utf-8")
        config = Config(exclude=("skipme",))
        _, n_files = run_analysis([tmp_path], config, root=tmp_path)
        assert n_files == 1

    def test_results_are_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("def pub():\n    pass\n", encoding="utf-8")
        (tmp_path / "a.py").write_text("def pub():\n    pass\n", encoding="utf-8")
        config = Config(select=("RL005",))
        first, _ = run_analysis([tmp_path], config, root=tmp_path)
        second, _ = run_analysis([tmp_path], config, root=tmp_path)
        assert first == second
        assert [v.path for v in first] == ["a.py", "b.py"]
