"""Audit regression: the real concurrent code stays RL009/RL012-clean.

``repro.simulation.stackdist`` is the one module that actually fans
work out to a thread pool (the multi-capacity LRU sweep), and
``repro.obs`` holds the shared tracer that spans finish into from
every worker.  The audit for this rule rollout found their existing
discipline sound -- slice-disjoint writes plus explicit locks -- and
these tests pin that: if a later edit introduces an unlocked shared
write or leaks the sweep's executor, the whole-program rules must
catch it here, not in a figure that quietly stops reproducing.
"""

from __future__ import annotations

from pathlib import Path

from .conftest import REPO_ROOT, fixture_config

from repro.analysis import check_module
from repro.analysis.graph import build_project

SRC = REPO_ROOT / "src"

AUDITED = [
    SRC / "repro/simulation/stackdist.py",
    *sorted((SRC / "repro/obs").glob("*.py")),
]


def _audit(rule_id: str):
    files = sorted((SRC / "repro").rglob("*.py"))
    project = build_project(files, root=REPO_ROOT)
    config = fixture_config(kernel_paths=()).override(select=(rule_id,))
    violations = []
    for path in AUDITED:
        violations.extend(
            check_module(path, config, root=REPO_ROOT, project=project)
        )
    return violations


class TestAuditedModulesStayClean:
    def test_paths_exist(self):
        for path in AUDITED:
            assert path.is_file(), path

    def test_no_unsynchronized_shared_writes(self):
        violations = _audit("RL009")
        assert violations == [
            # Any entry here means a worker-reachable function started
            # writing shared state without a lock. Fix the code, do
            # not baseline it.
        ]

    def test_no_leaked_resources(self):
        # The sweep builds its executor conditionally
        # (``ThreadPoolExecutor(...) if workers > 1 else None``) and
        # releases it in a ``finally`` -- a shape RL012 must keep
        # accepting.
        violations = _audit("RL012")
        assert violations == []

    def test_stackdist_workers_are_visible_to_the_callgraph(self):
        # The audit is only meaningful if the analyzer actually sees
        # the submit sites; guard against a refactor hiding them.
        files = sorted((SRC / "repro").rglob("*.py"))
        project = build_project(files, root=REPO_ROOT)
        stackdist = [
            site
            for site in project.callgraph.submit_sites
            if site.module == "repro.simulation.stackdist"
        ]
        assert len(stackdist) >= 1
