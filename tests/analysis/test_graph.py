"""The whole-program graph layer: modules, imports, symbols, calls.

Exercised over fixture mini-packages (``tests/analysis/fixtures/proj_*``)
so every behaviour is pinned against a known tree: dotted-name
resolution, toplevel-vs-deferred import records, Tarjan cycle
detection, star-import fixpoint resolution, cross-module call-graph
reachability, and executor submit-site extraction.
"""

from __future__ import annotations

from .conftest import REPO_ROOT, build_fixture_project

from repro.analysis.graph import (
    build_project,
    find_cycles,
    module_name_for,
)


class TestModules:
    def test_dotted_names_from_package_ancestry(self):
        files, project = build_fixture_project("proj_layer_ok")
        assert "proj_layer_ok" in project.modules
        assert "proj_layer_ok.core.ops" in project.modules
        assert "proj_layer_ok.engine.turbine" in project.modules

    def test_module_name_stops_at_non_package_dir(self):
        path = (
            REPO_ROOT
            / "tests/analysis/fixtures/proj_layer_ok/core/ops.py"
        )
        # fixtures/ has no __init__.py, so the walk stops at the package
        assert module_name_for(path) == "proj_layer_ok.core.ops"

    def test_module_at_maps_paths_back(self):
        files, project = build_fixture_project("proj_cycle")
        info = project.module_at(files[-1])
        assert info is not None and info.name.startswith("proj_cycle")

    def test_syntax_error_files_are_skipped(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        project = build_project([bad], root=tmp_path)
        assert project.modules == {}


class TestImportGraph:
    def test_resolved_edges(self):
        _, project = build_fixture_project("proj_layer_ok")
        edges = project.imports.edges()
        assert (
            "proj_layer_ok.core.ops"
            in edges["proj_layer_ok.engine.turbine"]
        )

    def test_function_level_import_is_deferred(self):
        _, project = build_fixture_project("proj_layer_ok")
        records = project.imports.imports_of(
            "proj_layer_ok.core.deferred"
        )
        assert records, "the deferred import should still be recorded"
        assert all(not r.toplevel for r in records)
        assert (
            "proj_layer_ok.core.deferred"
            not in project.imports.edges()
            or not project.imports.edges()["proj_layer_ok.core.deferred"]
        )

    def test_cycle_detected(self):
        _, project = build_fixture_project("proj_cycle")
        cycles = find_cycles(project.imports.edges())
        assert cycles == [["proj_cycle.alpha", "proj_cycle.beta"]]

    def test_acyclic_tree_has_no_cycles(self):
        _, project = build_fixture_project("proj_layer_ok")
        assert find_cycles(project.imports.edges()) == []

    def test_self_loop_reported(self):
        assert find_cycles({"a": {"a"}}) == [["a"]]
        assert find_cycles({"a": {"b"}, "b": set()}) == []


class TestSymbols:
    def test_star_import_resolves_to_origin(self):
        _, project = build_fixture_project("proj_star")
        table = project.symbols["proj_star.middle"]
        symbol = table.resolve("helper")
        assert symbol is not None
        assert symbol.kind == "def"
        assert symbol.origin == "proj_star.base"
        assert symbol.attr == "helper"

    def test_star_import_brings_all_exports(self):
        _, project = build_fixture_project("proj_star")
        table = project.symbols["proj_star.middle"]
        assert table.resolve("shared_value") is not None

    def test_all_names_carry_lines(self):
        _, project = build_fixture_project("proj_dead")
        table = project.symbols["proj_dead.lib"]
        assert table.all_names is not None
        assert [name for name, _ in table.all_names] == [
            "dead_fn",
            "used_fn",
        ]

    def test_submodule_import_binds_module_symbol(self):
        _, project = build_fixture_project("proj_cycle")
        table = project.symbols["proj_cycle.alpha"]
        symbol = table.resolve("beta")
        assert symbol is not None and symbol.kind == "module"
        assert symbol.origin == "proj_cycle.beta"


class TestCallGraph:
    def test_cross_module_call_through_star_import(self):
        _, project = build_fixture_project("proj_star")
        edges = project.callgraph.calls_from("proj_star.middle:run_all")
        assert "proj_star.base:helper" in edges

    def test_submit_sites_extracted(self):
        _, project = build_fixture_project("proj_reach")
        sites = project.callgraph.submit_sites
        methods = sorted(site.method for site in sites)
        assert methods == ["map", "submit", "submit"]

    def test_submit_targets_resolve_across_modules(self):
        _, project = build_fixture_project("proj_reach")
        roots = project.callgraph.submit_roots()
        assert "proj_reach.state:record" in roots
        assert "proj_reach.state:bump" in roots

    def test_reachability_crosses_module_boundary(self):
        _, project = build_fixture_project("proj_reach")
        reachable = project.callgraph.reachable(
            project.callgraph.submit_roots()
        )
        assert "proj_reach.state:record" in reachable

    def test_nested_worker_is_a_node(self):
        _, project = build_fixture_project("proj_reach")
        assert (
            "proj_reach.main:closure_capture.work"
            in project.callgraph.functions
        )
        assert (
            "proj_reach.main:closure_capture.work"
            in project.callgraph.submit_roots()
        )


class TestUsageIndex:
    def test_in_project_import_counts_as_usage(self):
        _, project = build_fixture_project("proj_dead")
        assert project.usage.is_used("proj_dead.lib", "used_fn")
        assert not project.usage.is_used("proj_dead.lib", "dead_fn")

    def test_consumer_tree_counts_as_usage(self):
        _, project = build_fixture_project(
            "proj_dead", usage=("proj_dead_usage",)
        )
        assert project.usage.is_used("proj_dead.lib", "dead_fn")

    def test_star_import_uses_every_export(self):
        _, project = build_fixture_project("proj_star")
        assert project.usage.is_used("proj_star.base", "helper")
        assert project.usage.is_used("proj_star.base", "shared_value")
