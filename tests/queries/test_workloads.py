"""Tests for the query workloads (analytic + simulation views)."""

import numpy as np
import pytest

from repro.geometry import GeometryError, Rect, RectArray, unit_rect
from repro.queries import (
    DataDrivenWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)
from tests.conftest import random_rects


class TestValidation:
    def test_negative_extent_rejected(self):
        with pytest.raises(GeometryError):
            UniformRegionWorkload((-0.1, 0.1))

    def test_extent_of_one_rejected(self):
        with pytest.raises(GeometryError):
            UniformRegionWorkload((1.0, 0.5))

    def test_empty_extents_rejected(self):
        with pytest.raises(GeometryError):
            UniformRegionWorkload(())

    def test_dim_mismatch_raises(self, rng):
        arr = random_rects(rng, 10)
        w = UniformRegionWorkload((0.1, 0.1, 0.1))
        with pytest.raises(GeometryError):
            w.access_probabilities(arr)

    def test_data_driven_centers_validated(self):
        with pytest.raises(GeometryError):
            DataDrivenWorkload(np.zeros((0, 2)), (0.1, 0.1))
        with pytest.raises(GeometryError):
            DataDrivenWorkload(np.zeros((5, 3)), (0.1, 0.1))


class TestUniformPoint:
    def test_is_zero_extent_region(self):
        w = UniformPointWorkload()
        assert w.extents == (0.0, 0.0)
        assert w.is_point
        assert w.dim == 2

    def test_access_probability_is_area(self, rng):
        arr = random_rects(rng, 50)
        probs = UniformPointWorkload().access_probabilities(arr)
        assert probs == pytest.approx(arr.areas())

    def test_transformed_rects_unchanged(self, rng):
        arr = random_rects(rng, 20)
        assert UniformPointWorkload().transformed_rects(arr) == arr

    def test_sample_points_in_unit_square(self, rng):
        pts = UniformPointWorkload().sample_points(1000, rng)
        assert pts.shape == (1000, 2)
        assert (pts >= 0).all() and (pts <= 1).all()

    def test_three_dimensional(self, rng):
        w = UniformPointWorkload(dim=3)
        pts = w.sample_points(10, rng)
        assert pts.shape == (10, 3)


class TestUniformRegion:
    def test_corner_samples_in_u_prime(self, rng):
        w = UniformRegionWorkload((0.25, 0.1))
        pts = w.sample_points(2000, rng)
        assert (pts[:, 0] >= 0.25).all()
        assert (pts[:, 1] >= 0.1).all()
        assert (pts <= 1).all()

    def test_probabilities_in_unit_interval(self, rng):
        arr = random_rects(rng, 100)
        probs = UniformRegionWorkload((0.3, 0.3)).access_probabilities(arr)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_larger_queries_access_more(self, rng):
        arr = random_rects(rng, 100)
        small = UniformRegionWorkload((0.05, 0.05)).access_probabilities(arr)
        large = UniformRegionWorkload((0.3, 0.3)).access_probabilities(arr)
        assert (large >= small - 1e-12).all()
        assert large.sum() > small.sum()

    def test_paper_fig3_example(self):
        """A 0.9x0.9 query on a large rectangle must have probability
        <= 1 (the clipping fix), not the raw 1.21 of Fig. 3b."""
        big = RectArray.from_rects([Rect((0.0, 0.0), (0.2, 0.2))])
        probs = UniformRegionWorkload((0.9, 0.9)).access_probabilities(big)
        assert probs[0] == pytest.approx(1.0)

    def test_rect_covering_unit_square_has_probability_one(self):
        arr = RectArray.from_rects([unit_rect(2)])
        for q in ((0.0, 0.0), (0.2, 0.7)):
            probs = UniformRegionWorkload(q).access_probabilities(arr)
            assert probs[0] == pytest.approx(1.0)

    def test_transformed_rects_are_extended(self, rng):
        arr = random_rects(rng, 10)
        w = UniformRegionWorkload((0.1, 0.2))
        assert w.transformed_rects(arr) == arr.extended((0.1, 0.2))


class TestDataDriven:
    def test_from_rects_default_point_queries(self, rng):
        arr = random_rects(rng, 30)
        w = DataDrivenWorkload.from_rects(arr)
        assert w.is_point
        assert w.centers.shape == (30, 2)

    def test_probability_is_center_fraction(self):
        centers = np.array([[0.1, 0.1], [0.2, 0.2], [0.8, 0.8], [0.9, 0.9]])
        node = RectArray.from_rects([Rect((0.0, 0.0), (0.5, 0.5))])
        w = DataDrivenWorkload(centers, (0.0, 0.0))
        assert w.access_probabilities(node)[0] == pytest.approx(0.5)

    def test_region_expansion_counts_nearby_centers(self):
        centers = np.array([[0.55, 0.25], [0.9, 0.9]])
        node = RectArray.from_rects([Rect((0.0, 0.0), (0.5, 0.5))])
        # A point query never touches the node from (0.55, 0.25)...
        assert DataDrivenWorkload(centers, (0.0, 0.0)).access_probabilities(
            node
        )[0] == pytest.approx(0.0)
        # ...but a 0.2-wide query centred there does.
        assert DataDrivenWorkload(centers, (0.2, 0.0)).access_probabilities(
            node
        )[0] == pytest.approx(0.5)

    def test_samples_are_data_centers(self, rng):
        centers = np.array([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]])
        w = DataDrivenWorkload(centers, (0.0, 0.0))
        pts = w.sample_points(500, rng)
        assert {tuple(p) for p in pts} <= {tuple(c) for c in centers}

    def test_dense_regions_queried_more(self, rng):
        # 90 centers in one corner, 10 in the other.
        dense = rng.random((90, 2)) * 0.3
        sparse = 0.7 + rng.random((10, 2)) * 0.3
        w = DataDrivenWorkload(np.vstack([dense, sparse]), (0.0, 0.0))
        nodes = RectArray.from_rects(
            [Rect((0, 0), (0.3, 0.3)), Rect((0.7, 0.7), (1, 1))]
        )
        probs = w.access_probabilities(nodes)
        assert probs[0] == pytest.approx(0.9)
        assert probs[1] == pytest.approx(0.1)
