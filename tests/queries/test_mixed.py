"""Tests for mixed query workloads."""

import numpy as np
import pytest

from repro.geometry import GeometryError
from repro.queries import (
    DataDrivenWorkload,
    MixedWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)
from tests.conftest import random_rects


@pytest.fixture
def mix() -> MixedWorkload:
    return MixedWorkload(
        [
            (0.7, UniformPointWorkload()),
            (0.3, UniformRegionWorkload((0.1, 0.1))),
        ]
    )


class TestConstruction:
    def test_weights_normalised(self):
        mix = MixedWorkload(
            [(2.0, UniformPointWorkload()), (6.0, UniformPointWorkload())]
        )
        assert mix.weights.tolist() == pytest.approx([0.25, 0.75])

    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            MixedWorkload([])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(GeometryError):
            MixedWorkload([(0.0, UniformPointWorkload())])
        with pytest.raises(GeometryError):
            MixedWorkload([(-1.0, UniformPointWorkload())])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            MixedWorkload(
                [
                    (1.0, UniformPointWorkload(dim=2)),
                    (1.0, UniformPointWorkload(dim=3)),
                ]
            )

    def test_is_point_only_when_all_components_are(self, mix):
        assert not mix.is_point
        pure = MixedWorkload([(1.0, UniformPointWorkload())])
        assert pure.is_point


class TestAnalytics:
    def test_probabilities_are_weighted_sum(self, mix, rng):
        arr = random_rects(rng, 60)
        point = UniformPointWorkload().access_probabilities(arr)
        region = UniformRegionWorkload((0.1, 0.1)).access_probabilities(arr)
        expected = 0.7 * point + 0.3 * region
        assert mix.access_probabilities(arr) == pytest.approx(expected)

    def test_single_component_mixture_is_transparent(self, rng):
        arr = random_rects(rng, 40)
        base = UniformRegionWorkload((0.2, 0.05))
        mix = MixedWorkload([(1.0, base)])
        assert mix.access_probabilities(arr) == pytest.approx(
            base.access_probabilities(arr)
        )

    def test_single_transform_interface_disabled(self, mix, rng):
        arr = random_rects(rng, 5)
        with pytest.raises(NotImplementedError):
            mix.transformed_rects(arr)
        with pytest.raises(NotImplementedError):
            mix.sample_points(5, rng)

    def test_component_transforms(self, mix, rng):
        arr = random_rects(rng, 10)
        transforms = mix.component_transforms(arr)
        assert transforms[0] == arr  # point workload: unchanged
        assert transforms[1] == arr.extended((0.1, 0.1))

    def test_sample_assignments_follow_weights(self, mix, rng):
        counts = np.bincount(mix.sample_assignments(20_000, rng), minlength=2)
        assert counts[0] / 20_000 == pytest.approx(0.7, abs=0.02)

    def test_can_mix_data_driven_components(self, rng):
        data = random_rects(rng, 200, max_side=0.05)
        mix = MixedWorkload(
            [
                (0.5, UniformPointWorkload()),
                (0.5, DataDrivenWorkload.from_rects(data)),
            ]
        )
        probs = mix.access_probabilities(data)
        assert (probs >= 0).all() and (probs <= 1).all()


class TestSimulation:
    def test_model_matches_simulation_for_mixture(self, rng):
        """The end-to-end property: the buffer model with mixture
        probabilities must track the mixture simulation."""
        from repro.model import buffer_model
        from repro.packing import pack_description
        from repro.simulation import simulate

        data = random_rects(rng, 5000, max_side=0.02)
        desc = pack_description(data, 25, "hs")
        mix = MixedWorkload(
            [
                (0.8, UniformPointWorkload()),
                (0.2, UniformRegionWorkload((0.05, 0.05))),
            ]
        )
        predicted = buffer_model(desc, mix, 40).disk_accesses
        measured = simulate(
            desc, mix, 40, n_batches=8, batch_size=3000, rng=11
        ).disk_accesses
        assert predicted == pytest.approx(measured.mean, rel=0.08)

    def test_mixture_node_accesses_interpolate_components(self, rng):
        from repro.model import expected_node_accesses
        from repro.packing import pack_description

        data = random_rects(rng, 3000, max_side=0.02)
        desc = pack_description(data, 25, "hs")
        point = UniformPointWorkload()
        region = UniformRegionWorkload((0.1, 0.1))
        mix = MixedWorkload([(0.5, point), (0.5, region)])
        ep = expected_node_accesses(desc, point)
        er = expected_node_accesses(desc, region)
        em = expected_node_accesses(desc, mix)
        assert em == pytest.approx((ep + er) / 2)
        assert ep < em < er
