"""The telemetry stream: SLO accounting, tick invariants, model convergence.

Everything here drives the sink *synchronously* — ``service.process``
plus explicit ``sink.tick()`` calls under an injected fake clock — so
tick contents are deterministic and the stream can be compared
byte-for-byte across runs.  The background ticker gets one smoke test;
its arithmetic is the same code path.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.datasets import synthetic_region
from repro.model import buffer_model
from repro.obs import (
    SLOMonitor,
    TelemetrySink,
    read_telemetry,
    validate_telemetry,
)
from repro.packing import load_description, pack_description
from repro.queries import UniformPointWorkload
from repro.serving import QueryService
from tests.conftest import random_rects


class FakeClock:
    """A monotonic ns clock advanced by hand: ticks land where we say."""

    def __init__(self, start_ns: int = 1_000_000) -> None:
        self.now_ns = start_ns

    def __call__(self) -> int:
        return self.now_ns

    def advance_ms(self, ms: float) -> None:
        self.now_ns += int(ms * 1e6)


@pytest.fixture(scope="module")
def desc():
    rng = np.random.default_rng(42)
    return pack_description(random_rects(rng, 600), 10, "hs")


def make_service(desc, *, shards=2, buffer_size=16, **kwargs):
    return QueryService(
        desc, UniformPointWorkload(), buffer_size, shards=shards, **kwargs
    )


def drive(service, sink, clock, *, ticks=5, queries_per_tick=100, seed=0):
    """Serve then sample, ``ticks`` times, 100 ms apart on the fake clock."""
    rng = np.random.default_rng(seed)
    for _ in range(ticks):
        points = service.workload.sample_points(queries_per_tick, rng)
        service.process(points)
        clock.advance_ms(100.0)
        sink.tick()


class TestSLOMonitor:
    def test_needs_at_least_one_target(self):
        with pytest.raises(ValueError, match="at least one target"):
            SLOMonitor()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p99_target_us": 0.0},
            {"p99_target_us": -5.0},
            {"hit_ratio_floor": 1.5},
            {"hit_ratio_floor": -0.1},
            {"p99_target_us": 100.0, "budget": 0.0},
            {"p99_target_us": 100.0, "budget": 1.5},
            {"p99_target_us": 100.0, "window": 0},
            {"p99_target_us": 100.0, "fast_window": 0},
            {"p99_target_us": 100.0, "fast_window": 5, "slow_window": 3},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLOMonitor(**kwargs)

    def test_burn_accounting(self):
        slo = SLOMonitor(p99_target_us=100.0, budget=0.25, window=2)
        good = slo.observe(p99_us=50.0, hit_ratio=None, requests=10)
        assert good["counted"] and not good["bad"]
        bad = slo.observe(p99_us=150.0, hit_ratio=None, requests=10)
        assert bad["bad"] and bad["p99_violation"]
        summary = slo.summary()
        assert summary["ticks"] == 2 and summary["bad_ticks"] == 1
        assert summary["bad_fraction"] == 0.5
        assert summary["burn_rate"] == pytest.approx(0.5 / 0.25)
        assert summary["budget_exhausted"]

    def test_window_burn_uses_trailing_ticks_only(self):
        slo = SLOMonitor(p99_target_us=100.0, budget=1.0, window=2)
        slo.observe(p99_us=500.0, hit_ratio=None, requests=1)  # bad
        slo.observe(p99_us=1.0, hit_ratio=None, requests=1)
        slo.observe(p99_us=1.0, hit_ratio=None, requests=1)
        summary = slo.summary()
        assert summary["window_burn_rate"] == 0.0  # bad tick aged out
        assert summary["bad_fraction"] == pytest.approx(1 / 3)

    def test_hit_ratio_floor_violation(self):
        slo = SLOMonitor(hit_ratio_floor=0.5)
        status = slo.observe(p99_us=None, hit_ratio=0.3, requests=10)
        assert status["bad"] and status["hit_ratio_violation"]

    def test_idle_ticks_are_not_counted(self):
        slo = SLOMonitor(p99_target_us=100.0)
        status = slo.observe(p99_us=900.0, hit_ratio=None, requests=0)
        assert not status["counted"] and not status["bad"]
        assert slo.summary()["ticks"] == 0

    def test_absent_signals_never_burn(self):
        slo = SLOMonitor(p99_target_us=100.0, hit_ratio_floor=0.9)
        status = slo.observe(p99_us=None, hit_ratio=None, requests=10)
        assert status["counted"] and not status["bad"]

    def test_alert_requires_both_windows_burning(self):
        # One bad tick burns the 2-tick fast window far above 1.0 but
        # leaves the 8-tick slow window at budget — no alert.
        slo = SLOMonitor(
            p99_target_us=100.0, budget=0.125, fast_window=2, slow_window=8
        )
        for _ in range(7):
            slo.observe(p99_us=1.0, hit_ratio=None, requests=1)
        status = slo.observe(p99_us=500.0, hit_ratio=None, requests=1)
        assert status["fast_burn_rate"] == pytest.approx(0.5 / 0.125)
        assert status["slow_burn_rate"] == pytest.approx(1.0)
        assert not status["alerting"]

    def test_alert_fires_when_fast_and_slow_burn(self):
        slo = SLOMonitor(
            p99_target_us=100.0, budget=0.125, fast_window=2, slow_window=8
        )
        status = None
        for _ in range(3):
            status = slo.observe(p99_us=500.0, hit_ratio=None, requests=1)
        assert status["fast_burn_rate"] > 1.0
        assert status["slow_burn_rate"] > 1.0
        assert status["alerting"]

    def test_recovery_clears_the_alert(self):
        # After an incident, good fast-window ticks stop the page even
        # while the slow window (and the cumulative budget) still burn.
        slo = SLOMonitor(
            p99_target_us=100.0, budget=0.125, fast_window=2, slow_window=8
        )
        for _ in range(4):
            slo.observe(p99_us=500.0, hit_ratio=None, requests=1)
        assert slo.summary()["alerting"]
        status = None
        for _ in range(2):
            status = slo.observe(p99_us=1.0, hit_ratio=None, requests=1)
        assert status["fast_burn_rate"] == 0.0
        assert status["slow_burn_rate"] > 1.0
        assert not status["alerting"]
        assert status["budget_exhausted"]  # whole-run verdict unchanged

    def test_targets_carry_alert_windows(self):
        slo = SLOMonitor(p99_target_us=100.0, fast_window=3, slow_window=30)
        targets = slo.targets
        assert targets["fast_window"] == 3
        assert targets["slow_window"] == 30


class TestSinkValidation:
    def test_path_and_writer_are_exclusive(self, desc, tmp_path):
        service = make_service(desc)
        with pytest.raises(ValueError, match="not both"):
            TelemetrySink(
                service,
                path=str(tmp_path / "t.jsonl"),
                writer=io.StringIO(),
            )

    def test_bad_interval_rejected(self, desc):
        with pytest.raises(ValueError, match="interval"):
            TelemetrySink(make_service(desc), interval_s=0.0)

    def test_bad_window_rejected(self, desc):
        with pytest.raises(ValueError, match="window"):
            TelemetrySink(make_service(desc), window=0)

    def test_double_start_rejected(self, desc):
        sink = TelemetrySink(make_service(desc), interval_s=60.0)
        sink.start()
        try:
            with pytest.raises(RuntimeError, match="started"):
                sink.start()
        finally:
            sink.close()


class TestSyncDrive:
    """Deterministic tick contents under process() + a fake clock."""

    def make_stream(self, desc, *, shards=2, ticks=5, seed=0, window=3):
        clock = FakeClock()
        service = make_service(desc, shards=shards)
        out = io.StringIO()
        sink = TelemetrySink(
            service, window=window, writer=out, clock=clock,
            config={"dataset": "unit"},
            model={"hit_ratio": 0.5},
        )
        service.telemetry = sink
        drive(service, sink, clock, ticks=ticks, seed=seed)
        return service, out.getvalue()

    def parse(self, text):
        lines = [json.loads(line) for line in text.splitlines()]
        return lines[0], lines[1:]

    def test_header_then_ticks_round_trip(self, desc):
        service, text = self.make_stream(desc)
        header, ticks = self.parse(text)
        validate_telemetry(header, ticks)
        assert header["shards"] == 2
        assert header["capacity"] == service.pool.capacity
        assert header["shard_capacities"] == list(
            service.pool.shard_capacities()
        )
        assert header["policy"] == service.pool.policy
        assert header["config"] == {"dataset": "unit"}
        assert header["model"] == {"hit_ratio": 0.5}
        assert len(ticks) == 5
        assert [t["seq"] for t in ticks] == list(range(5))
        assert ticks[0]["elapsed_s"] == pytest.approx(0.1)

    def test_stream_is_deterministic(self, desc):
        _, first = self.make_stream(desc, seed=9)
        _, second = self.make_stream(desc, seed=9)
        assert first == second  # byte-identical JSONL

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_tick_sums_reconcile(self, desc, shards):
        service, text = self.make_stream(desc, shards=shards, ticks=4)
        header, ticks = self.parse(text)
        validate_telemetry(header, ticks)
        final = ticks[-1]["cumulative"]
        agg = service.pool.aggregate_stats().as_dict()
        assert final["aggregate"] == agg
        per_shard = [s.as_dict() for s in service.pool.shard_stats()]
        for row, stats in zip(final["shards"], per_shard):
            assert {f: row[f] for f in stats} == stats
        # Delta ticks sum to the final cumulative aggregate.
        for field in ("requests", "hits", "misses", "evictions"):
            assert sum(t["aggregate"][field] for t in ticks) == agg[field]

    def test_window_is_a_sliding_sum(self, desc):
        _, text = self.make_stream(desc, ticks=5, window=3)
        _, ticks = self.parse(text)
        last = ticks[-1]
        tail = ticks[-3:]
        assert last["window"]["ticks"] == 3
        assert last["window"]["requests"] == sum(
            t["aggregate"]["requests"] for t in tail
        )
        assert last["window"]["hit_ratio"] == pytest.approx(
            sum(t["aggregate"]["hits"] for t in tail)
            / sum(t["aggregate"]["requests"] for t in tail)
        )

    def test_idle_tick_carries_no_signals(self, desc):
        clock = FakeClock()
        service = make_service(desc)
        out = io.StringIO()
        sink = TelemetrySink(service, writer=out, clock=clock)
        clock.advance_ms(100.0)
        tick = sink.tick()  # no traffic yet
        assert tick["queries"] == 0
        assert tick["latency_us"] is None
        assert tick["batch_occupancy"] is None
        assert tick["window"]["hit_ratio"] is None
        header, ticks = self.parse(out.getvalue())
        validate_telemetry(header, ticks)

    def test_counter_reset_rebases_the_tick(self, desc):
        clock = FakeClock()
        service = make_service(desc)
        sink = TelemetrySink(service, writer=io.StringIO(), clock=clock)
        rng = np.random.default_rng(3)
        service.process(service.workload.sample_points(200, rng))
        clock.advance_ms(100.0)
        first = sink.tick()
        assert not first["rebased"]
        service.reset_measurement()  # warm-up boundary: counters zeroed
        service.process(service.workload.sample_points(50, rng))
        clock.advance_ms(100.0)
        second = sink.tick()
        assert second["rebased"]
        assert second["aggregate"]["requests"] == second["cumulative"][
            "aggregate"
        ]["requests"]
        validate_telemetry(sink.header, [first, second])

    def test_pointer_reflects_the_last_tick(self, desc):
        clock = FakeClock()
        service = make_service(desc)
        sink = TelemetrySink(service, writer=io.StringIO(), clock=clock)
        assert sink.pointer() is None  # nothing to reconcile yet
        drive(service, sink, clock, ticks=2)
        pointer = sink.pointer()
        assert pointer["ticks"] == 2
        assert pointer["path"] is None
        assert (
            pointer["final"]["aggregate"]
            == service.pool.aggregate_stats().as_dict()
        )

    def test_slo_block_lands_in_ticks_and_header(self, desc):
        clock = FakeClock()
        service = make_service(desc)
        slo = SLOMonitor(p99_target_us=1e9, hit_ratio_floor=0.0)
        out = io.StringIO()
        sink = TelemetrySink(service, writer=out, slo=slo, clock=clock)
        drive(service, sink, clock, ticks=3)
        header, ticks = self.parse(out.getvalue())
        validate_telemetry(header, ticks)
        assert header["slo"]["p99_target_us"] == 1e9
        last = ticks[-1]["slo"]
        assert last["ticks"] == 3 and last["bad_ticks"] == 0
        assert not last["budget_exhausted"]

    def test_file_round_trip_matches_memory(self, desc, tmp_path):
        path = tmp_path / "t.jsonl"
        clock = FakeClock()
        service = make_service(desc)
        with TelemetrySink(service, path=str(path), clock=clock) as sink:
            service.telemetry = sink
            drive(service, sink, clock, ticks=3)
        header, ticks = read_telemetry(str(path))
        assert header == sink.header
        assert len(ticks) == 4  # 3 driven + the final close() tick
        assert (
            ticks[-1]["cumulative"]["aggregate"]
            == service.pool.aggregate_stats().as_dict()
        )


class TestBackgroundTicker:
    def test_ticker_samples_and_close_is_idempotent(self, desc, tmp_path):
        path = tmp_path / "bg.jsonl"
        service = make_service(desc)
        sink = TelemetrySink(service, interval_s=0.005, path=str(path))
        service.telemetry = sink
        sink.start()
        rng = np.random.default_rng(1)
        for _ in range(10):
            service.process(service.workload.sample_points(50, rng))
        sink.close()
        sink.close()  # second close is a no-op
        header, ticks = read_telemetry(str(path))
        assert ticks  # at least the final tick
        assert (
            ticks[-1]["cumulative"]["aggregate"]
            == service.pool.aggregate_stats().as_dict()
        )


class TestAcceptance:
    """ISSUE acceptance: reconciliation, model convergence, zero impact."""

    def test_windowed_hit_ratio_converges_to_model(self):
        # The Table 1 validation config at test scale: 20k rects, HS
        # packing, point queries — a tree the independence assumption
        # behind Eq. 5/6 holds on.  Enough post-warm-up traffic that
        # the trailing window *is* the predicted steady state.
        data = synthetic_region(20_000, rng=101)
        region_desc = load_description("hs", data, 50)
        workload = UniformPointWorkload()
        buffer_size = 40
        predicted = buffer_model(region_desc, workload, buffer_size).hit_ratio
        clock = FakeClock()
        service = QueryService(
            region_desc, workload, buffer_size, shards=2
        )
        out = io.StringIO()
        sink = TelemetrySink(
            service, window=20, writer=out, clock=clock,
            model={"hit_ratio": predicted},
        )
        service.telemetry = sink
        drive(service, sink, clock, ticks=40, queries_per_tick=500, seed=11)
        header, ticks = (
            json.loads(out.getvalue().splitlines()[0]),
            [json.loads(s) for s in out.getvalue().splitlines()[1:]],
        )
        validate_telemetry(header, ticks)
        final_ratio = ticks[-1]["window"]["hit_ratio"]
        assert abs(final_ratio - predicted) <= 0.02  # the paper's band

    def test_telemetry_leaves_serving_outputs_identical(self, desc):
        def run(with_sink):
            service = make_service(desc, shards=2)
            if with_sink:
                clock = FakeClock()
                sink = TelemetrySink(
                    service, writer=io.StringIO(), clock=clock
                )
                service.telemetry = sink
            rng = np.random.default_rng(5)
            for _ in range(4):
                service.process(service.workload.sample_points(200, rng))
                if with_sink:
                    clock.advance_ms(100.0)
                    service.telemetry.tick()
            return (
                service.queries_served,
                service.batches_served,
                service.pool.aggregate_stats().as_dict(),
                [s.as_dict() for s in service.pool.shard_stats()],
            )

        assert run(with_sink=False) == run(with_sink=True)


class TestValidateRejections:
    def make_valid(self, desc):
        clock = FakeClock()
        service = make_service(desc)
        out = io.StringIO()
        sink = TelemetrySink(service, writer=out, clock=clock)
        drive(service, sink, clock, ticks=3)
        lines = [json.loads(s) for s in out.getvalue().splitlines()]
        return lines[0], lines[1:]

    def test_wrong_schema_rejected(self, desc):
        header, ticks = self.make_valid(desc)
        header["schema"] = "repro-telemetry/9"
        with pytest.raises(ValueError, match="schema"):
            validate_telemetry(header, ticks)

    def test_capacity_sum_mismatch_rejected(self, desc):
        header, ticks = self.make_valid(desc)
        header["shard_capacities"][0] += 1
        with pytest.raises(ValueError, match="capacit"):
            validate_telemetry(header, ticks)

    def test_seq_gap_rejected(self, desc):
        header, ticks = self.make_valid(desc)
        ticks[1]["seq"] = 5
        with pytest.raises(ValueError, match="seq"):
            validate_telemetry(header, ticks)

    def test_shard_sum_drift_rejected(self, desc):
        header, ticks = self.make_valid(desc)
        ticks[0]["shards"][0]["hits"] += 1
        with pytest.raises(ValueError):
            validate_telemetry(header, ticks)

    def test_cumulative_additivity_enforced(self, desc):
        header, ticks = self.make_valid(desc)
        last = ticks[-1]["cumulative"]
        last["shards"][0]["requests"] += 1
        last["shards"][0]["hits"] += 1
        last["aggregate"]["requests"] += 1
        last["aggregate"]["hits"] += 1
        with pytest.raises(ValueError, match="cumulative"):
            validate_telemetry(header, ticks)

    def test_window_sum_drift_rejected(self, desc):
        header, ticks = self.make_valid(desc)
        ticks[-1]["window"]["requests"] += 1
        with pytest.raises(ValueError, match="window"):
            validate_telemetry(header, ticks)

    def test_occupancy_drift_rejected(self, desc):
        header, ticks = self.make_valid(desc)
        ticks[0]["batch_occupancy"] = 1.0
        with pytest.raises(ValueError, match="occupancy"):
            validate_telemetry(header, ticks)

    def test_empty_stream_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_telemetry(str(path))

    def test_tick_first_stream_rejected(self, desc):
        header, ticks = self.make_valid(desc)
        header["kind"] = "tick"
        with pytest.raises(ValueError, match="header"):
            validate_telemetry(header, ticks)
