"""Counter / gauge / timer semantics of the metrics registry."""

import pytest

from repro.obs import Counter, Gauge, MetricsRegistry, Timer


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestTimer:
    def test_record_accumulates(self):
        t = Timer("x")
        t.record(0.25)
        t.record(0.75)
        assert t.total_seconds == pytest.approx(1.0)
        assert t.count == 2
        assert t.mean_seconds == pytest.approx(0.5)

    def test_context_manager_records_one_observation(self):
        t = Timer("x")
        with t:
            pass
        assert t.count == 1
        assert t.total_seconds >= 0.0

    def test_rejects_negative_durations(self):
        with pytest.raises(ValueError):
            Timer("x").record(-0.1)

    def test_mean_zero_when_never_recorded(self):
        assert Timer("x").mean_seconds == 0.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.timer("t") is registry.timer("t")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")
        with pytest.raises(ValueError):
            registry.timer("a")

    def test_container_protocol(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert len(registry) == 2
        assert "a" in registry and "c" not in registry
        assert list(registry) == ["a", "b"]  # sorted

    def test_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(7)
        registry.gauge("capacity").set(100)
        registry.timer("phase").record(0.5)
        exported = registry.to_dict()
        assert exported["counters"] == {"requests": 7}
        assert exported["gauges"] == {"capacity": 100.0}
        assert exported["timers"]["phase"]["count"] == 1
        assert exported["timers"]["phase"]["total_seconds"] == pytest.approx(0.5)
