"""Benchmark-history ledger: schema, baseline choice, regression gate."""

import pytest

from repro.obs import (
    append_entry,
    compare_reports,
    find_baseline,
    history_entry,
    load_history,
    validate_bench_report,
)
from repro.obs.history import (
    BENCH_SCHEMA,
    DEFAULT_TOLERANCES,
    HISTORY_SCHEMA,
    record_key,
    run_id_for,
    validate_entry,
)


def make_record(**overrides) -> dict:
    record = {
        "kernel": "point_stab",
        "n_rects": 1000,
        "n_points": 500,
        "seconds": 0.1,
        "ops_per_s": 5.0e6,
        "unit": "pair-tests/s",
        "dense_seconds": 1.0,
        "speedup_vs_dense": 10.0,
    }
    record.update(overrides)
    return record


def make_report(records=None, *, smoke=False, seed=0) -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "seed": seed,
        "smoke": smoke,
        "records": records if records is not None else [make_record()],
    }


class TestValidation:
    def test_valid_report(self):
        assert validate_bench_report(make_report()) == []

    def test_rejects_wrong_schema_and_types(self):
        bad = make_report()
        bad["schema"] = "nope"
        bad["records"][0]["seconds"] = "fast"
        errors = validate_bench_report(bad)
        assert any("schema" in e for e in errors)
        assert any("seconds" in e for e in errors)

    def test_entry_round_trip_validates(self):
        entry = history_entry(
            make_report(), recorded_at="2026-01-01T00:00:00+00:00"
        )
        assert entry["schema"] == HISTORY_SCHEMA
        assert validate_entry(entry) == []

    def test_entry_refuses_invalid_report(self):
        with pytest.raises(ValueError, match="invalid bench report"):
            history_entry({"schema": "nope"})

    def test_run_id_is_content_hash(self):
        a, b = make_report(), make_report()
        assert run_id_for(a) == run_id_for(b)
        b["records"][0]["seconds"] = 0.2
        assert run_id_for(a) != run_id_for(b)

    def test_record_key(self):
        assert record_key(make_record()) == ("point_stab", 1000, 500)


class TestLedger:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first = history_entry(make_report(), note="first")
        second = history_entry(
            make_report([make_record(seconds=0.2)]), note="second"
        )
        append_entry(path, first)
        append_entry(path, second)
        entries = load_history(path)
        assert [e["note"] for e in entries] == ["first", "second"]

    def test_load_rejects_corrupt_line(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_entry(path, history_entry(make_report()))
        path.write_text(path.read_text() + "{not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            load_history(path)

    def test_append_rejects_invalid_entry(self, tmp_path):
        with pytest.raises(ValueError, match="invalid history entry"):
            append_entry(tmp_path / "h.jsonl", {"schema": "nope"})


class TestFindBaseline:
    def test_picks_newest_matching_smoke_flag(self):
        full = history_entry(make_report(), run_id="full")
        smoke_old = history_entry(make_report(smoke=True), run_id="s-old")
        smoke_new = history_entry(make_report(smoke=True), run_id="s-new")
        entries = [full, smoke_old, smoke_new]
        assert find_baseline(entries, make_report(smoke=True))["run_id"] == "s-new"
        assert find_baseline(entries, make_report())["run_id"] == "full"

    def test_requires_overlapping_record_keys(self):
        other = history_entry(
            make_report([make_record(n_rects=9999)]), run_id="other"
        )
        assert find_baseline([other], make_report()) is None

    def test_explicit_run_id(self):
        entry = history_entry(make_report(), run_id="wanted")
        assert find_baseline([entry], make_report(), baseline_run_id="wanted") is entry
        with pytest.raises(ValueError, match="no history entry"):
            find_baseline([entry], make_report(), baseline_run_id="absent")


class TestCompareReports:
    def test_unchanged_report_passes(self):
        comparison = compare_reports(make_report(), make_report())
        assert comparison.ok
        assert len(comparison.deltas) == len(DEFAULT_TOLERANCES)
        assert comparison.skipped == ()

    def test_slower_seconds_regresses(self):
        latest = make_report([make_record(seconds=0.1 * 2.0)])
        comparison = compare_reports(make_report(), latest)
        assert not comparison.ok
        metrics = {d.metric for d in comparison.regressions}
        assert metrics == {"seconds"}
        (delta,) = comparison.regressions
        assert delta.worsening == pytest.approx(2.0)
        assert "REGRESSED" in delta.describe()

    def test_lower_throughput_regresses(self):
        latest = make_report(
            [make_record(ops_per_s=5.0e6 / 2, speedup_vs_dense=10.0 / 2)]
        )
        comparison = compare_reports(make_report(), latest)
        metrics = {d.metric for d in comparison.regressions}
        assert metrics == {"ops_per_s", "speedup_vs_dense"}

    def test_improvement_never_regresses(self):
        latest = make_report(
            [make_record(seconds=0.01, ops_per_s=5.0e8, speedup_vs_dense=100.0)]
        )
        assert compare_reports(make_report(), latest).ok

    def test_tolerance_override(self):
        latest = make_report([make_record(seconds=0.1 * 2.0)])
        loose = compare_reports(
            make_report(), latest, tolerances={"seconds": 3.0}
        )
        assert loose.ok
        with pytest.raises(ValueError, match="unknown tolerance"):
            compare_reports(make_report(), latest, tolerances={"typo": 2.0})

    def test_mismatched_sizes_skipped_not_compared(self):
        latest = make_report([make_record(n_rects=2000)])
        comparison = compare_reports(make_report(), latest)
        assert comparison.deltas == ()
        assert comparison.skipped == (
            "point_stab[1000x500]",
            "point_stab[2000x500]",
        )
        assert comparison.ok  # nothing comparable, nothing regressed
