"""Query-trace ring buffer: retention, order, wraparound."""

import pytest

from repro.obs import MetricsRegistry, QueryTrace
from repro.queries import UniformPointWorkload
from repro.simulation import simulate
from tests.obs.test_levels import two_level_description


class TestQueryTrace:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryTrace(0)

    def test_fills_then_wraps(self):
        trace = QueryTrace(3)
        for i in range(5):
            trace.record([0, i + 1], [i + 1])
        assert trace.total_recorded == 5
        assert len(trace) == 3
        entries = trace.entries()
        # Oldest-first: queries 2, 3, 4 survive; 0 and 1 were evicted.
        assert [e.index for e in entries] == [2, 3, 4]
        assert entries[-1].touched == (0, 5)
        assert entries[-1].missed == (5,)

    def test_partial_fill_keeps_insertion_order(self):
        trace = QueryTrace(10)
        trace.record([1], [])
        trace.record([2], [2])
        assert [e.index for e in trace.entries()] == [0, 1]
        assert len(trace) == 2

    def test_exact_boundary(self):
        trace = QueryTrace(2)
        trace.record([1], [])
        trace.record([2], [])
        assert [e.index for e in trace.entries()] == [0, 1]
        trace.record([3], [])
        assert [e.index for e in trace.entries()] == [1, 2]

    def test_entry_as_dict(self):
        trace = QueryTrace(1)
        entry = trace.record([7, 8], [8])
        assert entry.as_dict() == {"query": 0, "touched": [7, 8], "missed": [8]}


class TestSimulateTracing:
    def test_trace_retains_last_k_queries(self):
        desc = two_level_description()
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=3,
            n_batches=2, batch_size=100, trace_last=5,
        )
        assert len(result.trace) == 5
        indices = [e.index for e in result.trace]
        assert indices == sorted(indices)
        # The last traced query is the last query of the whole run
        # (warm-up + measurement).
        assert indices[-1] == result.warmup_queries + 200 - 1
        for entry in result.trace:
            # Touched ids walk the tree top-down: root id 0 first.
            assert entry.touched[0] == 0
            assert set(entry.missed) <= set(entry.touched)

    def test_tracing_does_not_change_measurements(self):
        desc = two_level_description()
        kwargs = dict(buffer_size=1, n_batches=3, batch_size=200)
        plain = simulate(desc, UniformPointWorkload(), **kwargs)
        traced = simulate(
            desc, UniformPointWorkload(), trace_last=4,
            registry=MetricsRegistry(), **kwargs,
        )
        assert traced.disk_accesses.mean == plain.disk_accesses.mean
        assert traced.node_accesses.mean == plain.node_accesses.mean

    def test_trace_last_validation(self):
        desc = two_level_description()
        with pytest.raises(ValueError):
            simulate(desc, UniformPointWorkload(), 2, trace_last=-1)
