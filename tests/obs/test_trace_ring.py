"""Ring-buffer wraparound and export round-trips.

Complements ``tests/obs/test_trace.py`` (basic retention/order) with
deeper wraparound cases and the full export loop: a simulated run's
query trace and span tree must survive a dump/parse round-trip intact.
"""

import json

import pytest

from repro.obs import (
    QueryTrace,
    Tracer,
    chrome_trace,
    parse_chrome_trace,
    span_tree,
    use_tracer,
    write_chrome_trace,
)
from repro.queries import UniformPointWorkload
from repro.simulation import simulate
from tests.obs.test_levels import two_level_description


class TestRingWraparound:
    def test_capacity_one_keeps_only_last(self):
        trace = QueryTrace(1)
        for i in range(100):
            trace.record([0, i], [i])
        assert trace.total_recorded == 100
        assert len(trace) == 1
        (entry,) = trace.entries()
        assert entry.index == 99
        assert entry.touched == (0, 99)

    def test_many_wraps_preserve_order_and_content(self):
        capacity = 7
        trace = QueryTrace(capacity)
        total = capacity * 13 + 3  # lands mid-ring after many wraps
        for i in range(total):
            trace.record([i], [i] if i % 2 else [])
        entries = trace.entries()
        assert len(entries) == capacity
        expected = list(range(total - capacity, total))
        assert [e.index for e in entries] == expected
        for e in entries:
            assert e.touched == (e.index,)
            assert e.missed == ((e.index,) if e.index % 2 else ())

    def test_entries_snapshot_is_stable(self):
        trace = QueryTrace(3)
        trace.record([1], [])
        snapshot = trace.entries()
        trace.record([2], [])
        trace.record([3], [])
        trace.record([4], [])
        assert [e.index for e in snapshot] == [0]
        assert [e.index for e in trace.entries()] == [1, 2, 3]


class TestExportRoundTrips:
    @pytest.fixture
    def traced_run(self):
        """Simulate with the process tracer installed; yield the tracer."""
        tracer = Tracer()
        previous = use_tracer(tracer)
        try:
            result = simulate(
                two_level_description(),
                UniformPointWorkload(),
                buffer_size=3,
                n_batches=2,
                batch_size=50,
                trace_last=4,
            )
            yield tracer, result
        finally:
            use_tracer(previous)

    def test_query_trace_round_trips_through_as_dict(self, traced_run):
        _, result = traced_run
        dumped = json.loads(json.dumps([e.as_dict() for e in result.trace]))
        assert [d["query"] for d in dumped] == [e.index for e in result.trace]
        for d, e in zip(dumped, result.trace):
            assert tuple(d["touched"]) == e.touched
            assert tuple(d["missed"]) == e.missed

    def test_simulate_spans_round_trip(self, traced_run, tmp_path):
        tracer, _ = traced_run
        spans = tracer.finished()
        names = {s.name for s in spans}
        assert {"simulate", "simulate.measure", "simulate.batch"} <= names
        path = tmp_path / "trace.json"
        write_chrome_trace(path, spans)
        nodes = parse_chrome_trace(json.loads(path.read_text()))
        assert span_tree(nodes) == span_tree(spans)
        # Batch spans keep their indices through the round-trip.
        batches = sorted(
            n.attrs["batch"] for n in nodes if n.name == "simulate.batch"
        )
        assert batches == [0, 1]

    def test_root_span_carries_run_attributes(self, traced_run):
        tracer, _ = traced_run
        root = next(s for s in tracer.finished() if s.name == "simulate")
        assert root.parent_id is None
        assert root.attrs["buffer_size"] == 3
        assert root.attrs["n_batches"] == 2
        assert "backend" in root.attrs

    def test_chrome_trace_events_nest_within_root(self, traced_run):
        tracer, _ = traced_run
        payload = chrome_trace(tracer.finished())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        root = next(e for e in events if e["name"] == "simulate")
        t0, t1 = root["ts"], root["ts"] + root["dur"]
        for event in events:
            if event["args"].get("parent_id") == root["args"]["span_id"]:
                assert t0 <= event["ts"]
                assert event["ts"] + event["dur"] <= t1 + 1e-6
