"""Per-level attribution: unit tests plus a hand-built 2-level tree."""

import pytest

from repro.buffer import LRUBuffer
from repro.geometry import Rect
from repro.obs import LevelStatsTable, MetricsRegistry, NullSink
from repro.queries import UniformPointWorkload
from repro.rtree import TreeDescription
from repro.simulation import simulate


def two_level_description() -> TreeDescription:
    """Root over two disjoint leaves; every point hits root + <= 1 leaf."""
    return TreeDescription.from_level_rects(
        [
            [Rect((0, 0), (1, 1))],
            [Rect((0, 0), (0.49, 1)), Rect((0.51, 0), (1, 1))],
        ]
    )


class TestLevelStatsTable:
    def test_offset_validation(self):
        with pytest.raises(ValueError):
            LevelStatsTable([0])  # no sentinel
        with pytest.raises(ValueError):
            LevelStatsTable([1, 3])  # does not start at 0
        with pytest.raises(ValueError):
            LevelStatsTable([0, 3, 3])  # empty level

    def test_level_of(self):
        table = LevelStatsTable((0, 1, 3, 7))
        assert table.n_levels == 3
        assert table.level_of(0) == 0
        assert table.level_of(1) == 1
        assert table.level_of(2) == 1
        assert table.level_of(3) == 2
        assert table.level_of(6) == 2
        with pytest.raises(IndexError):
            table.level_of(7)
        with pytest.raises(IndexError):
            table.level_of(-1)

    def test_attribution(self):
        table = LevelStatsTable((0, 1, 3))
        table.record_pin_hit(0)
        table.record_hit(1)
        table.record_miss(2, evicted=1)
        root, leaves = table.snapshot()
        assert (root.requests, root.hits, root.pin_hits) == (1, 1, 1)
        assert (leaves.requests, leaves.hits, leaves.misses) == (2, 1, 1)
        # the victim's eviction lands on the victim's level
        assert leaves.evictions == 1 and root.evictions == 0

    def test_miss_without_eviction(self):
        table = LevelStatsTable((0, 1))
        table.record_miss(0, evicted=None)
        (row,) = table.snapshot()
        assert row.misses == 1 and row.evictions == 0

    def test_totals_and_reset(self):
        table = LevelStatsTable((0, 2, 5))
        for page in range(5):
            table.record_miss(page, None)
        totals = table.totals()
        assert totals.requests == totals.misses == 5
        table.reset()
        assert table.totals().requests == 0

    def test_hit_ratio(self):
        table = LevelStatsTable((0, 1))
        assert table.snapshot()[0].hit_ratio == 0.0
        table.record_hit(0)
        table.record_miss(0, None)
        assert table.snapshot()[0].hit_ratio == pytest.approx(0.5)


class TestBufferPoolSink:
    def test_sink_sees_every_request_kind(self):
        events = []

        class Recorder:
            def record_hit(self, page):
                events.append(("hit", page))

            def record_pin_hit(self, page):
                events.append(("pin", page))

            def record_miss(self, page, evicted):
                events.append(("miss", page, evicted))

        pool = LRUBuffer(2, pinned=[0])
        pool.sink = Recorder()
        pool.request(0)  # pinned
        pool.request(1)  # miss, admitted
        pool.request(1)  # hit
        pool.request(2)  # miss, evicts 1 (capacity 2, 1 pinned slot)
        assert events == [
            ("pin", 0),
            ("miss", 1, None),
            ("hit", 1),
            ("miss", 2, 1),
        ]

    def test_null_sink_changes_nothing(self):
        instrumented = LRUBuffer(2)
        instrumented.sink = NullSink()
        plain = LRUBuffer(2)
        for page in (1, 2, 3, 2, 1, 3, 3):
            assert instrumented.request(page) == plain.request(page)
        assert instrumented.stats.as_dict() == plain.stats.as_dict()
        assert instrumented.lru_order() == plain.lru_order()


class TestSimulateAttribution:
    def test_two_level_tree_hand_counts(self):
        desc = two_level_description()
        registry = MetricsRegistry()
        n_batches, batch_size = 4, 500
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=3,
            n_batches=n_batches, batch_size=batch_size, registry=registry,
        )
        root, leaves = result.level_stats
        queries = n_batches * batch_size
        # Every point is inside the root MBR: one root request per query.
        assert root.requests == queries
        # The buffer holds all three pages: everything hits.
        assert root.hits == queries and root.misses == 0
        assert leaves.misses == 0 and leaves.evictions == 0
        # Leaves cover 98% of the unit square, roughly evenly.
        assert 0.9 * queries <= leaves.requests <= queries
        # No pinning: pin_hits are zero everywhere.
        assert root.pin_hits == 0 and leaves.pin_hits == 0

    def test_pinned_root_counted_as_pin_hits(self):
        desc = two_level_description()
        registry = MetricsRegistry()
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=2, pinned_levels=1,
            n_batches=2, batch_size=300, registry=registry,
        )
        root = result.level_stats[0]
        assert root.pin_hits == root.requests == root.hits == 600

    def test_per_level_sums_match_aggregate_batch_stats(self):
        desc = two_level_description()
        registry = MetricsRegistry()
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=1,
            n_batches=3, batch_size=400, registry=registry,
        )
        for column in ("requests", "hits", "misses", "evictions"):
            level_sum = sum(getattr(row, column) for row in result.level_stats)
            batch_sum = sum(getattr(s, column) for s in result.batch_stats)
            assert level_sum == batch_sum
        exported = registry.to_dict()["counters"]
        assert exported["buffer.requests"] == sum(
            s.requests for s in result.batch_stats
        )

    def test_no_registry_leaves_result_bare(self):
        desc = two_level_description()
        result = simulate(
            desc, UniformPointWorkload(), buffer_size=3,
            n_batches=2, batch_size=100,
        )
        assert result.level_stats is None
        assert result.trace == ()
        assert len(result.batch_stats) == 2
