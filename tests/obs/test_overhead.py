"""Guard: instrumentation is free when nothing is attached.

``BufferPool.request`` pays one ``is not None`` test per call when no
sink is attached, and a no-op sink costs only the dispatch of three
empty methods.  These tests keep both claims honest with a coarse
timing ratio — deliberately generous bounds so the guard never flakes
on a loaded CI machine while still catching an accidental
always-on per-request dict lookup or level resolution (which costs
several times the base request).  The finer-grained benchmark lives
in ``benchmarks/test_obs_overhead.py``.
"""

import timeit

from repro.buffer import LRUBuffer
from repro.obs import NullSink

_PAGES = [i % 40 for i in range(2000)]
_REPEATS = 7


def _request_loop_seconds(sink) -> float:
    pool = LRUBuffer(16)
    pool.sink = sink
    pages = _PAGES
    request = pool.request

    def loop():
        for page in pages:
            request(page)

    return min(timeit.repeat(loop, number=5, repeat=_REPEATS))


def test_noop_sink_overhead_is_bounded():
    bare = _request_loop_seconds(None)
    noop = _request_loop_seconds(NullSink())
    # An empty method call per request must stay within small-constant
    # territory of the uninstrumented loop; 3x is far above the real
    # ~1.2x but far below an accidental per-request table update.
    assert noop <= 3.0 * bare + 1e-4, (
        f"NullSink overhead too high: bare={bare:.6f}s noop={noop:.6f}s"
    )


def test_detached_pool_has_no_sink():
    assert LRUBuffer(4).sink is None
