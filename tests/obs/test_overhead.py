"""Guard: instrumentation is free when nothing is attached.

``BufferPool.request`` pays one ``is not None`` test per call when no
sink is attached, and a no-op sink costs only the dispatch of three
empty methods.  These tests keep both claims honest with a coarse
timing ratio — deliberately generous bounds so the guard never flakes
on a loaded CI machine while still catching an accidental
always-on per-request dict lookup or level resolution (which costs
several times the base request).  The finer-grained benchmark lives
in ``benchmarks/test_obs_overhead.py``.
"""

import timeit

from repro.buffer import LRUBuffer
from repro.obs import NULL_SPAN, NullSink
from repro.obs.spans import span as module_span
from repro.queries import UniformPointWorkload
from repro.simulation import simulate
from tests.obs.test_levels import two_level_description

_PAGES = [i % 40 for i in range(2000)]
_REPEATS = 7


def _request_loop_seconds(sink) -> float:
    pool = LRUBuffer(16)
    pool.sink = sink
    pages = _PAGES
    request = pool.request

    def loop():
        for page in pages:
            request(page)

    return min(timeit.repeat(loop, number=5, repeat=_REPEATS))


def test_noop_sink_overhead_is_bounded():
    bare = _request_loop_seconds(None)
    noop = _request_loop_seconds(NullSink())
    # An empty method call per request must stay within small-constant
    # territory of the uninstrumented loop; 3x is far above the real
    # ~1.2x but far below an accidental per-request table update.
    assert noop <= 3.0 * bare + 1e-4, (
        f"NullSink overhead too high: bare={bare:.6f}s noop={noop:.6f}s"
    )


def test_detached_pool_has_no_sink():
    assert LRUBuffer(4).sink is None


def test_disabled_span_is_null_singleton():
    # The whole disabled path: one global read, one `is None` test,
    # one shared no-op object — no per-call allocation beyond kwargs.
    assert module_span("anything") is NULL_SPAN


def test_disabled_tracer_simulate_within_noise(monkeypatch):
    """simulate() with tracing off costs ~the same as no tracing code.

    The baseline monkeypatches the engine's ``span`` hook to a
    do-nothing stub — the closest thing to "the instrumentation was
    never written".  The real disabled path (global read + ``is None``
    + NULL_SPAN protocol) must stay within a generous constant of it;
    spans sit at phase/chunk granularity, so the true ratio is ~1.0x
    and anything near the 2x bound means a span leaked onto a
    per-request path.
    """
    import repro.simulation.engine as engine

    desc = two_level_description()
    kwargs = dict(buffer_size=3, n_batches=2, batch_size=300)

    def run_seconds() -> float:
        return min(
            timeit.repeat(
                lambda: simulate(desc, UniformPointWorkload(), **kwargs),
                number=1,
                repeat=_REPEATS,
            )
        )

    disabled = run_seconds()

    def stub_span(name, **attrs):
        return NULL_SPAN

    monkeypatch.setattr(engine, "span", stub_span)
    baseline = run_seconds()

    assert disabled <= 2.0 * baseline + 1e-3, (
        f"disabled-tracer overhead too high: "
        f"baseline={baseline:.6f}s disabled={disabled:.6f}s"
    )
