"""LatencyRecorder: nearest-rank percentiles, histogram, thread safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs import LatencyRecorder


class TestRecording:
    def test_record_and_count(self):
        recorder = LatencyRecorder()
        recorder.record_ns(1000)
        recorder.record_many_ns(np.array([2000, 3000], dtype=np.int64))
        assert recorder.count == 3
        assert sorted(recorder.samples_ns()) == [1000, 2000, 3000]

    def test_record_many_validates_shape(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record_many_ns(np.zeros((2, 2), dtype=np.int64))

    def test_empty_batch_is_fine(self):
        recorder = LatencyRecorder()
        recorder.record_many_ns(np.array([], dtype=np.int64))
        assert recorder.count == 0

    def test_reset(self):
        recorder = LatencyRecorder()
        recorder.record_ns(5000)
        recorder.reset()
        assert recorder.count == 0
        assert recorder.samples_ns().size == 0

    def test_concurrent_recording(self):
        recorder = LatencyRecorder()

        def work():
            for value in range(1000):
                recorder.record_ns(value)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert recorder.count == 4000


class TestSnapshotAndReset:
    def test_drains_everything_and_resets(self):
        recorder = LatencyRecorder()
        recorder.record_many_ns(np.array([3000, 1000, 2000], dtype=np.int64))
        taken = recorder.snapshot_and_reset()
        assert sorted(taken.tolist()) == [1000, 2000, 3000]
        assert recorder.count == 0
        assert recorder.samples_ns().size == 0

    def test_empty_snapshot_is_an_empty_array(self):
        recorder = LatencyRecorder()
        taken = recorder.snapshot_and_reset()
        assert taken.size == 0 and taken.dtype == np.int64

    def test_second_snapshot_sees_only_new_samples(self):
        recorder = LatencyRecorder()
        recorder.record_ns(1000)
        recorder.snapshot_and_reset()
        recorder.record_ns(2000)
        assert recorder.snapshot_and_reset().tolist() == [2000]

    def test_concurrent_soak_loses_nothing(self):
        # Writers race a snapshotter: every recorded sample must land
        # in exactly one snapshot (or the final remainder) — the swap
        # is atomic, so no chunk may be split or dropped.  Runs under
        # REPRO_SANITIZE=1 in CI like the rest of the suite.
        recorder = LatencyRecorder()
        n_writers, per_writer = 4, 2000
        collected: list[np.ndarray] = []
        done = threading.Event()

        def write(seed: int) -> None:
            rng = np.random.default_rng(seed)
            for chunk in np.array_split(
                rng.integers(1, 10**6, per_writer), 50
            ):
                recorder.record_many_ns(chunk.astype(np.int64))

        def snapshot() -> None:
            while not done.is_set():
                collected.append(recorder.snapshot_and_reset())

        writers = [
            threading.Thread(target=write, args=(seed,))
            for seed in range(n_writers)
        ]
        taker = threading.Thread(target=snapshot)
        taker.start()
        for t in writers:
            t.start()
        for t in writers:
            t.join()
        done.set()
        taker.join()
        collected.append(recorder.snapshot_and_reset())
        total = sum(chunk.size for chunk in collected)
        assert total == n_writers * per_writer
        assert recorder.count == 0


class TestPercentiles:
    def test_nearest_rank_exact(self):
        recorder = LatencyRecorder()
        # 1..100 microseconds: nearest-rank pXX is exactly XX µs.
        recorder.record_many_ns(
            (np.arange(1, 101, dtype=np.int64)) * 1000
        )
        assert recorder.percentile_us(50) == 50.0
        assert recorder.percentile_us(95) == 95.0
        assert recorder.percentile_us(99) == 99.0
        assert recorder.percentile_us(100) == 100.0

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record_ns(42_000)
        for q in (1, 50, 99):
            assert recorder.percentile_us(q) == 42.0

    def test_empty_raises(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.percentile_us(50)
        with pytest.raises(ValueError):
            recorder.summary_us()

    def test_summary_ordered(self):
        rng = np.random.default_rng(3)
        recorder = LatencyRecorder()
        recorder.record_many_ns(rng.integers(1, 10**7, 500))
        summary = recorder.summary_us()
        assert summary["count"] == 500
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p99"] <= summary["max"]
        assert 0 < summary["mean"] <= summary["max"]


class TestHistogram:
    def test_counts_sum_to_samples(self):
        rng = np.random.default_rng(7)
        recorder = LatencyRecorder()
        recorder.record_many_ns(rng.integers(100, 10**8, 1000))
        histogram = recorder.histogram_us(n_buckets=16)
        assert len(histogram["bounds_us"]) == 17
        assert sum(histogram["counts"]) == 1000
        bounds = histogram["bounds_us"]
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    def test_identical_samples(self):
        recorder = LatencyRecorder()
        recorder.record_many_ns(np.full(10, 5000, dtype=np.int64))
        histogram = recorder.histogram_us(n_buckets=4)
        assert sum(histogram["counts"]) == 10

    def test_empty_raises(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.histogram_us()
