"""Span tracer: nesting, determinism, disabled path, exporters."""

import json
import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    Tracer,
    chrome_trace,
    current_tracer,
    folded_stacks,
    parse_chrome_trace,
    span,
    span_tree,
    use_tracer,
    write_chrome_trace,
    write_folded,
)
from repro.obs.spans import TRACE_SCHEMA


def fake_clock(step_ns: int = 10):
    """A deterministic nanosecond clock advancing ``step_ns`` per call."""
    state = {"now": 0}

    def tick() -> int:
        state["now"] += step_ns
        return state["now"]

    return tick


@pytest.fixture
def tracer():
    return Tracer(clock=fake_clock())


@pytest.fixture
def installed(tracer):
    """Install ``tracer`` process-wide; restore the previous on exit."""
    previous = use_tracer(tracer)
    yield tracer
    use_tracer(previous)


class TestTracer:
    def test_ids_follow_start_order(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        ids = [(s.span_id, s.parent_id, s.name) for s in tracer.finished()]
        assert ids == [(0, None, "a"), (1, 0, "b"), (2, 0, "c")]

    def test_identical_runs_produce_identical_structure(self):
        def run():
            t = Tracer(clock=fake_clock())
            with t.span("outer"):
                for i in range(3):
                    with t.span("inner", batch=i):
                        pass
            return [
                (s.span_id, s.parent_id, s.name, s.start_ns, s.end_ns)
                for s in t.finished()
            ]

        assert run() == run()

    def test_durations_from_injected_clock(self, tracer):
        with tracer.span("a"):
            pass
        (only,) = tracer.finished()
        assert only.duration_ns == 10

    def test_attrs_at_creation_and_set_attrs(self, tracer):
        with tracer.span("a", experiment="fig6") as s:
            s.set_attrs(backend="grid", level=2)
        (only,) = tracer.finished()
        assert only.attrs == {
            "experiment": "fig6",
            "backend": "grid",
            "level": 2,
        }

    def test_current_tracks_innermost(self, tracer):
        assert tracer.current() is None
        with tracer.span("a") as a:
            assert tracer.current() is a
            with tracer.span("b") as b:
                assert tracer.current() is b
            assert tracer.current() is a
        assert tracer.current() is None

    def test_out_of_order_exit_raises(self, tracer):
        a = tracer.span("a")
        b = tracer.span("b")
        a.__enter__()
        b.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            a.__exit__(None, None, None)

    def test_exception_still_finishes_span(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert len(tracer) == 1
        assert tracer.current() is None

    def test_clear_resets_ids(self, tracer):
        with tracer.span("a"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        with tracer.span("b"):
            pass
        assert tracer.finished()[0].span_id == 0

    def test_threads_densified_in_first_seen_order(self, tracer):
        with tracer.span("main"):
            worker = threading.Thread(target=lambda: tracer.span("w").__enter__().__exit__(None, None, None))
            worker.start()
            worker.join()
        by_name = {s.name: s for s in tracer.finished()}
        assert by_name["main"].thread_index == 0
        assert by_name["w"].thread_index == 1
        # Worker spans root their own stack: no cross-thread parent.
        assert by_name["w"].parent_id is None


class TestModuleLevelSpan:
    def test_disabled_returns_null_singleton(self):
        assert current_tracer() is None
        s = span("anything", key="value")
        assert s is NULL_SPAN
        with s:
            s.set_attrs(more=1)  # ignored, no-op

    def test_install_and_restore(self, tracer):
        assert use_tracer(tracer) is None
        try:
            with span("live"):
                pass
            assert len(tracer) == 1
        finally:
            assert use_tracer(None) is tracer
        assert span("dead") is NULL_SPAN

    def test_installed_fixture_routes_spans(self, installed):
        with span("a", x=1):
            pass
        assert [s.name for s in installed.finished()] == ["a"]


class TestChromeTrace:
    def test_payload_shape(self, tracer):
        with tracer.span("outer", experiment="fig6"):
            with tracer.span("inner", batch=0):
                pass
        payload = chrome_trace(tracer.finished(), process_name="test")
        assert payload["schema"] == TRACE_SCHEMA
        assert payload["displayTimeUnit"] == "ms"
        meta, outer, inner = payload["traceEvents"]
        assert meta == {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "test"},
        }
        assert outer["ph"] == "X"
        assert outer["name"] == "outer"
        assert outer["args"]["experiment"] == "fig6"
        assert outer["args"]["span_id"] == 0
        assert "parent_id" not in outer["args"]
        assert inner["args"]["parent_id"] == 0
        assert inner["ts"] >= outer["ts"]
        assert inner["dur"] <= outer["dur"]
        json.dumps(payload)  # JSON-serialisable as-is

    def test_non_scalar_attrs_stringified(self, tracer):
        with tracer.span("a", shape=(3, 2), ok=True, none=None):
            pass
        payload = chrome_trace(tracer.finished())
        args = payload["traceEvents"][1]["args"]
        assert args["shape"] == "(3, 2)"
        assert args["ok"] is True
        assert args["none"] is None

    def test_round_trip_preserves_tree(self, tracer):
        with tracer.span("root"):
            with tracer.span("left"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("right"):
                pass
        spans = tracer.finished()
        nodes = parse_chrome_trace(chrome_trace(spans))
        assert span_tree(nodes) == span_tree(spans)
        assert [n.name for n in nodes] == [s.name for s in spans]

    def test_parse_rejects_non_trace(self):
        with pytest.raises(ValueError, match="traceEvents"):
            parse_chrome_trace({"schema": "nope"})

    def test_parse_rejects_missing_span_id(self):
        payload = {
            "traceEvents": [
                {"name": "x", "ph": "X", "ts": 0, "dur": 1, "args": {}}
            ]
        }
        with pytest.raises(ValueError, match="span_id"):
            parse_chrome_trace(payload)


class TestFoldedStacks:
    def test_self_time_excludes_children(self):
        clock = fake_clock(1000)  # 1µs per tick
        t = Tracer(clock=clock)
        with t.span("root"):          # ticks 1..6: dur 5µs
            with t.span("child"):     # ticks 2..3: dur 1µs
                pass
            with t.span("child"):     # ticks 4..5: dur 1µs
                pass
        lines = folded_stacks(t.finished())
        assert lines == ["root 3", "root;child 2"]

    def test_files_written(self, tracer, tmp_path):
        with tracer.span("root"):
            pass
        trace_path = tmp_path / "trace.json"
        folded_path = tmp_path / "trace.folded"
        write_chrome_trace(trace_path, tracer.finished(), profile={"x": 1})
        write_folded(folded_path, tracer.finished())
        payload = json.loads(trace_path.read_text())
        assert payload["profile"] == {"x": 1}
        assert parse_chrome_trace(payload)[0].name == "root"
        assert folded_path.read_text().startswith("root ")


class TestCpuTime:
    """Per-span CPU time: injected cpu clock, exporters, cpu folded."""

    def test_cpu_ns_from_injected_cpu_clock(self):
        t = Tracer(clock=fake_clock(10), cpu_clock=fake_clock(3))
        with t.span("a"):
            pass
        (only,) = t.finished()
        assert only.duration_ns == 10
        assert only.cpu_ns == 3

    def test_real_cpu_clock_never_exceeds_wall_by_much(self):
        t = Tracer()
        with t.span("busy"):
            sum(range(10_000))
        (only,) = t.finished()
        assert only.cpu_ns >= 0
        # Single-threaded spans burn at most their wall time (plus
        # scheduler noise well under the span's own duration).
        assert only.cpu_ns <= only.duration_ns * 2 + 1_000_000

    def test_chrome_trace_carries_cpu_us(self):
        t = Tracer(clock=fake_clock(10), cpu_clock=fake_clock(4000))
        with t.span("a"):
            pass
        event = chrome_trace(t.finished())["traceEvents"][1]
        assert event["args"]["cpu_us"] == 4.0

    def test_round_trip_preserves_cpu_us(self):
        t = Tracer(clock=fake_clock(10), cpu_clock=fake_clock(5000))
        with t.span("a"):
            pass
        (node,) = parse_chrome_trace(chrome_trace(t.finished()))
        assert node.cpu_us == 5.0

    def test_folded_cpu_metric(self):
        t = Tracer(clock=fake_clock(1000), cpu_clock=fake_clock(2000))
        with t.span("root"):
            with t.span("child"):
                pass
        wall = folded_stacks(t.finished(), metric="wall")
        cpu = folded_stacks(t.finished(), metric="cpu")
        assert wall == ["root 2", "root;child 1"]
        assert cpu == ["root 4", "root;child 2"]

    def test_folded_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="unknown metric"):
            folded_stacks([], metric="gpu")
