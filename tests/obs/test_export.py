"""The repro-metrics JSON schema: sanitisation, validation, round-trip."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.obs import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    MetricsRegistry,
    experiment_document,
    load_report,
    metrics_report,
    simulation_section,
    validate_document,
    validate_report,
    write_report,
)
from repro.obs.export import sanitize
from repro.queries import UniformPointWorkload
from repro.simulation import simulate
from tests.obs.test_levels import two_level_description


@dataclass(frozen=True)
class _FakeResult:
    curves: dict
    sizes: tuple


def instrumented_result(registry=None, **overrides):
    kwargs = dict(buffer_size=1, n_batches=3, batch_size=200, trace_last=4)
    kwargs.update(overrides)
    return simulate(
        two_level_description(),
        UniformPointWorkload(),
        registry=registry if registry is not None else MetricsRegistry(),
        **kwargs,
    )


class TestSanitize:
    def test_dataclasses_tuples_and_numpy(self):
        value = _FakeResult(
            curves={("hs", 300): (np.float64(1.5), 2)},
            sizes=(np.int64(10), 20),
        )
        cleaned = sanitize(value)
        assert cleaned == {"curves": {"hs/300": [1.5, 2]}, "sizes": [10, 20]}
        json.dumps(cleaned)  # round-trippable

    def test_sets_sorted_non_str_keys_coerced(self):
        assert sanitize({3: {2, 1}}) == {"3": [1, 2]}

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            sanitize(object())


class TestSimulationSection:
    def test_requires_level_stats(self):
        bare = simulate(
            two_level_description(), UniformPointWorkload(), 2,
            n_batches=2, batch_size=100,
        )
        with pytest.raises(ValueError):
            simulation_section(bare, {})

    def test_aggregate_equals_column_sums(self):
        section = simulation_section(instrumented_result(), {"dataset": "x"})
        for key in ("requests", "hits", "misses", "evictions"):
            assert section["aggregate"][key] == sum(
                row[key] for row in section["per_level"]
            )
            assert section["aggregate"][key] == sum(
                row[key] for row in section["per_batch"]
            )
        assert section["probe"] == {"dataset": "x"}
        assert len(section["trace"]) == 4


class TestDocumentValidation:
    def make_document(self):
        registry = MetricsRegistry()
        section = simulation_section(
            instrumented_result(registry), {"dataset": "x"}
        )
        return experiment_document(
            name="fake",
            meta={"title": "Fake", "source": "Fig. 0"},
            result=_FakeResult(curves={}, sizes=(1,)),
            wall_seconds=0.25,
            simulation=section,
            registry=registry,
        )

    def test_valid_document_passes(self):
        validate_document(self.make_document())

    def test_wrong_schema_rejected(self):
        doc = self.make_document()
        doc["schema"] = "other"
        with pytest.raises(ValueError):
            validate_document(doc)

    def test_future_version_rejected(self):
        doc = self.make_document()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            validate_document(doc)

    def test_level_sum_mismatch_rejected(self):
        doc = self.make_document()
        doc["simulation"]["per_level"][0]["hits"] += 1
        with pytest.raises(ValueError, match="per-level hits"):
            validate_document(doc)

    def test_batch_sum_mismatch_rejected(self):
        doc = self.make_document()
        doc["simulation"]["per_batch"][0]["misses"] += 1
        with pytest.raises(ValueError, match="per-batch misses"):
            validate_document(doc)

    def test_simulation_free_document_is_valid(self):
        doc = experiment_document(
            name="fake", meta={}, result={"rows": [1, 2]}, wall_seconds=0.1
        )
        validate_document(doc)
        assert doc["simulation"] is None and doc["metrics"] is None


class TestReportRoundTrip:
    def test_write_then_load(self, tmp_path):
        doc = TestDocumentValidation().make_document()
        report = metrics_report([doc])
        path = tmp_path / "metrics.json"
        write_report(path, report)
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(report))  # lossless
        assert loaded["schema"] == SCHEMA_NAME
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["generated_by"] == "repro-experiments"
        assert len(loaded["documents"]) == 1

    def test_write_rejects_invalid_report(self, tmp_path):
        with pytest.raises(ValueError):
            write_report(tmp_path / "bad.json", {"schema": SCHEMA_NAME})

    def test_validate_report_checks_every_document(self):
        doc = TestDocumentValidation().make_document()
        bad = dict(doc)
        bad["schema"] = "other"
        with pytest.raises(ValueError):
            validate_report(metrics_report([doc, bad]))
