"""The repro-metrics JSON schema: sanitisation, validation, round-trip."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.obs import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    MetricsRegistry,
    experiment_document,
    load_report,
    metrics_report,
    simulation_section,
    validate_document,
    validate_report,
    write_report,
)
from repro.obs.export import sanitize
from repro.queries import UniformPointWorkload
from repro.simulation import simulate
from tests.obs.test_levels import two_level_description


@dataclass(frozen=True)
class _FakeResult:
    curves: dict
    sizes: tuple


def instrumented_result(registry=None, **overrides):
    kwargs = dict(buffer_size=1, n_batches=3, batch_size=200, trace_last=4)
    kwargs.update(overrides)
    return simulate(
        two_level_description(),
        UniformPointWorkload(),
        registry=registry if registry is not None else MetricsRegistry(),
        **kwargs,
    )


class TestSanitize:
    def test_dataclasses_tuples_and_numpy(self):
        value = _FakeResult(
            curves={("hs", 300): (np.float64(1.5), 2)},
            sizes=(np.int64(10), 20),
        )
        cleaned = sanitize(value)
        assert cleaned == {"curves": {"hs/300": [1.5, 2]}, "sizes": [10, 20]}
        json.dumps(cleaned)  # round-trippable

    def test_sets_sorted_non_str_keys_coerced(self):
        assert sanitize({3: {2, 1}}) == {"3": [1, 2]}

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            sanitize(object())


class TestSimulationSection:
    def test_requires_level_stats(self):
        bare = simulate(
            two_level_description(), UniformPointWorkload(), 2,
            n_batches=2, batch_size=100,
        )
        with pytest.raises(ValueError):
            simulation_section(bare, {})

    def test_aggregate_equals_column_sums(self):
        section = simulation_section(instrumented_result(), {"dataset": "x"})
        for key in ("requests", "hits", "misses", "evictions"):
            assert section["aggregate"][key] == sum(
                row[key] for row in section["per_level"]
            )
            assert section["aggregate"][key] == sum(
                row[key] for row in section["per_batch"]
            )
        assert section["probe"] == {"dataset": "x"}
        assert len(section["trace"]) == 4


class TestDocumentValidation:
    def make_document(self):
        registry = MetricsRegistry()
        section = simulation_section(
            instrumented_result(registry), {"dataset": "x"}
        )
        return experiment_document(
            name="fake",
            meta={"title": "Fake", "source": "Fig. 0"},
            result=_FakeResult(curves={}, sizes=(1,)),
            wall_seconds=0.25,
            simulation=section,
            registry=registry,
        )

    def test_valid_document_passes(self):
        validate_document(self.make_document())

    def test_wrong_schema_rejected(self):
        doc = self.make_document()
        doc["schema"] = "other"
        with pytest.raises(ValueError):
            validate_document(doc)

    def test_future_version_rejected(self):
        doc = self.make_document()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            validate_document(doc)

    def test_level_sum_mismatch_rejected(self):
        doc = self.make_document()
        doc["simulation"]["per_level"][0]["hits"] += 1
        with pytest.raises(ValueError, match="per-level hits"):
            validate_document(doc)

    def test_batch_sum_mismatch_rejected(self):
        doc = self.make_document()
        doc["simulation"]["per_batch"][0]["misses"] += 1
        with pytest.raises(ValueError, match="per-batch misses"):
            validate_document(doc)

    def test_simulation_free_document_is_valid(self):
        doc = experiment_document(
            name="fake", meta={}, result={"rows": [1, 2]}, wall_seconds=0.1
        )
        validate_document(doc)
        assert doc["simulation"] is None and doc["metrics"] is None


class TestServingSection:
    def make_report(self):
        from repro.serving import LoadReport

        return LoadReport(
            queries=10,
            wall_seconds=0.5,
            throughput_qps=20.0,
            offered_rate_qps=25.0,
            batches=4,
            shards=2,
            latency_summary_us={
                "count": 10, "mean": 30.0, "max": 90.0,
                "p50": 20.0, "p95": 60.0, "p99": 80.0,
            },
            latency_histogram_us={
                "bounds_us": [1.0, 10.0, 100.0, 1000.0],
                "counts": [2, 5, 3],
            },
            buffer_aggregate={
                "requests": 30, "hits": 12, "misses": 18, "evictions": 5,
            },
            buffer_per_shard=(
                {
                    "shard_id": 0, "capacity": 10,
                    "requests": 18, "hits": 7, "misses": 11, "evictions": 3,
                },
                {
                    "shard_id": 1, "capacity": 10,
                    "requests": 12, "hits": 5, "misses": 7, "evictions": 2,
                },
            ),
            buffer_capacity=20,
        )

    def make_telemetry(self):
        """A pointer block that reconciles with :meth:`make_report`."""
        return {
            "schema": "repro-telemetry/1",
            "path": "telemetry.jsonl",
            "interval_s": 0.1,
            "ticks": 3,
            "final": {
                "aggregate": {
                    "requests": 30, "hits": 12, "misses": 18,
                    "evictions": 5,
                },
                "shards": [
                    {
                        "shard_id": 0, "requests": 18, "hits": 7,
                        "misses": 11, "evictions": 3,
                    },
                    {
                        "shard_id": 1, "requests": 12, "hits": 5,
                        "misses": 7, "evictions": 2,
                    },
                ],
            },
        }

    def make_document(self, telemetry=None, **section_overrides):
        from repro.obs import serving_section

        section = serving_section(
            self.make_report(), {"dataset": "x"}, telemetry=telemetry
        )
        section.update(section_overrides)
        return experiment_document(
            name="fake",
            meta={},
            result={"rows": [1]},
            wall_seconds=0.1,
            serving=section,
        )

    def test_section_shape(self):
        from repro.obs import serving_section

        section = serving_section(self.make_report(), {"dataset": "x"})
        assert section["probe"] == {"dataset": "x"}
        assert section["queries"] == 10
        assert section["batches"] == {"count": 4, "mean_queries": 2.5}
        assert section["buffer"]["aggregate"]["hit_ratio"] == 12 / 30
        assert section["buffer"]["shards"] == 2
        json.dumps(section)  # exportable as-is

    def test_valid_document_passes(self):
        validate_document(self.make_document())

    def test_missing_key_rejected(self):
        doc = self.make_document()
        del doc["serving"]["latency_us"]
        with pytest.raises(ValueError, match="latency_us"):
            validate_document(doc)

    def test_unordered_percentiles_rejected(self):
        doc = self.make_document()
        doc["serving"]["latency_us"]["p95"] = 85.0  # > p99
        with pytest.raises(ValueError, match="ordered"):
            validate_document(doc)

    def test_latency_count_mismatch_rejected(self):
        doc = self.make_document()
        doc["serving"]["latency_us"]["count"] = 9
        with pytest.raises(ValueError, match="count"):
            validate_document(doc)

    def test_histogram_sum_mismatch_rejected(self):
        doc = self.make_document()
        doc["serving"]["histogram_us"]["counts"][0] += 1
        with pytest.raises(ValueError, match="histogram"):
            validate_document(doc)

    def test_histogram_bounds_shape_rejected(self):
        doc = self.make_document()
        doc["serving"]["histogram_us"]["bounds_us"].append(1e4)
        with pytest.raises(ValueError, match="bounds"):
            validate_document(doc)

    def test_shard_count_mismatch_rejected(self):
        doc = self.make_document()
        doc["serving"]["buffer"]["shards"] = 3
        with pytest.raises(ValueError, match="shard"):
            validate_document(doc)

    def test_shard_sum_mismatch_rejected(self):
        doc = self.make_document()
        doc["serving"]["buffer"]["per_shard"][0]["hits"] += 1
        with pytest.raises(ValueError):
            validate_document(doc)

    def test_shard_id_mismatch_rejected(self):
        doc = self.make_document()
        doc["serving"]["buffer"]["per_shard"][1]["shard_id"] = 0
        with pytest.raises(ValueError, match="shard_id"):
            validate_document(doc)

    def test_capacity_sum_mismatch_rejected(self):
        doc = self.make_document()
        doc["serving"]["buffer"]["per_shard"][0]["capacity"] = 11
        with pytest.raises(ValueError, match="capacit"):
            validate_document(doc)

    def test_missing_shard_capacity_rejected(self):
        doc = self.make_document()
        del doc["serving"]["buffer"]["per_shard"][0]["capacity"]
        with pytest.raises(ValueError, match="capacity"):
            validate_document(doc)

    def test_reconciling_telemetry_pointer_passes(self):
        doc = self.make_document(telemetry=self.make_telemetry())
        validate_document(doc)

    def test_telemetry_aggregate_mismatch_rejected(self):
        telemetry = self.make_telemetry()
        telemetry["final"]["aggregate"]["hits"] += 1
        doc = self.make_document(telemetry=telemetry)
        with pytest.raises(ValueError, match="telemetry final aggregate"):
            validate_document(doc)

    def test_telemetry_shard_row_mismatch_rejected(self):
        telemetry = self.make_telemetry()
        telemetry["final"]["shards"][1]["requests"] -= 1
        doc = self.make_document(telemetry=telemetry)
        with pytest.raises(ValueError, match="telemetry final shard"):
            validate_document(doc)

    def test_telemetry_shard_count_mismatch_rejected(self):
        telemetry = self.make_telemetry()
        telemetry["final"]["shards"].pop()
        doc = self.make_document(telemetry=telemetry)
        with pytest.raises(ValueError, match="shard rows"):
            validate_document(doc)

    def test_telemetry_wrong_schema_rejected(self):
        telemetry = self.make_telemetry()
        telemetry["schema"] = "repro-telemetry/9"
        doc = self.make_document(telemetry=telemetry)
        with pytest.raises(ValueError, match="telemetry schema"):
            validate_document(doc)

    def test_telemetry_without_ticks_rejected(self):
        telemetry = self.make_telemetry()
        telemetry["ticks"] = 0
        doc = self.make_document(telemetry=telemetry)
        with pytest.raises(ValueError, match="ticks"):
            validate_document(doc)

    def test_unbalanced_aggregate_rejected(self):
        doc = self.make_document()
        doc["serving"]["buffer"]["aggregate"]["hits"] = 13
        doc["serving"]["buffer"]["per_shard"][0]["hits"] = 8
        with pytest.raises(ValueError):
            validate_document(doc)

    def test_serving_free_document_is_valid(self):
        doc = experiment_document(
            name="fake", meta={}, result={}, wall_seconds=0.1
        )
        validate_document(doc)
        assert doc["serving"] is None


class TestReportRoundTrip:
    def test_write_then_load(self, tmp_path):
        doc = TestDocumentValidation().make_document()
        report = metrics_report([doc])
        path = tmp_path / "metrics.json"
        write_report(path, report)
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(report))  # lossless
        assert loaded["schema"] == SCHEMA_NAME
        assert loaded["schema_version"] == SCHEMA_VERSION
        assert loaded["generated_by"] == "repro-experiments"
        assert len(loaded["documents"]) == 1

    def test_write_rejects_invalid_report(self, tmp_path):
        with pytest.raises(ValueError):
            write_report(tmp_path / "bad.json", {"schema": SCHEMA_NAME})

    def test_validate_report_checks_every_document(self):
        doc = TestDocumentValidation().make_document()
        bad = dict(doc)
        bad["schema"] = "other"
        with pytest.raises(ValueError):
            validate_report(metrics_report([doc, bad]))
