"""Profiler: tracemalloc lifecycle, span tagging, report schema."""

import tracemalloc

import pytest

from repro.obs import Profiler, Tracer
from repro.obs.profile import PROFILE_SCHEMA


@pytest.fixture(autouse=True)
def _no_ambient_tracemalloc():
    """These tests own the tracemalloc lifecycle; skip if it's already on."""
    if tracemalloc.is_tracing():
        pytest.skip("tracemalloc already tracing (PYTHONTRACEMALLOC?)")
    yield
    assert not tracemalloc.is_tracing(), "test leaked a tracing session"


class TestLifecycle:
    def test_start_stop_owns_tracemalloc(self):
        profiler = Profiler()
        assert not profiler.active
        profiler.start()
        assert profiler.active
        profiler.stop()
        assert not profiler.active

    def test_context_manager(self):
        with Profiler() as profiler:
            assert profiler.active
        assert not tracemalloc.is_tracing()

    def test_stop_detaches_probe(self):
        tracer = Tracer()
        with Profiler() as profiler:
            profiler.attach(tracer)
            assert tracer.memory_probe is not None
        assert tracer.memory_probe is None

    def test_top_n_validation(self):
        with pytest.raises(ValueError):
            Profiler(top_n=0)


class TestSpanTagging:
    def test_spans_gain_mem_delta(self):
        tracer = Tracer()
        with Profiler() as profiler:
            profiler.attach(tracer)
            with tracer.span("alloc"):
                blob = [bytearray(64 * 1024) for _ in range(4)]
            assert blob is not None
        (only,) = tracer.finished()
        assert "mem_delta_kb" in only.attrs
        assert only.attrs["mem_delta_kb"] > 100  # ~256 KiB allocated
        assert "_mem_start" not in only.attrs  # bookkeeping cleaned up


class TestReport:
    def test_report_schema_and_sites(self):
        with Profiler(top_n=5) as profiler:
            keep = [bytearray(128 * 1024)]
            report = profiler.report()
        assert keep
        assert report["schema"] == PROFILE_SCHEMA
        assert report["tracing"] is True
        assert report["top_n"] == 5
        assert report["current_kb"] > 0
        assert report["peak_kb"] >= report["current_kb"]
        assert 0 < len(report["top_allocations"]) <= 5
        for site in report["top_allocations"]:
            assert set(site) == {"site", "kb", "blocks"}
            assert ":" in site["site"]

    def test_report_when_not_tracing(self):
        report = Profiler().report()
        assert report["tracing"] is False
        assert report["current_kb"] == 0
        assert report["top_allocations"] == []
