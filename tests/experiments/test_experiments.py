"""Qualitative tests for the per-figure experiment harnesses.

Each test runs an experiment (scaled down where the defaults are slow)
and asserts the *shape* of the paper's result — who wins, where the
crossovers and knees are — rather than absolute numbers.
"""

import pytest

from repro.experiments import fig5, fig6, fig7, fig8, fig9, fig10, fig11, table2
from repro.experiments.runner import EXPERIMENTS, main


class TestTable2:
    def test_four_level_trees(self):
        result = table2.run()
        for size, counts in result.counts.items():
            assert len(counts) == 4, f"{size} points should give 4 levels"
            assert counts[0] == 1

    def test_paper_quoted_pin_counts(self):
        result = table2.run()
        assert result.counts[250_000] == (1, 16, 400, 10000)
        assert result.pinned_pages(250_000, 3) == 417  # paper §5.5
        assert result.pinned_pages(80_000, 3) == 135  # paper §5.5

    def test_to_text(self):
        text = table2.run().to_text()
        assert "level 0" in text and "250000" in text


class TestFig5:
    def test_skew_statistics(self):
        result = fig5.run()
        assert result.n_points == 52_510
        # Most of the data crowds a small window around the wing.
        assert result.center_fraction > 5 * result.center_area_fraction
        assert result.gini > 0.5
        assert result.empty_cell_fraction >= 0.0

    def test_to_text_renders_plot(self):
        text = fig5.run().to_text()
        assert "Fig. 5" in text
        assert "|" in text  # the ASCII density plot


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        # Skip TAT here: it dominates runtime and is covered by the
        # benches; the crossover story needs NX and HS.
        return fig6.run(loaders=("nx", "hs"), buffer_sizes=(10, 100, 300, 500))

    def test_hs_beats_nx_everywhere(self, result):
        for curves in (result.point_curves, result.region_curves):
            for nx, hs in zip(curves["nx"], curves["hs"]):
                assert hs <= nx + 1e-9

    def test_disk_accesses_decrease_with_buffer(self, result):
        for curves in (result.point_curves, result.region_curves):
            for loader in curves:
                values = list(curves[loader])
                assert values == sorted(values, reverse=True)

    def test_bufferless_upper_bounds_buffered(self, result):
        for loader in ("nx", "hs"):
            assert result.point_curves[loader][0] <= (
                result.point_node_accesses[loader] + 1e-9
            )

    def test_crossover_helper(self, result):
        # HS beats NX from the start.
        assert result.crossover_buffer("nx", "hs", region=True) == 10
        # NX never beats HS.
        assert result.crossover_buffer("hs", "nx", region=True) is None

    def test_to_text(self, result):
        text = result.to_text()
        assert "point queries" in text and "region queries" in text


class TestFig7And8:
    @pytest.fixture(scope="class")
    def tiger(self):
        return fig7.run(buffer_sizes=(10, 100, 500))

    @pytest.fixture(scope="class")
    def cfd(self):
        return fig8.run(buffer_sizes=(10, 100, 500))

    def test_data_driven_costs_more(self, tiger, cfd):
        """Both data sets: data-driven queries always land on data, so
        they need more disk accesses than uniform queries."""
        for result in (tiger, cfd):
            for u, d in zip(result.uniform, result.data_driven):
                assert d > u

    def test_uniform_benefits_more_from_buffer(self, tiger, cfd):
        """The right-panel claim: buffer speedup is larger under the
        uniform model (hot nodes) than the data-driven model."""
        for result in (tiger, cfd):
            assert result.uniform_speedup[-1] > result.data_driven_speedup[-1]

    def test_tiger_speedups_near_paper_anchors(self, tiger):
        """Paper: 3.91x (uniform) vs 2.86x (data-driven) from B=10 to
        B=500 on Long Beach.  Generous tolerance: the data set is a
        synthetic substitute."""
        assert 2.0 < tiger.uniform_speedup[-1] < 8.0
        assert 1.5 < tiger.data_driven_speedup[-1] < 5.0

    def test_cfd_uniform_ratio_exceeds_20(self, cfd):
        """Paper: 'the ratios in excess of 20' on the CFD data."""
        assert cfd.uniform_speedup[-1] > 20

    def test_to_text(self, tiger):
        assert "uniform" in tiger.to_text()


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(sizes=(25_000, 100_000, 300_000))

    def test_bufferless_hs_looks_flat(self, result):
        """25k -> 300k rectangles: the bufferless HS cost grows by far
        less than the buffered cost does (the paper's trap for query
        optimisers)."""
        hs_flat_growth = result.growth(result.node_accesses["hs"])
        hs_buffered_growth = result.growth(result.disk_accesses[("hs", 300)])
        assert hs_flat_growth < 2.0
        assert hs_buffered_growth > 2 * hs_flat_growth

    def test_buffered_costs_increase_with_size(self, result):
        for key, curve in result.disk_accesses.items():
            assert list(curve) == sorted(curve)

    def test_to_text(self, result):
        text = result.to_text()
        assert "no buffer" in text and "buffer size = 300" in text


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(sizes=(80_000, 250_000))

    def test_pinning_up_to_two_levels_is_noise(self, result):
        """Pinning 0, 1 or 2 levels performs identically (LRU keeps
        those pages resident anyway)."""
        for b in result.buffers:
            for i, _ in enumerate(result.sizes):
                base = result.disk_accesses[(b, 0)][i]
                for p in (1, 2):
                    assert result.disk_accesses[(b, p)][i] == pytest.approx(
                        base, rel=1e-3
                    )

    def test_pinning_three_levels_helps_when_pinned_near_buffer(self, result):
        """250k points / B=500 pins 417 pages (>= B/2): big win.
        80k points / B=500 pins 135 pages (< B/3): marginal."""
        big = result.improvement(500, 250_000)
        small = result.improvement(500, 80_000)
        assert big > 0.2
        assert small < 0.1
        assert big > 3 * small

    def test_large_buffer_kills_the_benefit(self, result):
        """B=2000: pinned pages are < 1/4 of the buffer; paper says
        'almost no difference'."""
        assert result.improvement(2000, 250_000) < 0.05

    def test_to_text(self, result):
        assert "buffer = 500" in result.to_text()


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11.run(
            buffer_sizes=(50, 100, 500, 2000),
            query_sides=(0.0, 0.05, 0.15),
        )

    def test_pin3_infeasible_below_its_page_count(self, result):
        """Long Beach at node size 25 has 91 pages in the top three
        levels; the paper: below ~100 pages it cannot be pinned."""
        i50 = result.buffer_sizes.index(50)
        assert result.left_curves[3][i50] is None
        i100 = result.buffer_sizes.index(100)
        assert result.left_curves[3][i100] is not None

    def test_pinning_012_identical(self, result):
        for i in range(len(result.buffer_sizes)):
            a = result.left_curves[0][i]
            b = result.left_curves[1][i]
            assert b == pytest.approx(a, rel=1e-3)

    def test_point_query_improvement_near_paper_35_percent(self, result):
        """Paper: pinning 3 levels on the 250k tree with B=500 gives a
        35% improvement for point queries; pinning 2 gives none."""
        pin3_at_zero = result.right_curves[3][0]
        pin2_at_zero = result.right_curves[2][0]
        assert 20 < pin3_at_zero < 60
        assert pin2_at_zero < 1

    def test_benefit_decays_with_query_size(self, result):
        curve = result.right_curves[3]
        assert curve[0] > curve[1] > curve[2]

    def test_to_text(self, result):
        text = result.to_text()
        assert "Fig. 11 (left)" in text and "QX" in text


class TestRunner:
    def test_registry_covers_all_experiments(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11",
        }

    def test_main_runs_named_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "completed in" in out

    def test_main_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_main_returns_nonzero_on_experiment_failure(self, monkeypatch, capsys):
        def boom():
            raise RuntimeError("simulated crash")

        monkeypatch.setitem(EXPERIMENTS, "fig5", boom)
        assert main(["fig5"]) == 1
        err = capsys.readouterr().err
        assert "fig5 FAILED" in err
        assert "simulated crash" in err
        assert "1 of 1 experiment(s) failed" in err

    def test_main_failure_does_not_abort_later_experiments(
        self, monkeypatch, capsys
    ):
        def boom():
            raise ValueError("bad input")

        monkeypatch.setitem(EXPERIMENTS, "fig5", boom)
        assert main(["fig5", "table2"]) == 1
        captured = capsys.readouterr()
        assert "fig5 FAILED" in captured.err
        assert "table2 completed" in captured.out
