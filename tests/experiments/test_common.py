"""Tests for the experiment harness infrastructure."""

import numpy as np
import pytest

from repro.experiments.common import (
    Table,
    get_dataset,
    get_description,
    probe_budget,
    serve_shards,
    sim_batches,
    sim_queries_per_batch,
    sim_workers,
)


class TestDatasets:
    def test_caching_returns_same_object(self):
        a = get_dataset("region", 1000)
        b = get_dataset("region", 1000)
        assert a is b

    def test_sizes_required_for_synthetic(self):
        with pytest.raises(ValueError):
            get_dataset("region")
        with pytest.raises(ValueError):
            get_dataset("point")

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            get_dataset("osm")

    def test_custom_sizes(self):
        assert len(get_dataset("tiger", 777)) == 777
        assert len(get_dataset("cfd", 555)) == 555

    def test_description_caching(self):
        a = get_description("region", 1000, 10, "hs")
        b = get_description("region", 1000, 10, "hs")
        assert a is b
        assert a.node_counts == (1, 10, 100)


class TestMmapCache:
    @pytest.fixture()
    def mmap_dir(self, monkeypatch, tmp_path):
        # The lru_cache would otherwise serve whichever mode ran
        # first; clear it around the env flip so both paths are real.
        get_dataset.cache_clear()
        monkeypatch.setenv("REPRO_DATASET_MMAP", str(tmp_path))
        yield tmp_path
        get_dataset.cache_clear()

    def test_served_dataset_is_memory_mapped(self, mmap_dir):
        data = get_dataset("region", 500)
        assert isinstance(data.lo.base, np.memmap)
        assert not data.lo.flags.writeable
        files = list(mmap_dir.glob("*.npy"))
        assert len(files) == 1
        assert "region-500" in files[0].name

    def test_byte_identical_to_generated(self, mmap_dir, monkeypatch):
        mapped = get_dataset("point", 300)
        get_dataset.cache_clear()
        monkeypatch.delenv("REPRO_DATASET_MMAP")
        plain = get_dataset("point", 300)
        assert np.array_equal(mapped.lo, plain.lo)
        assert np.array_equal(mapped.hi, plain.hi)

    def test_file_written_once(self, mmap_dir):
        get_dataset("region", 400)
        (path,) = mmap_dir.glob("*.npy")
        stamp = path.stat().st_mtime_ns
        get_dataset.cache_clear()
        get_dataset("region", 400)  # reuses the file, no rewrite
        assert path.stat().st_mtime_ns == stamp


class TestEnvKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BATCHES", raising=False)
        monkeypatch.delenv("REPRO_SIM_QUERIES", raising=False)
        monkeypatch.delenv("REPRO_SIM_WORKERS", raising=False)
        assert sim_batches() == 20
        assert sim_queries_per_batch() == 20000
        assert sim_workers() == 0

    def test_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCHES", "5")
        monkeypatch.setenv("REPRO_SIM_QUERIES", "123")
        monkeypatch.setenv("REPRO_SIM_WORKERS", "4")
        assert sim_batches() == 5
        assert sim_queries_per_batch() == 123
        assert sim_workers() == 4

    def test_probe_budget_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROBE_BATCHES", raising=False)
        monkeypatch.delenv("REPRO_PROBE_QUERIES", raising=False)
        assert probe_budget() == (5, 2000)

    def test_probe_budget_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_BATCHES", "3")
        monkeypatch.setenv("REPRO_PROBE_QUERIES", "77")
        assert probe_budget() == (3, 77)

    def test_probe_budget_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE_BATCHES", "1")
        with pytest.raises(ValueError, match="BATCHES"):
            probe_budget()
        monkeypatch.setenv("REPRO_PROBE_BATCHES", "2")
        monkeypatch.setenv("REPRO_PROBE_QUERIES", "0")
        with pytest.raises(ValueError, match="QUERIES"):
            probe_budget()

    def test_serve_shards(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_SHARDS", raising=False)
        assert serve_shards() == 1
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "8")
        assert serve_shards() == 8
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "0")
        with pytest.raises(ValueError, match="SHARDS"):
            serve_shards()

    def test_serve_workers(self, monkeypatch):
        from repro.experiments.common import serve_workers

        monkeypatch.delenv("REPRO_SERVE_WORKERS", raising=False)
        assert serve_workers() == 0  # default: in-process pool
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "4")
        assert serve_workers() == 4
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "-1")
        with pytest.raises(ValueError, match="WORKERS"):
            serve_workers()

    def test_serve_slo_windows(self, monkeypatch):
        from repro.experiments.common import serve_slo

        for key in ("REPRO_SERVE_SLO_FAST_TICKS",
                    "REPRO_SERVE_SLO_SLOW_TICKS"):
            monkeypatch.delenv(key, raising=False)
        assert serve_slo()[3:] == (5, 60)
        monkeypatch.setenv("REPRO_SERVE_SLO_FAST_TICKS", "3")
        monkeypatch.setenv("REPRO_SERVE_SLO_SLOW_TICKS", "12")
        assert serve_slo()[3:] == (3, 12)
        monkeypatch.setenv("REPRO_SERVE_SLO_SLOW_TICKS", "2")
        with pytest.raises(ValueError, match="SLOW"):
            serve_slo()
        monkeypatch.setenv("REPRO_SERVE_SLO_SLOW_TICKS", "12")
        monkeypatch.setenv("REPRO_SERVE_SLO_FAST_TICKS", "0")
        with pytest.raises(ValueError, match="FAST"):
            serve_slo()


class TestTable:
    def test_render(self):
        t = Table(["name", "value"])
        t.add("alpha", 1.23456)
        t.add("b", 10)
        text = t.to_text("Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in text  # 4 significant digits
        assert "alpha" in text

    def test_cell_count_validated(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_columns_aligned(self):
        t = Table(["x", "longheader"])
        t.add(1, 2)
        t.add(100000, 3)
        lines = t.to_text().splitlines()
        assert len(lines[0]) == len(lines[1]) == len(lines[2])
