"""Tests for the experiment harness infrastructure."""

import pytest

from repro.experiments.common import (
    Table,
    get_dataset,
    get_description,
    sim_batches,
    sim_queries_per_batch,
)


class TestDatasets:
    def test_caching_returns_same_object(self):
        a = get_dataset("region", 1000)
        b = get_dataset("region", 1000)
        assert a is b

    def test_sizes_required_for_synthetic(self):
        with pytest.raises(ValueError):
            get_dataset("region")
        with pytest.raises(ValueError):
            get_dataset("point")

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            get_dataset("osm")

    def test_custom_sizes(self):
        assert len(get_dataset("tiger", 777)) == 777
        assert len(get_dataset("cfd", 555)) == 555

    def test_description_caching(self):
        a = get_description("region", 1000, 10, "hs")
        b = get_description("region", 1000, 10, "hs")
        assert a is b
        assert a.node_counts == (1, 10, 100)


class TestEnvKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BATCHES", raising=False)
        monkeypatch.delenv("REPRO_SIM_QUERIES", raising=False)
        assert sim_batches() == 20
        assert sim_queries_per_batch() == 20000

    def test_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BATCHES", "5")
        monkeypatch.setenv("REPRO_SIM_QUERIES", "123")
        assert sim_batches() == 5
        assert sim_queries_per_batch() == 123


class TestTable:
    def test_render(self):
        t = Table(["name", "value"])
        t.add("alpha", 1.23456)
        t.add("b", 10)
        text = t.to_text("Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in text  # 4 significant digits
        assert "alpha" in text

    def test_cell_count_validated(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_columns_aligned(self):
        t = Table(["x", "longheader"])
        t.add(1, 2)
        t.add(100000, 3)
        lines = t.to_text().splitlines()
        assert len(lines[0]) == len(lines[1]) == len(lines[2])
