"""Unit tests for the shared Fig. 7/8 machinery."""

import math

import pytest

from repro.experiments.uniform_vs_datadriven import (
    UniformVsDataDrivenResult,
    run_comparison,
)


@pytest.fixture
def result() -> UniformVsDataDrivenResult:
    return UniformVsDataDrivenResult(
        dataset="demo",
        figure="Fig. X",
        buffer_sizes=(10, 100, 500),
        uniform=(2.0, 1.0, 0.5),
        data_driven=(4.0, 3.0, 2.0),
    )


class TestSpeedups:
    def test_speedup_is_relative_to_first(self, result):
        assert result.uniform_speedup == (1.0, 2.0, 4.0)
        assert result.data_driven_speedup == (1.0, 4.0 / 3.0, 2.0)

    def test_zero_cost_gives_infinite_speedup(self):
        result = UniformVsDataDrivenResult(
            dataset="demo",
            figure="Fig. X",
            buffer_sizes=(10, 500),
            uniform=(1.0, 0.0),
            data_driven=(2.0, 1.0),
        )
        assert result.uniform_speedup == (1.0, math.inf)

    def test_to_text_mentions_figure_and_dataset(self, result):
        text = result.to_text()
        assert "Fig. X" in text and "demo" in text
        assert "speedup" in text


class TestRunComparison:
    def test_small_scale_run(self):
        result = run_comparison("tiger", "Fig. 7", buffer_sizes=(10, 100))
        assert result.buffer_sizes == (10, 100)
        assert len(result.uniform) == 2
        assert all(v >= 0 for v in result.uniform)
        # Data-driven queries cost more on the clustered tiger data.
        assert result.data_driven[0] > result.uniform[0]
