"""The ``--metrics-out`` export path of ``repro-experiments``."""

from dataclasses import dataclass

import pytest

from repro.experiments.probes import METRICS_PROBES, ProbeSpec, run_probe
from repro.experiments.runner import EXPERIMENTS, METAS, main
from repro.obs import MetricsRegistry, load_report

TINY_PROBE = ProbeSpec("point", 400, 10, "hs", "uniform-point", 10)
"""A probe small enough for the unit-test budget."""


@dataclass(frozen=True)
class _StubResult:
    value: float

    def to_text(self) -> str:
        return f"stub value {self.value}"


@pytest.fixture
def stub_experiment(monkeypatch):
    """Replace fig5 with a fast stub and a tiny probe."""
    monkeypatch.setitem(EXPERIMENTS, "fig5", lambda: _StubResult(1.5))
    monkeypatch.setitem(METRICS_PROBES, "fig5", TINY_PROBE)


class TestProbes:
    def test_every_experiment_has_a_probe(self):
        assert set(METRICS_PROBES) == set(EXPERIMENTS)

    def test_every_experiment_has_meta(self):
        assert set(METAS) == set(EXPERIMENTS)

    def test_run_probe_produces_instrumented_result(self):
        registry = MetricsRegistry()
        result, probe = run_probe(
            TINY_PROBE, registry, n_batches=2, batch_size=200, trace_last=3
        )
        assert result.level_stats is not None
        assert len(result.trace) == 3
        assert probe["dataset"] == "point" and probe["batch_size"] == 200
        assert "buffer.requests" in registry.to_dict()["counters"]

    def test_unknown_workload_rejected(self):
        bad = ProbeSpec("point", 400, 10, "hs", "nope", 10)
        with pytest.raises(ValueError, match="unknown probe workload"):
            run_probe(bad, MetricsRegistry())


class TestMetricsOut:
    def test_writes_schema_valid_report(self, tmp_path, stub_experiment, capsys):
        path = tmp_path / "out.json"
        assert main(["--metrics-out", str(path), "fig5"]) == 0
        out = capsys.readouterr().out
        assert "metrics for 1 experiment(s)" in out
        report = load_report(path)  # validates on load
        (doc,) = report["documents"]
        assert doc["experiment"]["name"] == "fig5"
        assert doc["experiment"]["source"] == METAS["fig5"]["source"]
        assert doc["result"] == {"value": 1.5}
        assert doc["wall_seconds"] >= 0.0

    def test_per_level_sums_match_aggregate(self, tmp_path, stub_experiment):
        path = tmp_path / "out.json"
        assert main(["--metrics-out", str(path), "fig5"]) == 0
        simulation = load_report(path)["documents"][0]["simulation"]
        for key in ("requests", "hits", "misses", "evictions"):
            assert simulation["aggregate"][key] == sum(
                row[key] for row in simulation["per_level"]
            )

    def test_failed_experiment_skipped_but_file_written(
        self, tmp_path, stub_experiment, monkeypatch, capsys
    ):
        def boom():
            raise RuntimeError("crash")

        monkeypatch.setitem(EXPERIMENTS, "fig6", boom)
        path = tmp_path / "out.json"
        assert main(["--metrics-out", str(path), "fig6", "fig5"]) == 1
        report = load_report(path)
        names = [d["experiment"]["name"] for d in report["documents"]]
        assert names == ["fig5"]

    def test_no_flag_writes_nothing(self, tmp_path, stub_experiment, capsys):
        assert main(["fig5"]) == 0
        assert "metrics for" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []
