"""The ``--metrics-out`` export path of ``repro-experiments``."""

from dataclasses import dataclass

import pytest

from repro.experiments.common import get_description
from repro.experiments.probes import (
    METRICS_PROBES,
    SERVE_PROBES,
    ProbeSpec,
    ServeProbeSpec,
    run_probe,
    run_serve_probe,
)
from repro.experiments.runner import EXPERIMENTS, METAS, main
from repro.model import buffer_model
from repro.obs import MetricsRegistry, load_report, read_telemetry
from repro.queries import UniformPointWorkload

TINY_PROBE = ProbeSpec("point", 400, 10, "hs", "uniform-point", 10)
"""A probe small enough for the unit-test budget."""

TINY_SERVE_PROBE = ServeProbeSpec(
    "point", 400, 10, "hs", "uniform-point", 10,
    rate_qps=50_000.0, n_queries=150, max_batch=32,
)
"""A serving probe small enough for the unit-test budget."""


@dataclass(frozen=True)
class _StubResult:
    value: float

    def to_text(self) -> str:
        return f"stub value {self.value}"


@pytest.fixture
def stub_experiment(monkeypatch):
    """Replace fig5 with a fast stub and a tiny probe."""
    monkeypatch.setitem(EXPERIMENTS, "fig5", lambda: _StubResult(1.5))
    monkeypatch.setitem(METRICS_PROBES, "fig5", TINY_PROBE)
    monkeypatch.setitem(SERVE_PROBES, "fig5", TINY_SERVE_PROBE)


class TestProbes:
    def test_every_experiment_has_a_probe(self):
        assert set(METRICS_PROBES) == set(EXPERIMENTS)

    def test_every_experiment_has_meta(self):
        assert set(METAS) == set(EXPERIMENTS)

    def test_run_probe_produces_instrumented_result(self):
        registry = MetricsRegistry()
        result, probe = run_probe(
            TINY_PROBE, registry, n_batches=2, batch_size=200, trace_last=3
        )
        assert result.level_stats is not None
        assert len(result.trace) == 3
        assert probe["dataset"] == "point" and probe["batch_size"] == 200
        assert "buffer.requests" in registry.to_dict()["counters"]

    def test_unknown_workload_rejected(self):
        bad = ProbeSpec("point", 400, 10, "hs", "nope", 10)
        with pytest.raises(ValueError, match="unknown probe workload"):
            run_probe(bad, MetricsRegistry())


class TestMetricsOut:
    def test_writes_schema_valid_report(self, tmp_path, stub_experiment, capsys):
        path = tmp_path / "out.json"
        assert main(["--metrics-out", str(path), "fig5"]) == 0
        out = capsys.readouterr().out
        assert "metrics for 1 experiment(s)" in out
        report = load_report(path)  # validates on load
        (doc,) = report["documents"]
        assert doc["experiment"]["name"] == "fig5"
        assert doc["experiment"]["source"] == METAS["fig5"]["source"]
        assert doc["result"] == {"value": 1.5}
        assert doc["wall_seconds"] >= 0.0

    def test_per_level_sums_match_aggregate(self, tmp_path, stub_experiment):
        path = tmp_path / "out.json"
        assert main(["--metrics-out", str(path), "fig5"]) == 0
        simulation = load_report(path)["documents"][0]["simulation"]
        for key in ("requests", "hits", "misses", "evictions"):
            assert simulation["aggregate"][key] == sum(
                row[key] for row in simulation["per_level"]
            )

    def test_failed_experiment_skipped_but_file_written(
        self, tmp_path, stub_experiment, monkeypatch, capsys
    ):
        def boom():
            raise RuntimeError("crash")

        monkeypatch.setitem(EXPERIMENTS, "fig6", boom)
        path = tmp_path / "out.json"
        assert main(["--metrics-out", str(path), "fig6", "fig5"]) == 1
        report = load_report(path)
        names = [d["experiment"]["name"] for d in report["documents"]]
        assert names == ["fig5"]

    def test_no_flag_writes_nothing(self, tmp_path, stub_experiment, capsys):
        assert main(["fig5"]) == 0
        assert "metrics for" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestServeMode:
    def test_serve_probes_cover_known_experiments(self):
        assert set(SERVE_PROBES) <= set(EXPERIMENTS)
        assert SERVE_PROBES  # at least one experiment is served

    def test_run_serve_probe_produces_report(self):
        registry = MetricsRegistry()
        report, probe, telemetry = run_serve_probe(TINY_SERVE_PROBE, registry)
        assert report.queries == 150
        assert report.shards == 1
        assert probe["dataset"] == "point"
        assert probe["shards"] == 1
        assert telemetry is None  # off by default
        metrics = registry.to_dict()
        assert metrics["counters"]["serving.queries"] == 150
        assert metrics["gauges"]["serving.p99_us"] > 0

    def test_serve_honours_shard_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_SHARDS", "2")
        report, probe, _ = run_serve_probe(TINY_SERVE_PROBE)
        assert report.shards == 2
        assert probe["shards"] == 2

    def test_serve_probe_streams_telemetry(self, tmp_path):
        stream = tmp_path / "telemetry.jsonl"
        report, probe, telemetry = run_serve_probe(
            TINY_SERVE_PROBE, telemetry_out=str(stream)
        )
        assert telemetry is not None
        assert telemetry["path"] == str(stream)
        header, ticks = read_telemetry(stream)  # validates every invariant
        assert header["model"]["hit_ratio"] == pytest.approx(
            buffer_model(
                get_description("point", 400, 10, "hs"),
                UniformPointWorkload(),
                TINY_SERVE_PROBE.buffer_size,
            ).hit_ratio
        )
        final = ticks[-1]["cumulative"]["aggregate"]
        assert final == report.buffer_aggregate

    def test_serve_probe_honours_telemetry_env(self, tmp_path, monkeypatch):
        stream = tmp_path / "env-telemetry.jsonl"
        monkeypatch.setenv("REPRO_SERVE_TELEMETRY", str(stream))
        _, _, telemetry = run_serve_probe(TINY_SERVE_PROBE)
        assert telemetry is not None and stream.exists()

    def test_serve_requires_metrics_out(self, stub_experiment, capsys):
        with pytest.raises(SystemExit):
            main(["--serve", "fig5"])
        assert "--metrics-out" in capsys.readouterr().err

    def test_serve_adds_serving_section(self, tmp_path, stub_experiment):
        path = tmp_path / "out.json"
        assert main(["--serve", "--metrics-out", str(path), "fig5"]) == 0
        (doc,) = load_report(path)["documents"]  # validates on load
        serving = doc["serving"]
        assert serving is not None
        assert serving["queries"] == 150
        assert serving["latency_us"]["count"] == 150
        assert serving["buffer"]["shards"] == 1
        agg = serving["buffer"]["aggregate"]
        for key in ("requests", "hits", "misses", "evictions"):
            assert agg[key] == sum(
                row[key] for row in serving["buffer"]["per_shard"]
            )

    def test_without_serve_flag_section_is_none(
        self, tmp_path, stub_experiment
    ):
        path = tmp_path / "out.json"
        assert main(["--metrics-out", str(path), "fig5"]) == 0
        (doc,) = load_report(path)["documents"]
        assert doc["serving"] is None


class TestTelemetryOut:
    def test_telemetry_requires_serve(self, stub_experiment, capsys):
        with pytest.raises(SystemExit):
            main(["--metrics-out", "x.json", "--telemetry-out", "t.jsonl",
                  "fig5"])
        assert "--serve" in capsys.readouterr().err

    def test_telemetry_stream_reconciles_with_document(
        self, tmp_path, stub_experiment
    ):
        metrics = tmp_path / "out.json"
        stream = tmp_path / "telemetry.jsonl"
        assert main([
            "--serve", "--metrics-out", str(metrics),
            "--telemetry-out", str(stream), "fig5",
        ]) == 0
        (doc,) = load_report(metrics)["documents"]  # validates on load,
        # including the telemetry-vs-buffer reconciliation
        telemetry = doc["serving"]["telemetry"]
        assert telemetry is not None
        assert telemetry["path"] == str(stream)
        header, ticks = read_telemetry(stream)
        assert header["config"]["dataset"] == "point"
        assert (
            ticks[-1]["cumulative"]["aggregate"]["requests"]
            == doc["serving"]["buffer"]["aggregate"]["requests"]
        )

    def test_multiple_experiments_get_distinct_streams(
        self, tmp_path, stub_experiment, monkeypatch
    ):
        monkeypatch.setitem(EXPERIMENTS, "fig6", lambda: _StubResult(2.5))
        monkeypatch.setitem(METRICS_PROBES, "fig6", TINY_PROBE)
        monkeypatch.setitem(SERVE_PROBES, "fig6", TINY_SERVE_PROBE)
        metrics = tmp_path / "out.json"
        stream = tmp_path / "telemetry.jsonl"
        assert main([
            "--serve", "--metrics-out", str(metrics),
            "--telemetry-out", str(stream), "fig5", "fig6",
        ]) == 0
        assert (tmp_path / "telemetry-fig5.jsonl").exists()
        assert (tmp_path / "telemetry-fig6.jsonl").exists()
        assert not stream.exists()
