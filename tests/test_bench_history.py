"""The bench-history CLI: append, list, and the regression gate.

Thin wrapper over ``tools/bench_history.py`` (same pattern as
``tests/test_docs_links.py``) so tier-1 enforces the gate's exit codes
and the committed ledger's integrity without waiting for CI.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.obs.history import BENCH_SCHEMA, load_history

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "bench_history", REPO_ROOT / "tools" / "bench_history.py"
)
bench_history = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("bench_history", bench_history)
_SPEC.loader.exec_module(bench_history)


def make_report(seconds: float = 0.1) -> dict:
    return {
        "schema": BENCH_SCHEMA,
        "seed": 0,
        "smoke": True,
        "records": [
            {
                "kernel": "point_stab",
                "n_rects": 1000,
                "n_points": 500,
                "seconds": seconds,
                "ops_per_s": 1.0e6 / seconds,
                "unit": "pair-tests/s",
                "dense_seconds": 1.0,
                "speedup_vs_dense": 1.0 / seconds,
            }
        ],
    }


@pytest.fixture
def workspace(tmp_path):
    report = tmp_path / "report.json"
    history = tmp_path / "history.jsonl"
    report.write_text(json.dumps(make_report()))
    return report, history


def run(argv) -> int:
    return bench_history.main([str(a) for a in argv])


class TestAppend:
    def test_append_then_list(self, workspace, capsys):
        report, history = workspace
        assert run(
            ["append", "--report", report, "--history", history,
             "--note", "unit test", "--recorded-at", "2026-01-01T00:00:00+00:00"]
        ) == 0
        (entry,) = load_history(history)
        assert entry["note"] == "unit test"
        capsys.readouterr()
        assert run(["list", "--history", history]) == 0
        assert "unit test" in capsys.readouterr().out

    def test_duplicate_append_is_a_noop(self, workspace, capsys):
        report, history = workspace
        args = ["append", "--report", report, "--history", history]
        assert run(args) == 0
        assert run(args) == 0
        assert "already recorded" in capsys.readouterr().out
        assert len(load_history(history)) == 1
        assert run(args + ["--allow-duplicate"]) == 0
        assert len(load_history(history)) == 2


class TestCheck:
    def test_no_baseline_passes(self, workspace, capsys):
        report, history = workspace
        assert run(["check", "--report", report, "--history", history]) == 0
        assert "first run passes" in capsys.readouterr().out

    def test_unchanged_report_passes(self, workspace):
        report, history = workspace
        run(["append", "--report", report, "--history", history])
        assert run(["check", "--report", report, "--history", history]) == 0

    def test_regressed_report_fails(self, workspace, capsys):
        report, history = workspace
        run(["append", "--report", report, "--history", history])
        report.write_text(json.dumps(make_report(seconds=0.5)))
        assert run(["check", "--report", report, "--history", history]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_flag_spelling_is_check_alias(self, workspace):
        report, history = workspace
        run(["append", "--report", report, "--history", history])
        report.write_text(json.dumps(make_report(seconds=0.5)))
        assert run(["--check", "--report", report, "--history", history]) == 1

    def test_tolerance_override_loosens_gate(self, workspace):
        report, history = workspace
        run(["append", "--report", report, "--history", history])
        report.write_text(json.dumps(make_report(seconds=0.5)))
        assert run(
            ["check", "--report", report, "--history", history,
             "--tolerance", "seconds=10", "--tolerance", "ops_per_s=10",
             "--tolerance", "speedup_vs_dense=10"]
        ) == 0

    def test_bad_tolerance_spelling_exits(self, workspace):
        report, history = workspace
        run(["append", "--report", report, "--history", history])
        with pytest.raises(SystemExit):
            run(["check", "--report", report, "--history", history,
                 "--tolerance", "seconds"])

    def test_invalid_report_exits(self, workspace):
        report, history = workspace
        report.write_text('{"schema": "nope"}')
        with pytest.raises(SystemExit):
            run(["check", "--report", report, "--history", history])


class TestCommittedLedger:
    def test_committed_history_is_valid(self):
        entries = load_history(REPO_ROOT / "BENCH_history.jsonl")
        assert entries, "committed ledger must not be empty"

    def test_committed_report_gates_clean(self, capsys):
        # The committed snapshot must never regress against the
        # committed ledger — CI runs this same gate.
        assert run(
            ["check", "--report", REPO_ROOT / "BENCH_repro.json",
             "--history", REPO_ROOT / "BENCH_history.jsonl"]
        ) == 0
        assert "OK" in capsys.readouterr().out

    def test_committed_history_has_full_and_smoke_baselines(self):
        # CI regenerates BENCH_repro.json at smoke sizes before gating,
        # so the ledger needs a comparable baseline for both flavours.
        entries = load_history(REPO_ROOT / "BENCH_history.jsonl")
        flavours = {entry["smoke"] for entry in entries}
        assert flavours == {True, False}
