"""Tests for the CFD-like substitute (Fig. 5 / §5.4 properties)."""

import numpy as np
import pytest

from repro.datasets import CFD_SIZE, WING_ELEMENTS, Airfoil, cfd_like
from repro.packing import load_description


@pytest.fixture(scope="module")
def data():
    return cfd_like()


class TestAirfoil:
    def test_surface_points_straddle_boundary(self):
        # Containment is evaluated through a local-frame round-trip, so
        # exact-boundary points are ambiguous at the 1e-16 level; test
        # with a small outward/inward nudge instead.
        foil = Airfoil(leading_edge=(0.3, 0.5), chord=0.25, angle=0.0, thickness=0.12)
        s = np.linspace(0.05, 0.95, 20)
        upper = foil.surface_point(s, np.ones(20, dtype=bool))
        lower = foil.surface_point(s, np.zeros(20, dtype=bool))
        mid = (upper + lower) / 2
        assert not foil.contains(upper + (upper - mid) * 1e-6).any()
        assert not foil.contains(lower + (lower - mid) * 1e-6).any()
        # The camber line is inside the body.
        assert foil.contains(mid).all()

    def test_rotated_surface_points_near_boundary(self):
        # With rotation the round-trip is inexact; points nudged just
        # outside the surface must not be contained, just inside must.
        foil = WING_ELEMENTS[0]
        s = np.linspace(0.1, 0.9, 15)
        upper = foil.surface_point(s, np.ones(15, dtype=bool))
        lower = foil.surface_point(s, np.zeros(15, dtype=bool))
        mid = (upper + lower) / 2
        outward = upper + (upper - mid) * 1e-3
        inward = upper - (upper - mid) * 1e-3
        assert not foil.contains(outward).any()
        assert foil.contains(inward).all()

    def test_outside_chord_not_contained(self):
        foil = Airfoil(leading_edge=(0.5, 0.5), chord=0.2, angle=0.0, thickness=0.12)
        pts = np.array([[0.4, 0.5], [0.8, 0.5], [0.5, 0.8]])
        assert not foil.contains(pts).any()

    def test_rotation_moves_trailing_edge_down(self):
        flat = Airfoil((0.5, 0.5), 0.2, 0.0, 0.1)
        tilted = Airfoil((0.5, 0.5), 0.2, 0.5, 0.1)
        te_flat = flat.surface_point(np.array([1.0]), np.array([True]))[0]
        te_tilted = tilted.surface_point(np.array([1.0]), np.array([True]))[0]
        assert te_tilted[1] < te_flat[1]


class TestDataSet:
    def test_default_size(self, data):
        assert CFD_SIZE == 52_510
        assert len(data) == CFD_SIZE

    def test_points_only(self, data):
        assert np.array_equal(data.lo, data.hi)

    def test_normalised(self, data):
        assert (data.lo >= 0).all() and (data.hi <= 1).all()

    def test_deterministic(self):
        assert cfd_like(300, rng=737) == cfd_like(300, rng=737)

    def test_validation(self):
        with pytest.raises(ValueError):
            cfd_like(0)

    def test_highly_skewed_density(self, data):
        """Fig. 5: dense near the wing, sparse far field — the densest
        1% of grid cells must hold a large share of all points."""
        pts = data.centers()
        cells = np.clip((pts * 50).astype(int), 0, 49)
        counts = np.bincount(cells[:, 0] * 50 + cells[:, 1], minlength=2500)
        top_1pct = np.sort(counts)[-25:].sum()
        assert top_1pct / len(pts) > 0.25

    def test_blank_regions_inside_wing(self, data):
        """The 'blank ovalish areas are parts of the wing': the dense
        near-surface band must surround empty cells (the body
        interiors), i.e. zero-count grid cells adjacent to hot ones."""
        pts = data.centers()
        cells = np.clip((pts * 100).astype(int), 0, 99)
        counts = np.bincount(cells[:, 0] * 100 + cells[:, 1], minlength=10000)
        grid = counts.reshape(100, 100)
        # The hottest region (near-surface band):
        hot = np.sort(grid.ravel())[-50:].mean()
        # Find empty cells adjacent to hot cells (interior holes).
        hot_mask = grid > hot * 0.2
        empty_mask = grid == 0
        neighbours = np.zeros_like(empty_mask)
        neighbours[1:, :] |= hot_mask[:-1, :]
        neighbours[:-1, :] |= hot_mask[1:, :]
        neighbours[:, 1:] |= hot_mask[:, :-1]
        neighbours[:, :-1] |= hot_mask[:, 1:]
        holes = (empty_mask & neighbours).sum()
        assert holes >= 3

    def test_uniform_queries_find_hot_nodes(self, data):
        """§5.4: with high variance in MBR size, a few nodes absorb
        most uniform accesses, so a modest buffer nearly eliminates
        disk traffic for uniform queries but not data-driven ones."""
        from repro.model import buffer_model
        from repro.queries import DataDrivenWorkload, UniformPointWorkload

        desc = load_description("hs", data, 100)
        uniform = buffer_model(desc, UniformPointWorkload(), 200)
        driven = buffer_model(desc, DataDrivenWorkload.from_rects(data), 200)
        assert uniform.disk_accesses < 0.3 * driven.disk_accesses
