"""Tests for the synthetic region / point generators (§5.1)."""

import numpy as np
import pytest

from repro.datasets import REGION_MAX_SIDE, synthetic_point, synthetic_region
from repro.geometry import unit_rect


class TestRegion:
    def test_count_and_dim(self):
        arr = synthetic_region(5000, rng=1)
        assert len(arr) == 5000
        assert arr.dim == 2

    def test_paper_max_side(self):
        assert REGION_MAX_SIDE == pytest.approx(0.01)

    def test_all_are_squares(self):
        arr = synthetic_region(2000, rng=2)
        ext = arr.extents()
        assert ext[:, 0] == pytest.approx(ext[:, 1])

    def test_sides_in_range(self):
        arr = synthetic_region(5000, rng=3)
        sides = arr.extents()[:, 0]
        assert (sides >= 0).all()
        assert (sides <= REGION_MAX_SIDE).all()
        assert sides.max() > 0.9 * REGION_MAX_SIDE  # actually uses the range

    def test_inside_unit_square(self):
        arr = synthetic_region(5000, rng=4)
        unit = unit_rect(2)
        assert (arr.lo >= 0).all() and (arr.hi <= 1).all()
        assert unit.contains_rect(arr.mbr())

    def test_total_area_matches_expectation(self):
        """E[total area] = n·ρ²/3 (the paper quotes ~0.25 per 10k using
        the mean side; the exact second moment gives 1/3)."""
        arr = synthetic_region(100_000, rng=5)
        expected = 100_000 * REGION_MAX_SIDE**2 / 3
        assert arr.total_area() == pytest.approx(expected, rel=0.05)

    def test_deterministic_by_seed(self):
        a = synthetic_region(100, rng=7)
        b = synthetic_region(100, rng=7)
        assert a == b
        c = synthetic_region(100, rng=8)
        assert a != c

    def test_centers_roughly_uniform(self):
        arr = synthetic_region(20_000, rng=9)
        centers = arr.centers()
        # Quadrant counts should be balanced.
        q = (centers > 0.5).astype(int)
        counts = np.bincount(q[:, 0] * 2 + q[:, 1], minlength=4)
        assert counts.min() > 0.8 * counts.max()

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_region(0)
        with pytest.raises(ValueError):
            synthetic_region(10, max_side=1.5)


class TestPoint:
    def test_degenerate_rectangles(self):
        arr = synthetic_point(1000, rng=1)
        assert np.array_equal(arr.lo, arr.hi)
        assert arr.total_area() == 0.0

    def test_uniform_coverage(self):
        arr = synthetic_point(20_000, rng=2)
        pts = arr.centers()
        hist, _, _ = np.histogram2d(pts[:, 0], pts[:, 1], bins=5)
        assert hist.min() > 0.7 * hist.max()

    def test_dim_parameter(self):
        arr = synthetic_point(100, rng=3, dim=4)
        assert arr.dim == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_point(-1)
