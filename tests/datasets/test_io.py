"""Tests for rectangle data-set I/O."""

import numpy as np
import pytest

from repro.datasets import load_rects, save_rects
from repro.datasets.io import load_rects_npz, save_rects_npz
from repro.geometry import GeometryError, RectArray
from tests.conftest import random_rects


class TestTextFormat:
    def test_roundtrip(self, rng, tmp_path):
        arr = random_rects(rng, 50)
        path = tmp_path / "rects.txt"
        save_rects(path, arr)
        loaded = load_rects(path)
        assert loaded == arr  # repr() round-trips floats exactly

    def test_roundtrip_3d(self, rng, tmp_path):
        lo = rng.random((10, 3))
        arr = RectArray(lo, lo + 0.1)
        path = tmp_path / "rects3.txt"
        save_rects(path, arr)
        assert load_rects(path) == arr

    def test_header_comment_written(self, rng, tmp_path):
        arr = random_rects(rng, 3)
        path = tmp_path / "rects.txt"
        save_rects(path, arr)
        first = path.read_text().splitlines()[0]
        assert first.startswith("#")
        assert "dim=2" in first and "n=3" in first

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "hand.txt"
        path.write_text("# comment\n\n0.1 0.2 0.3 0.4\n# more\n0.0 0.0 1.0 1.0\n")
        arr = load_rects(path)
        assert len(arr) == 2
        assert arr.lo[0].tolist() == [0.1, 0.2]

    def test_odd_coordinate_count_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0.1 0.2 0.3\n")
        with pytest.raises(GeometryError):
            load_rects(path)

    def test_inconsistent_dim_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0.1 0.2 0.3 0.4\n0.1 0.2 0.3 0.4 0.5 0.6\n")
        with pytest.raises(GeometryError):
            load_rects(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(GeometryError):
            load_rects(path)


class TestNpzFormat:
    def test_roundtrip_exact(self, rng, tmp_path):
        arr = random_rects(rng, 200)
        path = tmp_path / "rects.npz"
        save_rects_npz(path, arr)
        loaded = load_rects_npz(path)
        assert np.array_equal(loaded.lo, arr.lo)
        assert np.array_equal(loaded.hi, arr.hi)
