"""Tests for rectangle data-set I/O."""

import numpy as np
import pytest

from repro.datasets import load_rects, save_rects
from repro.datasets.io import (
    load_rects_npz,
    open_mmap,
    save_mmap,
    save_rects_npz,
)
from repro.geometry import GeometryError, RectArray
from tests.conftest import random_rects


class TestTextFormat:
    def test_roundtrip(self, rng, tmp_path):
        arr = random_rects(rng, 50)
        path = tmp_path / "rects.txt"
        save_rects(path, arr)
        loaded = load_rects(path)
        assert loaded == arr  # repr() round-trips floats exactly

    def test_roundtrip_3d(self, rng, tmp_path):
        lo = rng.random((10, 3))
        arr = RectArray(lo, lo + 0.1)
        path = tmp_path / "rects3.txt"
        save_rects(path, arr)
        assert load_rects(path) == arr

    def test_header_comment_written(self, rng, tmp_path):
        arr = random_rects(rng, 3)
        path = tmp_path / "rects.txt"
        save_rects(path, arr)
        first = path.read_text().splitlines()[0]
        assert first.startswith("#")
        assert "dim=2" in first and "n=3" in first

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "hand.txt"
        path.write_text("# comment\n\n0.1 0.2 0.3 0.4\n# more\n0.0 0.0 1.0 1.0\n")
        arr = load_rects(path)
        assert len(arr) == 2
        assert arr.lo[0].tolist() == [0.1, 0.2]

    def test_odd_coordinate_count_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0.1 0.2 0.3\n")
        with pytest.raises(GeometryError):
            load_rects(path)

    def test_inconsistent_dim_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0.1 0.2 0.3 0.4\n0.1 0.2 0.3 0.4 0.5 0.6\n")
        with pytest.raises(GeometryError):
            load_rects(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(GeometryError):
            load_rects(path)


class TestNpzFormat:
    def test_roundtrip_exact(self, rng, tmp_path):
        arr = random_rects(rng, 200)
        path = tmp_path / "rects.npz"
        save_rects_npz(path, arr)
        loaded = load_rects_npz(path)
        assert np.array_equal(loaded.lo, arr.lo)
        assert np.array_equal(loaded.hi, arr.hi)


class TestMmapFormat:
    def test_roundtrip_exact(self, rng, tmp_path):
        arr = random_rects(rng, 200)
        written = save_mmap(tmp_path / "rects", arr)
        assert written.suffix == ".npy"
        loaded = open_mmap(written)
        assert np.array_equal(loaded.lo, arr.lo)
        assert np.array_equal(loaded.hi, arr.hi)

    def test_views_are_memory_mapped(self, rng, tmp_path):
        arr = random_rects(rng, 30)
        path = save_mmap(tmp_path / "rects.npy", arr)
        loaded = open_mmap(path)
        # Zero-copy: the views are backed by the file mapping itself.
        assert isinstance(loaded.lo.base, np.memmap)
        assert isinstance(loaded.hi.base, np.memmap)

    def test_views_are_readonly(self, rng, tmp_path):
        loaded = open_mmap(save_mmap(tmp_path / "r", random_rects(rng, 5)))
        with pytest.raises(ValueError):
            loaded.lo[0, 0] = 0.0
        with pytest.raises(ValueError):
            loaded.hi[:] = 1.0

    def test_roundtrip_3d(self, rng, tmp_path):
        lo = rng.random((10, 3))
        arr = RectArray(lo, lo + 0.1)
        loaded = open_mmap(save_mmap(tmp_path / "r3", arr))
        assert loaded.dim == 3
        assert np.array_equal(loaded.lo, arr.lo)

    def test_rejects_wrong_shape(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros((3, 4)))
        with pytest.raises(GeometryError, match="rect array"):
            open_mmap(path)
        np.save(path, np.zeros((3, 4, 2)))
        with pytest.raises(GeometryError, match="rect array"):
            open_mmap(path)

    def test_rejects_wrong_dtype(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros((2, 4, 2), dtype=np.float32))
        with pytest.raises(GeometryError, match="float64"):
            open_mmap(path)

    def test_rejects_invalid_rects(self, rng, tmp_path):
        # Validation runs on open: lo > hi in the file must not
        # produce a silently-broken RectArray.
        path = tmp_path / "inverted.npy"
        np.save(path, np.stack([np.ones((3, 2)), np.zeros((3, 2))]))
        with pytest.raises(GeometryError):
            open_mmap(path)

    def test_from_readonly_requires_readonly(self, rng):
        # The zero-copy constructor refuses writable arrays: it skips
        # the defensive copy *because* the caller froze the buffers.
        lo = rng.random((4, 2))
        hi = lo + 0.1
        with pytest.raises(GeometryError, match="read-only"):
            RectArray.from_readonly(lo, hi)
        lo.setflags(write=False)
        hi.setflags(write=False)
        arr = RectArray.from_readonly(lo, hi)
        assert arr.lo is lo and arr.hi is hi
