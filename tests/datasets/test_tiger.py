"""Tests for the TIGER-like substitute.

These assertions pin the properties DESIGN.md §4 promises — the ones
the paper's experiments actually depend on.
"""

import numpy as np
import pytest

from repro.datasets import TIGER_SIZE, tiger_like
from repro.packing import load_description


@pytest.fixture(scope="module")
def data():
    return tiger_like()


class TestBasicShape:
    def test_default_size_matches_long_beach(self, data):
        assert TIGER_SIZE == 53_145
        assert len(data) == TIGER_SIZE

    def test_normalised_to_unit_square(self, data):
        assert (data.lo >= 0).all() and (data.hi <= 1).all()
        mbr = data.mbr()
        assert mbr.lo == pytest.approx((0.0, 0.0), abs=1e-9)
        assert mbr.hi == pytest.approx((1.0, 1.0), abs=1e-9)

    def test_segments_are_small(self, data):
        ext = data.extents()
        assert ext.max() < 0.03  # block-level segments only

    def test_paper_tree_structure_at_capacity_100(self, data):
        desc = load_description("hs", data, 100)
        assert desc.node_counts == (1, 6, 532)

    def test_deterministic(self):
        a = tiger_like(500, rng=1998)
        b = tiger_like(500, rng=1998)
        assert a == b

    def test_custom_size(self):
        assert len(tiger_like(1234, rng=0)) == 1234

    def test_validation(self):
        with pytest.raises(ValueError):
            tiger_like(0)


class TestSkewProperties:
    def test_large_empty_regions(self, data):
        """§5.4: 'large portions of empty space' — a sizeable share of
        uniform point queries must land outside every leaf-level MBR
        region; we check raw emptiness on a coarse grid."""
        centers = data.centers()
        cells = np.clip((centers * 20).astype(int), 0, 19)
        occupancy = np.zeros((20, 20), dtype=bool)
        occupancy[cells[:, 0], cells[:, 1]] = True
        empty_fraction = 1.0 - occupancy.mean()
        assert empty_fraction > 0.15

    def test_clustered_not_uniform(self, data):
        """Per-cell counts should be far more dispersed than a uniform
        scatter (Poisson) would produce."""
        centers = data.centers()
        cells = np.clip((centers * 20).astype(int), 0, 19)
        counts = np.bincount(cells[:, 0] * 20 + cells[:, 1], minlength=400)
        dispersion = counts.var() / counts.mean()
        assert dispersion > 5.0  # Poisson would give ~1

    def test_uniform_queries_cheaper_than_data_driven(self, data):
        """The Fig. 7 premise: uniform point queries often fall in
        empty space and cost less than data-driven queries."""
        from repro.model import expected_node_accesses
        from repro.queries import DataDrivenWorkload, UniformPointWorkload

        desc = load_description("hs", data, 100)
        uniform = expected_node_accesses(desc, UniformPointWorkload())
        driven = expected_node_accesses(
            desc, DataDrivenWorkload.from_rects(data)
        )
        assert driven > uniform

    def test_node_area_variance_creates_hot_nodes(self, data):
        """§5.4 explains buffer benefit via variance in MBR size."""
        desc = load_description("hs", data, 100)
        leaf_areas = desc.levels[-1].areas()
        assert leaf_areas.max() > 5 * np.median(leaf_areas)
