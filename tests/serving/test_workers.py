"""Process-per-shard workers: bit-exactness, lifecycle, telemetry.

The contract under test is the tentpole's exactness claim: routing a
micro-batch's page ids to K fork workers produces *identical* counters
to the in-process :class:`ShardedBufferPool` for any worker count —
per shard, not just in aggregate — because both sides split capacity
and pins with the same planner and each shard sees the same page
subsequence in the same order.
"""

from __future__ import annotations

import json
import os
import signal
import time

import numpy as np
import pytest

from repro.buffer import POLICIES, ShardedBufferPool
from repro.obs.telemetry import TelemetrySink, read_telemetry, validate_telemetry
from repro.packing import pack_description
from repro.queries import UniformPointWorkload
from repro.serving import ProcessShardedBufferPool, QueryService, ServiceError
from repro.simulation import simulate
from repro.simulation.shard import fork_available
from tests.conftest import random_rects

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process workers need fork"
)


@pytest.fixture(scope="module")
def desc():
    rng = np.random.default_rng(42)
    return pack_description(random_rects(rng, 600), 10, "hs")


def _stream(seed: int, n: int, universe: int = 400) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, universe, n, dtype=np.int64)


class TestEquivalenceMatrix:
    """workers x policy x pinning: dict-equal per shard and aggregate."""

    @pytest.mark.parametrize("workers", [1, 2, 8])
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("pinned", [(), (0, 7, 13, 201)])
    def test_matches_in_process_pool(self, workers, policy, pinned):
        capacity = 48
        inproc = ShardedBufferPool(
            capacity, workers, policy=policy, pinned=pinned
        )
        pages = _stream(11, 4000)
        with ProcessShardedBufferPool(
            capacity, workers, policy=policy, pinned=pinned
        ) as procs:
            assert procs.shard_capacities() == inproc.shard_capacities()
            # Chunked admission: exactness must hold at every batch
            # boundary, not only at the end of the stream.
            for lo in range(0, len(pages), 700):
                chunk = pages[lo : lo + 700]
                assert procs.request_batch(chunk) == inproc.request_batch(
                    chunk
                )
                assert [s.as_dict() for s in procs.shard_stats()] == [
                    s.as_dict() for s in inproc.shard_stats()
                ]
            assert (
                procs.aggregate_stats().as_dict()
                == inproc.aggregate_stats().as_dict()
            )
            assert len(procs) == len(inproc)
            assert procs.is_full() == inproc.is_full()

    def test_single_requests_and_membership(self):
        inproc = ShardedBufferPool(16, 3, policy="lru")
        with ProcessShardedBufferPool(16, 3, policy="lru") as procs:
            for page in _stream(5, 300, universe=60):
                assert procs.request(int(page)) == inproc.request(int(page))
            for page in range(60):
                assert (page in procs) == (page in inproc)

    def test_reset_stats_resets_every_shard(self):
        with ProcessShardedBufferPool(16, 4) as procs:
            procs.request_batch(_stream(3, 500))
            procs.reset_stats()
            assert procs.aggregate_stats().as_dict() == {
                "requests": 0,
                "hits": 0,
                "misses": 0,
                "evictions": 0,
            }
            # State (not just counters) survives the reset, as in-process.
            occupancy = len(procs)
            procs.request_batch(_stream(3, 500))
            assert len(procs) >= occupancy


class TestServiceExactness:
    """K=1 process serving == the batch simulator, bit for bit."""

    def test_k1_bit_exact_vs_simulate(self, desc):
        workload = UniformPointWorkload()
        n_batches, batch_size = 3, 400
        result = simulate(
            desc, workload, 20, pinned_levels=1,
            n_batches=n_batches, batch_size=batch_size, rng=7,
        )
        total = result.warmup_queries + n_batches * batch_size
        points = workload.sample_points(total, np.random.default_rng(7))

        service = QueryService(
            desc, workload, 20, shards=1, pinned_levels=1,
            worker_processes=True,
        )
        try:
            assert service.worker_processes
            service.process(points[: result.warmup_queries])
            service.pool.reset_stats()
            for b in range(n_batches):
                lo = result.warmup_queries + b * batch_size
                service.process(points[lo : lo + batch_size])
                assert (
                    service.aggregate_stats().as_dict()
                    == result.batch_stats[b].as_dict()
                )
                service.pool.reset_stats()
        finally:
            service.close()

    @pytest.mark.parametrize("shards", [2, 4])
    def test_service_matches_in_process_service(self, desc, shards):
        workload = UniformPointWorkload()
        points = workload.sample_points(1500, np.random.default_rng(5))
        inproc = QueryService(desc, workload, 16, shards=shards)
        procs = QueryService(
            desc, workload, 16, shards=shards, worker_processes=True
        )
        try:
            inproc.process(points)
            procs.process(points)
            assert [s.as_dict() for s in procs.pool.shard_stats()] == [
                s.as_dict() for s in inproc.pool.shard_stats()
            ]
            assert (
                procs.aggregate_stats().as_dict()
                == inproc.aggregate_stats().as_dict()
            )
        finally:
            procs.close()


class TestLifecycle:
    def test_close_reaps_workers(self):
        pool = ProcessShardedBufferPool(16, 3)
        procs = list(pool._procs)
        assert all(p.is_alive() for p in procs)
        pool.close()
        assert all(not p.is_alive() for p in procs)
        pool.close()  # idempotent

    def test_closed_pool_refuses_requests(self):
        pool = ProcessShardedBufferPool(16, 2)
        pool.close()
        with pytest.raises(ServiceError, match="closed"):
            pool.request_batch(np.arange(5, dtype=np.int64))

    def test_worker_crash_raises_not_hangs(self):
        with ProcessShardedBufferPool(16, 2, timeout_s=30.0) as pool:
            pool.request_batch(_stream(1, 100))
            os.kill(pool._procs[1].pid, signal.SIGKILL)
            # The dead worker must surface as ServiceError well before
            # the timeout, and poison later operations too.
            start = time.monotonic()
            # Either detection path may win the race: liveness ("died
            # with exit code") or pipe EOF ("closed its pipe") — both
            # name the worker.
            with pytest.raises(ServiceError, match="shard worker 1"):
                for _ in range(50):
                    pool.request_batch(_stream(2, 100))
            assert time.monotonic() - start < 25.0
            with pytest.raises(ServiceError):
                pool.shard_stats()

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ProcessShardedBufferPool(2, 4)  # capacity < shards
        with pytest.raises(ValueError):
            ProcessShardedBufferPool(16, 2, policy="nope")


class TestTelemetryReconciliation:
    """The sink's cumulative section must equal the pool's counters
    even when every sample crosses the process boundary."""

    def test_cumulative_equals_aggregate(self, desc, tmp_path):
        workload = UniformPointWorkload()
        service = QueryService(
            desc, workload, 16, shards=2, worker_processes=True
        )
        path = tmp_path / "telemetry.jsonl"
        try:
            with open(path, "w") as fh:
                sink = TelemetrySink(service, writer=fh)
                rng = np.random.default_rng(2)
                for _ in range(3):
                    service.process(workload.sample_points(200, rng))
                    tick = sink.tick()
                sink.close()
            assert (
                tick["cumulative"]["aggregate"]
                == service.aggregate_stats().as_dict()
            )
            per = [
                {"shard_id": i, **s.as_dict()}
                for i, s in enumerate(service.pool.shard_stats())
            ]
            assert tick["cumulative"]["shards"] == per
            header, ticks = read_telemetry(str(path))
            validate_telemetry(header, ticks)  # raises on drift
        finally:
            service.close()
