"""Load generator: seeded determinism, Zipf keys, end-to-end reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.packing import pack_description
from repro.queries import UniformPointWorkload
from repro.serving import LoadGenerator, LoadReport, QueryService, zipfian_weights
from tests.conftest import random_rects


@pytest.fixture(scope="module")
def desc():
    rng = np.random.default_rng(21)
    return pack_description(random_rects(rng, 400), 10, "hs")


def make_service(desc, **kwargs) -> QueryService:
    return QueryService(desc, UniformPointWorkload(), 12, **kwargs)


class TestZipfianWeights:
    def test_sums_to_one(self):
        assert zipfian_weights(100).sum() == pytest.approx(1.0)

    def test_rank_one_is_hottest(self):
        weights = zipfian_weights(50, s=1.2)
        assert np.all(np.diff(weights) < 0)

    def test_zero_exponent_is_uniform(self):
        weights = zipfian_weights(10, s=0.0)
        assert np.allclose(weights, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipfian_weights(0)
        with pytest.raises(ValueError):
            zipfian_weights(10, s=-0.5)


class TestValidation:
    def test_rate_must_be_positive(self, desc):
        with pytest.raises(ValueError):
            LoadGenerator(make_service(desc), rate_qps=0, n_queries=10)

    def test_needs_queries(self, desc):
        with pytest.raises(ValueError):
            LoadGenerator(make_service(desc), rate_qps=100, n_queries=0)

    def test_unknown_arrival_process(self, desc):
        with pytest.raises(ValueError, match="arrival"):
            LoadGenerator(
                make_service(desc), rate_qps=100, n_queries=10,
                arrivals="bursty",
            )

    def test_refuses_stopped_service(self, desc):
        generator = LoadGenerator(
            make_service(desc), rate_qps=1000, n_queries=10
        )
        with pytest.raises(RuntimeError):
            generator.run()


class TestDeterminism:
    def test_schedule_reproducible(self, desc):
        service = make_service(desc)
        a = LoadGenerator(service, rate_qps=500, n_queries=100, seed=3)
        b = LoadGenerator(service, rate_qps=500, n_queries=100, seed=3)
        assert np.array_equal(a.schedule_offsets_ns(), b.schedule_offsets_ns())
        c = LoadGenerator(service, rate_qps=500, n_queries=100, seed=4)
        assert not np.array_equal(
            a.schedule_offsets_ns(), c.schedule_offsets_ns()
        )

    def test_uniform_gaps_are_constant(self, desc):
        generator = LoadGenerator(
            make_service(desc), rate_qps=1000, n_queries=50,
            arrivals="uniform",
        )
        gaps = np.diff(generator.schedule_offsets_ns())
        assert np.all(np.abs(gaps - 1e6) <= 1)

    def test_poisson_mean_rate(self, desc):
        generator = LoadGenerator(
            make_service(desc), rate_qps=1000, n_queries=5000, seed=0
        )
        offsets = generator.schedule_offsets_ns()
        mean_gap_s = float(np.diff(offsets).mean()) / 1e9
        assert mean_gap_s == pytest.approx(1e-3, rel=0.1)

    def test_query_points_reproducible(self, desc):
        service = make_service(desc)
        a = LoadGenerator(service, rate_qps=500, n_queries=64, seed=5)
        b = LoadGenerator(service, rate_qps=500, n_queries=64, seed=5)
        assert np.array_equal(a.query_points(), b.query_points())

    def test_zipf_draws_come_from_key_points(self, desc):
        keys = np.random.default_rng(1).random((32, 2))
        generator = LoadGenerator(
            make_service(desc), rate_qps=500, n_queries=200, seed=5,
            key_points=keys,
        )
        points = generator.query_points()
        assert points.shape == (200, 2)
        keyset = {tuple(row) for row in keys}
        assert all(tuple(row) in keyset for row in points)

    def test_zipf_skews_toward_hot_keys(self, desc):
        keys = np.random.default_rng(2).random((100, 2))
        generator = LoadGenerator(
            make_service(desc), rate_qps=500, n_queries=2000, seed=6,
            key_points=keys, zipf_s=1.5,
        )
        points = generator.query_points()
        hottest = np.count_nonzero((points == keys[0]).all(axis=1))
        coldest = np.count_nonzero((points == keys[-1]).all(axis=1))
        assert hottest > coldest


class TestRun:
    def test_end_to_end_report(self, desc):
        service = make_service(desc, max_batch=64, max_wait_us=200.0)
        generator = LoadGenerator(
            service, rate_qps=20_000, n_queries=400, seed=0
        )
        with service:
            report = generator.run()
        assert isinstance(report, LoadReport)
        assert report.queries == 400
        assert report.offered_rate_qps == 20_000
        assert report.throughput_qps > 0
        assert report.batches >= 1
        assert report.shards == 1
        assert report.latency_summary_us["count"] == 400
        hist = report.latency_histogram_us
        assert sum(hist["counts"]) == 400
        assert len(hist["bounds_us"]) == len(hist["counts"]) + 1
        agg = report.buffer_aggregate
        assert agg["hits"] + agg["misses"] == agg["requests"]
        for field in agg:
            assert agg[field] == sum(
                s[field] for s in report.buffer_per_shard
            )

    def test_per_shard_rows_carry_identity_and_capacity(self, desc):
        service = make_service(desc, shards=3)
        generator = LoadGenerator(
            service, rate_qps=50_000, n_queries=300, seed=4
        )
        with service:
            report = generator.run()
        assert report.buffer_capacity == service.pool.capacity
        assert [row["shard_id"] for row in report.buffer_per_shard] == [
            0, 1, 2,
        ]
        capacities = list(service.pool.shard_capacities())
        assert [
            row["capacity"] for row in report.buffer_per_shard
        ] == capacities
        assert sum(capacities) == report.buffer_capacity

    def test_run_resets_measurement_window(self, desc):
        service = make_service(desc, max_batch=32)
        warm = UniformPointWorkload().sample_points(
            300, np.random.default_rng(0)
        )
        service.process(warm)  # warm-up traffic, pre-start
        generator = LoadGenerator(
            service, rate_qps=50_000, n_queries=100, seed=1
        )
        with service:
            report = generator.run()
        # the warm-up's 300 queries are not in the measured window
        assert report.queries == 100
        assert report.latency_summary_us["count"] == 100
