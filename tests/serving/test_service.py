"""QueryService: validation, K=1 exactness vs simulate(), async admission."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.packing import pack_description
from repro.queries import (
    MixedWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)
from repro.serving import QueryService
from repro.simulation import simulate
from tests.conftest import random_rects


@pytest.fixture(scope="module")
def desc():
    rng = np.random.default_rng(42)
    return pack_description(random_rects(rng, 600), 10, "hs")


class TestValidation:
    def test_mixed_workload_refused(self, desc):
        mixed = MixedWorkload(
            [
                (0.5, UniformPointWorkload()),
                (0.5, UniformRegionWorkload((0.1, 0.1))),
            ]
        )
        with pytest.raises(ValueError, match="MixedWorkload"):
            QueryService(desc, mixed, 10)

    def test_negative_max_batch_rejected(self, desc):
        with pytest.raises(ValueError):
            QueryService(desc, UniformPointWorkload(), 10, max_batch=-1)

    def test_negative_deadline_rejected(self, desc):
        with pytest.raises(ValueError):
            QueryService(desc, UniformPointWorkload(), 10, max_wait_us=-1.0)

    def test_pinned_levels_range(self, desc):
        with pytest.raises(ValueError):
            QueryService(
                desc, UniformPointWorkload(), 10,
                pinned_levels=desc.height + 1,
            )

    def test_points_shape_checked(self, desc):
        service = QueryService(desc, UniformPointWorkload(), 10)
        with pytest.raises(ValueError):
            service.process(np.zeros(4))

    def test_arrival_length_checked(self, desc):
        service = QueryService(desc, UniformPointWorkload(), 10)
        with pytest.raises(ValueError):
            service.process(
                np.zeros((4, 2)), arrivals_ns=np.zeros(3, dtype=np.int64)
            )


class TestKOneExactness:
    """The correctness anchor: K=1 serving == the batch simulator."""

    @pytest.mark.parametrize(
        "workload,pinned_levels",
        [
            (UniformPointWorkload(), 0),
            (UniformPointWorkload(), 1),
            (UniformRegionWorkload((0.05, 0.05)), 0),
        ],
    )
    @pytest.mark.parametrize("max_batch", [0, 4096])
    def test_bit_exact_vs_simulate(
        self, desc, workload, pinned_levels, max_batch
    ):
        n_batches, batch_size = 3, 400
        result = simulate(
            desc, workload, 20, pinned_levels=pinned_levels,
            n_batches=n_batches, batch_size=batch_size, rng=7,
        )
        # Chunk-independence: one draw reproduces the engine's chunked
        # sampling stream exactly.
        total = result.warmup_queries + n_batches * batch_size
        points = workload.sample_points(total, np.random.default_rng(7))

        service = QueryService(
            desc, workload, 20, pinned_levels=pinned_levels,
            max_batch=max_batch,
        )
        served = service.process(points[: result.warmup_queries])
        assert served == result.warmup_queries
        service.pool.reset_stats()
        for b in range(n_batches):
            lo = result.warmup_queries + b * batch_size
            service.process(points[lo : lo + batch_size])
            assert (
                service.aggregate_stats().as_dict()
                == result.batch_stats[b].as_dict()
            )
            service.pool.reset_stats()

    def test_batched_equals_unbatched(self, desc):
        workload = UniformPointWorkload()
        points = workload.sample_points(3000, np.random.default_rng(3))
        batched = QueryService(desc, workload, 15, max_batch=256)
        naive = QueryService(desc, workload, 15, max_batch=0)
        batched.process(points)
        naive.process(points)
        assert (
            batched.aggregate_stats().as_dict()
            == naive.aggregate_stats().as_dict()
        )
        assert naive.batches_served == 3000
        assert batched.batches_served == int(np.ceil(3000 / 256))


class TestSharding:
    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_shard_sums_reconcile(self, desc, shards):
        workload = UniformPointWorkload()
        points = workload.sample_points(2000, np.random.default_rng(5))
        service = QueryService(desc, workload, 16, shards=shards)
        service.process(points)
        agg = service.aggregate_stats().as_dict()
        per = [s.as_dict() for s in service.pool.shard_stats()]
        assert len(per) == shards
        for field in agg:
            assert agg[field] == sum(p[field] for p in per)
        assert agg["hits"] + agg["misses"] == agg["requests"]


class TestLatency:
    def test_latency_recorded_per_query(self, desc):
        workload = UniformPointWorkload()
        points = workload.sample_points(500, np.random.default_rng(9))
        service = QueryService(desc, workload, 10, max_batch=128)
        arrivals = np.full(500, time.perf_counter_ns(), dtype=np.int64)
        service.process(points, arrivals_ns=arrivals)
        summary = service.latency.summary_us()
        assert summary["count"] == 500
        assert 0 < summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p99"] <= summary["max"]

    def test_no_arrivals_no_latency(self, desc):
        workload = UniformPointWorkload()
        service = QueryService(desc, workload, 10)
        service.process(workload.sample_points(50, np.random.default_rng(1)))
        assert service.latency.count == 0


class TestAsyncAdmission:
    def test_submit_requires_start(self, desc):
        service = QueryService(desc, UniformPointWorkload(), 10)
        with pytest.raises(RuntimeError):
            service.submit(np.array([0.5, 0.5]))

    def test_double_start_rejected(self, desc):
        service = QueryService(desc, UniformPointWorkload(), 10)
        service.start()
        try:
            with pytest.raises(RuntimeError):
                service.start()
        finally:
            service.stop()

    def test_submit_drain_stop(self, desc):
        workload = UniformPointWorkload()
        points = workload.sample_points(200, np.random.default_rng(2))
        with QueryService(desc, workload, 10, max_batch=64) as service:
            for point in points:
                service.submit(point)
            service.drain()
            assert service.queries_served == 200
            assert service.batches_served >= 200 // 64
        assert not service.running

    def test_deadline_closes_partial_batch(self, desc):
        # One query, huge max_batch, short deadline: only the deadline
        # can close the batch.
        workload = UniformPointWorkload()
        with QueryService(
            desc, workload, 10, max_batch=4096, max_wait_us=2000.0
        ) as service:
            service.submit(np.array([0.5, 0.5]))
            deadline = time.perf_counter() + 5.0
            while (
                service.queries_served < 1
                and time.perf_counter() < deadline
            ):
                time.sleep(0.005)
            assert service.queries_served == 1

    def test_stop_flushes_queue(self, desc):
        workload = UniformPointWorkload()
        points = workload.sample_points(100, np.random.default_rng(4))
        service = QueryService(
            desc, workload, 10, max_batch=4096, max_wait_us=1e7
        )
        service.start()
        for point in points:
            service.submit(point)
        # Deadline is ~10s away and the batch is far from full — stop()
        # must flush what is queued rather than drop it.
        service.stop()
        assert service.queries_served == 100

    def test_reset_measurement_keeps_contents(self, desc):
        workload = UniformPointWorkload()
        points = workload.sample_points(500, np.random.default_rng(6))
        service = QueryService(desc, workload, 10)
        service.process(points)
        resident = len(service.pool)
        assert resident > 0
        service.reset_measurement()
        assert service.queries_served == 0
        assert service.batches_served == 0
        assert service.aggregate_stats().requests == 0
        assert service.latency.count == 0
        assert len(service.pool) == resident
