"""Unit tests for :class:`repro.geometry.RectArray`."""

import numpy as np
import pytest

from repro.geometry import GeometryError, Rect, RectArray, unit_rect


@pytest.fixture
def sample() -> RectArray:
    return RectArray.from_rects(
        [
            Rect((0.0, 0.0), (0.5, 0.5)),
            Rect((0.25, 0.25), (0.75, 1.0)),
            Rect((0.9, 0.9), (0.9, 0.9)),  # degenerate point
        ]
    )


class TestConstruction:
    def test_shapes_validated(self):
        with pytest.raises(GeometryError):
            RectArray(np.zeros((3,)), np.ones((3,)))

    def test_lo_hi_shape_mismatch(self):
        with pytest.raises(GeometryError):
            RectArray(np.zeros((3, 2)), np.ones((2, 2)))

    def test_lo_greater_than_hi_rejected(self):
        lo = np.array([[0.5, 0.5]])
        hi = np.array([[0.4, 0.6]])
        with pytest.raises(GeometryError):
            RectArray(lo, hi)

    def test_nan_rejected(self):
        lo = np.array([[np.nan, 0.0]])
        hi = np.array([[1.0, 1.0]])
        with pytest.raises(GeometryError):
            RectArray(lo, hi)

    def test_is_immutable(self, sample):
        with pytest.raises(ValueError):
            sample.lo[0, 0] = 5.0

    def test_constructor_copies_input(self):
        lo = np.zeros((2, 2))
        hi = np.ones((2, 2))
        arr = RectArray(lo, hi)
        lo[0, 0] = 0.5
        assert arr.lo[0, 0] == 0.0

    def test_from_points(self):
        pts = np.array([[0.1, 0.2], [0.3, 0.4]])
        arr = RectArray.from_points(pts)
        assert np.array_equal(arr.lo, arr.hi)
        assert arr.areas() == pytest.approx([0.0, 0.0])

    def test_from_rects_empty_raises(self):
        with pytest.raises(GeometryError):
            RectArray.from_rects([])

    def test_from_rects_mixed_dim_raises(self):
        with pytest.raises(GeometryError):
            RectArray.from_rects(
                [Rect((0, 0), (1, 1)), Rect((0, 0, 0), (1, 1, 1))]
            )

    def test_empty(self):
        arr = RectArray.empty(3)
        assert len(arr) == 0
        assert arr.dim == 3

    def test_concatenate(self, sample):
        combined = RectArray.concatenate([sample, sample])
        assert len(combined) == 6
        assert combined.rect(3) == sample.rect(0)

    def test_concatenate_empty_list_raises(self):
        with pytest.raises(GeometryError):
            RectArray.concatenate([])


class TestAccessors:
    def test_len_and_dim(self, sample):
        assert len(sample) == 3
        assert sample.dim == 2

    def test_rect_roundtrip(self, sample):
        assert sample.rect(1) == Rect((0.25, 0.25), (0.75, 1.0))

    def test_iteration(self, sample):
        rects = list(sample)
        assert len(rects) == 3
        assert all(isinstance(r, Rect) for r in rects)

    def test_getitem_slice(self, sample):
        sub = sample[1:]
        assert len(sub) == 2
        assert sub.rect(0) == sample.rect(1)

    def test_getitem_mask(self, sample):
        sub = sample[np.array([True, False, True])]
        assert len(sub) == 2

    def test_equality(self, sample):
        other = RectArray(sample.lo, sample.hi)
        assert sample == other
        assert hash(sample) == hash(other)

    def test_inequality_different_shape(self, sample):
        assert sample != sample[0:1]


class TestMeasures:
    def test_areas(self, sample):
        assert sample.areas() == pytest.approx([0.25, 0.375, 0.0])

    def test_total_area(self, sample):
        assert sample.total_area() == pytest.approx(0.625)

    def test_extents_and_margins(self, sample):
        assert sample.extents()[1] == pytest.approx([0.5, 0.75])
        assert sample.margins()[1] == pytest.approx(1.25)

    def test_total_extent(self, sample):
        assert sample.total_extent(0) == pytest.approx(0.5 + 0.5 + 0.0)
        assert sample.total_extent(1) == pytest.approx(0.5 + 0.75 + 0.0)

    def test_centers(self, sample):
        assert sample.centers()[0] == pytest.approx([0.25, 0.25])

    def test_mbr(self, sample):
        assert sample.mbr() == Rect((0.0, 0.0), (0.9, 1.0))

    def test_mbr_empty_raises(self):
        with pytest.raises(GeometryError):
            RectArray.empty(2).mbr()


class TestTransforms:
    def test_extended_matches_scalar(self, sample):
        ext = sample.extended((0.1, 0.2))
        for i, rect in enumerate(sample):
            assert ext.rect(i) == rect.extended((0.1, 0.2))

    def test_expanded_centered_matches_scalar(self, sample):
        exp = sample.expanded_centered((0.1, 0.2))
        for i, rect in enumerate(sample):
            assert exp.rect(i) == rect.expanded_centered((0.1, 0.2))

    def test_extended_rejects_negative(self, sample):
        with pytest.raises(GeometryError):
            sample.extended((-0.1, 0.0))

    def test_clipped_matches_scalar(self, sample):
        window = Rect((0.3, 0.3), (0.8, 0.8))
        clipped = sample.clipped(window)
        for i, rect in enumerate(sample):
            expected = rect.intersection(window)
            if expected is None:
                assert clipped.areas()[i] == 0.0
            else:
                assert clipped.rect(i) == expected

    def test_clipped_areas(self, sample):
        window = unit_rect(2)
        assert sample.clipped_areas(window) == pytest.approx(sample.areas())
        small = Rect((0.0, 0.0), (0.25, 0.25))
        assert sample.clipped_areas(small) == pytest.approx([0.0625, 0.0, 0.0])

    def test_translated(self, sample):
        moved = sample.translated((0.05, -0.05))
        assert moved.rect(0) == Rect((0.05, -0.05), (0.55, 0.45))

    def test_normalized_fills_unit_square(self, sample):
        norm = sample.normalized()
        assert norm.mbr() == unit_rect(2)

    def test_normalized_with_window(self, sample):
        norm = sample.normalized(Rect((0.0, 0.0), (2.0, 2.0)))
        assert norm.rect(0) == Rect((0.0, 0.0), (0.25, 0.25))

    def test_normalized_degenerate_axis(self):
        arr = RectArray.from_points(np.array([[0.5, 0.1], [0.5, 0.9]]))
        norm = arr.normalized()
        assert norm.centers()[:, 0] == pytest.approx([0.5, 0.5])


class TestPredicates:
    def test_contains_points(self, sample):
        pts = np.array([[0.3, 0.3], [0.9, 0.9], [0.99, 0.99]])
        m = sample.contains_points(pts)
        assert m.shape == (3, 3)
        assert m[0].tolist() == [True, True, False]
        assert m[1].tolist() == [False, False, True]
        assert m[2].tolist() == [False, False, False]

    def test_contains_points_matches_scalar(self, rng):
        from tests.conftest import random_rects

        arr = random_rects(rng, 40)
        pts = rng.random((25, 2))
        m = arr.contains_points(pts)
        for qi in range(25):
            for ri, rect in enumerate(arr):
                assert m[qi, ri] == rect.contains_point(tuple(pts[qi]))

    def test_count_points_inside(self, sample):
        pts = np.array([[0.3, 0.3], [0.1, 0.1], [0.9, 0.9]])
        counts = sample.count_points_inside(pts)
        assert counts.tolist() == [2, 1, 1]

    def test_count_points_inside_empty(self, sample):
        counts = sample.count_points_inside(np.empty((0, 2)))
        assert counts.tolist() == [0, 0, 0]

    def test_intersects_rect(self, sample):
        mask = sample.intersects_rect(Rect((0.6, 0.6), (1.0, 1.0)))
        assert mask.tolist() == [False, True, True]
