"""Property-based tests for :class:`repro.geometry.Rect`."""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.geometry import Rect

coords = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def rects(draw, dim: int | None = None) -> Rect:
    d = dim if dim is not None else draw(st.integers(min_value=1, max_value=4))
    lo = [draw(coords) for _ in range(d)]
    hi = [draw(st.floats(min_value=v, max_value=11.0)) for v in lo]
    return Rect(tuple(lo), tuple(hi))


@st.composite
def rect_pairs(draw) -> tuple[Rect, Rect]:
    d = draw(st.integers(min_value=1, max_value=4))
    return draw(rects(dim=d)), draw(rects(dim=d))


@given(rect_pairs())
def test_intersects_is_symmetric(pair):
    a, b = pair
    assert a.intersects(b) == b.intersects(a)


@given(rect_pairs())
def test_union_contains_both(pair):
    a, b = pair
    u = a.union(b)
    assert u.contains_rect(a)
    assert u.contains_rect(b)


@given(rect_pairs())
def test_union_is_commutative(pair):
    a, b = pair
    assert a.union(b) == b.union(a)


@given(rect_pairs())
def test_union_area_at_least_max(pair):
    a, b = pair
    assert a.union(b).area >= max(a.area, b.area) - 1e-12


@given(rect_pairs())
def test_intersection_inside_both(pair):
    a, b = pair
    inter = a.intersection(b)
    if inter is None:
        assert not a.intersects(b)
    else:
        assert a.intersects(b)
        assert a.contains_rect(inter)
        assert b.contains_rect(inter)


@given(rect_pairs())
def test_intersection_area_at_most_min(pair):
    a, b = pair
    inter = a.intersection(b)
    if inter is not None:
        assert inter.area <= min(a.area, b.area) + 1e-12


@given(rect_pairs())
def test_enlargement_non_negative(pair):
    a, b = pair
    assert a.enlargement(b) >= -1e-12


@given(rects())
def test_union_with_self_is_identity(r):
    assert r.union(r) == r
    assert r.intersection(r) == r


@given(rects())
def test_center_is_inside(r):
    assert r.contains_point(r.center)


@given(rects())
def test_area_is_product_of_extents(r):
    assert r.area == math.prod(r.extents)


@given(rects(), st.lists(st.floats(min_value=0, max_value=5), min_size=4, max_size=4))
def test_expanded_centered_grows_extents(r, amounts):
    amounts = tuple(amounts[: r.dim])
    if len(amounts) < r.dim:
        amounts = amounts + (0.0,) * (r.dim - len(amounts))
    e = r.expanded_centered(amounts)
    for before, after, q in zip(r.extents, e.extents, amounts):
        assert after >= before
        assert abs(after - (before + q)) < 1e-9


@given(rect_pairs())
def test_contains_implies_intersects(pair):
    a, b = pair
    if a.contains_rect(b):
        assert a.intersects(b)


@given(rect_pairs())
def test_containment_is_area_monotone(pair):
    a, b = pair
    if a.contains_rect(b):
        assert a.area >= b.area - 1e-12
