"""The RectArray perf satellites: hash caching and chunked containment."""

from __future__ import annotations

import numpy as np

from repro.geometry import RectArray
import repro.geometry.rectarray as rectarray_module
from tests.conftest import random_rects


class TestHashCache:
    def test_hash_is_stable(self, rng):
        rects = random_rects(rng, 10)
        assert hash(rects) == hash(rects)

    def test_equal_arrays_hash_equal(self, rng):
        rects = random_rects(rng, 10)
        clone = RectArray(rects.lo.copy(), rects.hi.copy())
        assert hash(rects) == hash(clone)

    def test_second_hash_reads_the_cache(self, rng):
        # Plant a sentinel in the cache slot: if __hash__ re-serialized
        # the coordinate arrays it would overwrite (and not return) it.
        rects = random_rects(rng, 10)
        hash(rects)
        rects._hash = 12345
        assert hash(rects) == 12345

    def test_cache_starts_empty(self, rng):
        rects = random_rects(rng, 4)
        assert rects._hash is None
        hash(rects)
        assert rects._hash is not None


class TestChunkedContainsPoints:
    def test_chunked_equals_single_block(self, rng, monkeypatch):
        rects = random_rects(rng, 37)
        points = rng.random((101, 2))
        whole = rects.contains_points(points)
        # Force many tiny chunks: the result must be byte-identical.
        monkeypatch.setattr(rectarray_module, "_DENSE_CHUNK_CELLS", 64)
        chunked = rects.contains_points(points)
        assert np.array_equal(whole, chunked)

    def test_chunk_never_below_one_point(self, rng, monkeypatch):
        # More rects than the cell budget: chunk clamps to 1 point.
        rects = random_rects(rng, 50)
        points = rng.random((7, 2))
        whole = rects.contains_points(points)
        monkeypatch.setattr(rectarray_module, "_DENSE_CHUNK_CELLS", 1)
        assert np.array_equal(whole, rects.contains_points(points))

    def test_empty_inputs(self, rng):
        rects = random_rects(rng, 5)
        assert rects.contains_points(np.empty((0, 2))).shape == (0, 5)
        empty = RectArray(np.empty((0, 2)), np.empty((0, 2)))
        assert empty.contains_points(rng.random((3, 2))).shape == (3, 0)

    def test_boundaries_closed_in_3d(self, rng):
        lo = rng.random((6, 3)) * 0.5
        rects = RectArray(lo, lo + 0.2)
        matrix = rects.contains_points(np.concatenate([rects.lo, rects.hi]))
        assert matrix[np.arange(6), np.arange(6)].all()
        assert matrix[np.arange(6) + 6, np.arange(6)].all()
