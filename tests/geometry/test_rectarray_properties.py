"""Property-based tests: RectArray bulk ops agree with scalar Rect ops."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry import Rect, RectArray, unit_rect

unit_floats = st.floats(min_value=0.0, max_value=1.0, width=64)


@st.composite
def rect_arrays(draw, max_n: int = 12, dim: int = 2) -> RectArray:
    n = draw(st.integers(min_value=1, max_value=max_n))
    lo = draw(
        arrays(np.float64, (n, dim), elements=unit_floats)
    )
    span = draw(
        arrays(np.float64, (n, dim), elements=unit_floats)
    )
    return RectArray(lo, lo + span)


@given(rect_arrays())
def test_areas_match_scalar(arr):
    for i, rect in enumerate(arr):
        assert abs(arr.areas()[i] - rect.area) < 1e-12


@given(rect_arrays())
def test_margins_match_scalar(arr):
    for i, rect in enumerate(arr):
        assert abs(arr.margins()[i] - rect.margin) < 1e-12


@given(rect_arrays())
def test_mbr_contains_all(arr):
    mbr = arr.mbr()
    for rect in arr:
        assert mbr.contains_rect(rect)


@given(rect_arrays(), st.tuples(unit_floats, unit_floats))
def test_extended_matches_scalar(arr, amounts):
    ext = arr.extended(amounts)
    for i, rect in enumerate(arr):
        assert ext.rect(i) == rect.extended(amounts)


@given(rect_arrays(), st.tuples(unit_floats, unit_floats))
def test_clipped_areas_match_scalar(arr, corner):
    window = Rect((0.0, 0.0), (max(corner[0], 1e-9), max(corner[1], 1e-9)))
    areas = arr.clipped_areas(window)
    for i, rect in enumerate(arr):
        inter = rect.intersection(window)
        expected = inter.area if inter is not None else 0.0
        assert abs(areas[i] - expected) < 1e-12


@given(rect_arrays())
def test_normalized_lands_in_unit_cube(arr):
    norm = arr.normalized()
    unit = unit_rect(arr.dim)
    for rect in norm:
        assert unit.contains_rect(rect)


@settings(max_examples=50)
@given(rect_arrays(), arrays(np.float64, (8, 2), elements=unit_floats))
def test_contains_points_matches_scalar(arr, pts):
    m = arr.contains_points(pts)
    for qi in range(pts.shape[0]):
        for ri, rect in enumerate(arr):
            assert m[qi, ri] == rect.contains_point(tuple(pts[qi]))


@settings(max_examples=50)
@given(rect_arrays(), arrays(np.float64, (8, 2), elements=unit_floats))
def test_count_points_is_column_sum(arr, pts):
    counts = arr.count_points_inside(pts)
    assert np.array_equal(counts, arr.contains_points(pts).sum(axis=0))
