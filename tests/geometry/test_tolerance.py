"""Tests for the tolerance helpers sanctioned by rule RL001."""

from __future__ import annotations

from repro.geometry import ABS_TOL, REL_TOL, isclose, near_zero


class TestIsclose:
    def test_exact_equality(self):
        assert isclose(0.3, 0.3)

    def test_accumulated_rounding_noise(self):
        # The classic case RL001 exists to prevent: 0.1 + 0.2 != 0.3.
        assert 0.1 + 0.2 != 0.3
        assert isclose(0.1 + 0.2, 0.3)

    def test_relative_tolerance_scales_with_magnitude(self):
        big = 1e12
        assert isclose(big, big * (1 + REL_TOL / 2))
        assert not isclose(big, big * (1 + REL_TOL * 10))

    def test_distinct_values_are_not_close(self):
        assert not isclose(1.0, 1.001)

    def test_tolerances_overridable(self):
        assert isclose(1.0, 1.001, rel_tol=1e-2)


class TestNearZero:
    def test_zero(self):
        assert near_zero(0.0)
        assert near_zero(-0.0)

    def test_rounding_dust(self):
        assert near_zero(ABS_TOL / 2)
        assert near_zero(-ABS_TOL / 2)

    def test_meaningful_quantities_are_not_zero(self):
        # Smallest access probabilities in the paper's setups are ~1e-7.
        assert not near_zero(1e-7)

    def test_tolerance_overridable(self):
        assert near_zero(1e-7, abs_tol=1e-6)
