"""Unit tests for :class:`repro.geometry.Rect`."""

import math

import pytest

from repro.geometry import GeometryError, Rect, mbr_of, unit_rect


class TestConstruction:
    def test_basic(self):
        r = Rect((0.0, 0.0), (1.0, 2.0))
        assert r.lo == (0.0, 0.0)
        assert r.hi == (1.0, 2.0)
        assert r.dim == 2

    def test_coerces_ints_to_floats(self):
        r = Rect((0, 0), (1, 2))
        assert r.lo == (0.0, 0.0)
        assert isinstance(r.lo[0], float)

    def test_degenerate_is_valid(self):
        r = Rect((0.5, 0.5), (0.5, 0.5))
        assert r.area == 0.0

    def test_rejects_lo_greater_than_hi(self):
        with pytest.raises(GeometryError):
            Rect((1.0, 0.0), (0.0, 1.0))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            Rect((0.0,), (1.0, 1.0))

    def test_rejects_zero_dimensions(self):
        with pytest.raises(GeometryError):
            Rect((), ())

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            Rect((math.nan, 0.0), (1.0, 1.0))

    def test_from_point(self):
        r = Rect.from_point((0.3, 0.7))
        assert r.lo == r.hi == (0.3, 0.7)

    def test_from_center(self):
        r = Rect.from_center((0.5, 0.5), (0.2, 0.4))
        assert r.lo == pytest.approx((0.4, 0.3))
        assert r.hi == pytest.approx((0.6, 0.7))

    def test_from_center_mismatch(self):
        with pytest.raises(GeometryError):
            Rect.from_center((0.5,), (0.2, 0.4))

    def test_three_dimensional(self):
        r = Rect((0, 0, 0), (1, 2, 3))
        assert r.area == 6.0
        assert r.margin == 6.0

    def test_equality_and_hash(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((0, 0), (1, 1))
        assert a == b
        assert hash(a) == hash(b)


class TestMeasures:
    def test_area(self):
        assert Rect((0, 0), (0.5, 0.25)).area == pytest.approx(0.125)

    def test_extents(self):
        assert Rect((0.1, 0.2), (0.4, 0.8)).extents == pytest.approx((0.3, 0.6))

    def test_center(self):
        assert Rect((0.0, 0.0), (1.0, 0.5)).center == pytest.approx((0.5, 0.25))

    def test_margin_is_half_perimeter_in_2d(self):
        r = Rect((0, 0), (2, 3))
        assert r.margin == 5.0


class TestPredicates:
    def test_contains_point_inside(self):
        r = Rect((0, 0), (1, 1))
        assert r.contains_point((0.5, 0.5))

    def test_contains_point_on_boundary(self):
        r = Rect((0, 0), (1, 1))
        assert r.contains_point((0.0, 1.0))

    def test_contains_point_outside(self):
        r = Rect((0, 0), (1, 1))
        assert not r.contains_point((1.5, 0.5))

    def test_contains_point_dim_mismatch(self):
        with pytest.raises(GeometryError):
            Rect((0, 0), (1, 1)).contains_point((0.5,))

    def test_contains_rect(self):
        outer = Rect((0, 0), (1, 1))
        inner = Rect((0.2, 0.2), (0.8, 0.8))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_contains_rect_itself(self):
        r = Rect((0, 0), (1, 1))
        assert r.contains_rect(r)

    def test_intersects_overlapping(self):
        a = Rect((0, 0), (0.6, 0.6))
        b = Rect((0.4, 0.4), (1, 1))
        assert a.intersects(b) and b.intersects(a)

    def test_intersects_touching_edges(self):
        a = Rect((0, 0), (0.5, 1))
        b = Rect((0.5, 0), (1, 1))
        assert a.intersects(b)

    def test_disjoint(self):
        a = Rect((0, 0), (0.4, 0.4))
        b = Rect((0.6, 0.6), (1, 1))
        assert not a.intersects(b)

    def test_disjoint_on_one_axis_only(self):
        a = Rect((0, 0), (1, 0.4))
        b = Rect((0, 0.6), (1, 1))
        assert not a.intersects(b)


class TestCombinators:
    def test_intersection(self):
        a = Rect((0, 0), (0.6, 0.6))
        b = Rect((0.4, 0.4), (1, 1))
        assert a.intersection(b) == Rect((0.4, 0.4), (0.6, 0.6))

    def test_intersection_disjoint_is_none(self):
        a = Rect((0, 0), (0.4, 0.4))
        b = Rect((0.6, 0.6), (1, 1))
        assert a.intersection(b) is None

    def test_union(self):
        a = Rect((0, 0), (0.4, 0.4))
        b = Rect((0.6, 0.6), (1, 1))
        assert a.union(b) == Rect((0, 0), (1, 1))

    def test_enlargement_zero_for_contained(self):
        outer = Rect((0, 0), (1, 1))
        inner = Rect((0.2, 0.2), (0.8, 0.8))
        assert outer.enlargement(inner) == 0.0

    def test_enlargement_positive(self):
        a = Rect((0, 0), (0.5, 0.5))
        b = Rect((0.6, 0.6), (1, 1))
        assert a.enlargement(b) == pytest.approx(0.75)

    def test_extended_grows_top_right_only(self):
        r = Rect((0.2, 0.3), (0.4, 0.5))
        e = r.extended((0.1, 0.2))
        assert e.lo == r.lo
        assert e.hi == pytest.approx((0.5, 0.7))

    def test_extended_rejects_negative(self):
        with pytest.raises(GeometryError):
            Rect((0, 0), (1, 1)).extended((-0.1, 0.0))

    def test_expanded_centered_keeps_center(self):
        r = Rect((0.2, 0.3), (0.4, 0.5))
        e = r.expanded_centered((0.1, 0.2))
        assert e.center == pytest.approx(r.center)
        assert e.extents == pytest.approx((0.3, 0.4))

    def test_query_intersection_equivalence(self):
        """Fig. 2: Q of size q intersects R iff Qtr is in extended R."""
        r = Rect((0.3, 0.3), (0.5, 0.5))
        q = (0.2, 0.1)
        for corner in [(0.25, 0.35), (0.7, 0.55), (0.71, 0.55), (0.2, 0.2)]:
            query = Rect((corner[0] - q[0], corner[1] - q[1]), corner)
            assert query.intersects(r) == r.extended(q).contains_point(corner)

    def test_center_expansion_equivalence(self):
        """Fig. 4: Q centred at c intersects R iff c is in expanded R."""
        r = Rect((0.3, 0.3), (0.5, 0.5))
        q = (0.2, 0.1)
        for c in [(0.2, 0.3), (0.61, 0.5), (0.6, 0.56), (0.0, 0.0)]:
            query = Rect.from_center(c, q)
            assert query.intersects(r) == r.expanded_centered(q).contains_point(c)

    def test_clipped_alias(self):
        a = Rect((0, 0), (0.6, 0.6))
        w = Rect((0.4, 0.4), (1, 1))
        assert a.clipped(w) == a.intersection(w)

    def test_translated(self):
        r = Rect((0.1, 0.2), (0.3, 0.4)).translated((0.5, -0.1))
        assert r.lo == pytest.approx((0.6, 0.1))
        assert r.hi == pytest.approx((0.8, 0.3))

    def test_scaled_into(self):
        unit = Rect((0.25, 0.25), (0.75, 0.75))
        window = Rect((0.0, 0.0), (2.0, 4.0))
        assert unit.scaled_into(window) == Rect((0.5, 1.0), (1.5, 3.0))

    def test_dim_mismatch_raises(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((0, 0, 0), (1, 1, 1))
        with pytest.raises(GeometryError):
            a.union(b)


class TestHelpers:
    def test_unit_rect(self):
        assert unit_rect(2) == Rect((0, 0), (1, 1))
        assert unit_rect(3).area == 1.0

    def test_unit_rect_invalid_dim(self):
        with pytest.raises(GeometryError):
            unit_rect(0)

    def test_mbr_of(self):
        rects = [
            Rect((0.1, 0.5), (0.2, 0.6)),
            Rect((0.4, 0.0), (0.5, 0.3)),
            Rect((0.0, 0.2), (0.05, 0.9)),
        ]
        assert mbr_of(rects) == Rect((0.0, 0.0), (0.5, 0.9))

    def test_mbr_of_empty_raises(self):
        with pytest.raises(GeometryError):
            mbr_of([])

    def test_mbr_of_single(self):
        r = Rect((0.1, 0.1), (0.2, 0.2))
        assert mbr_of([r]) == r
