"""The analysis latency guard: report shape, gate exit codes, ledger.

Thin wrapper over ``tools/bench_analysis.py`` (same pattern as
``tests/test_bench_history.py``).  The measurement itself — a full
whole-program scan of ``src`` — runs once per test session and is the
tier-1 enforcement of the analyzer's 10-second wall budget.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.obs.history import load_history, validate_bench_report

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "bench_analysis", REPO_ROOT / "tools" / "bench_analysis.py"
)
bench_analysis = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("bench_analysis", bench_analysis)
_SPEC.loader.exec_module(bench_analysis)


@pytest.fixture(scope="module")
def measurement():
    return bench_analysis.measure(repeat=1)


class TestMeasurement:
    def test_scan_covers_the_tree(self, measurement):
        assert measurement["n_files"] >= 55

    def test_under_the_wall_budget(self, measurement):
        assert (
            measurement["seconds"]
            < bench_analysis.DEFAULT_BUDGET_SECONDS
        )


class TestReport:
    def test_report_is_ledger_valid(self, measurement):
        report = bench_analysis.build_report(measurement, budget=10.0)
        assert validate_bench_report(report) == []
        (record,) = report["records"]
        assert record["kernel"] == bench_analysis.KERNEL
        assert record["unit"] == "files/s"

    def test_headroom_is_budget_over_seconds(self, measurement):
        report = bench_analysis.build_report(measurement, budget=10.0)
        (record,) = report["records"]
        assert record["speedup_vs_dense"] == pytest.approx(
            10.0 / record["seconds"]
        )


class TestGate:
    def test_blown_budget_exits_one(self, capsys):
        # An impossible budget must fail loudly.
        assert bench_analysis.main(["--budget", "0.000001", "--repeat", "1"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_generous_budget_exits_zero(self, capsys):
        assert bench_analysis.main(["--budget", "600", "--repeat", "1"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_append_records_a_ledger_line(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        assert (
            bench_analysis.main(
                [
                    "--budget",
                    "600",
                    "--repeat",
                    "1",
                    "--append",
                    "--note",
                    "unit test",
                    "--history",
                    str(history),
                ]
            )
            == 0
        )
        (entry,) = load_history(history)
        assert entry["note"] == "unit test"
        assert entry["records"][0]["kernel"] == bench_analysis.KERNEL


class TestCommittedLedger:
    def test_analysis_entry_is_recorded(self):
        entries = load_history(REPO_ROOT / "BENCH_history.jsonl")
        kernels = {
            record["kernel"]
            for entry in entries
            for record in entry["records"]
        }
        assert bench_analysis.KERNEL in kernels
