"""Tests for the bufferless (node-access) model and Eq. 2."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.model import (
    expected_node_accesses,
    kamel_faloutsos_decomposition,
    kamel_faloutsos_estimate,
)
from repro.packing import pack_description
from repro.queries import UniformPointWorkload, UniformRegionWorkload
from tests.conftest import random_rects
from repro.rtree import TreeDescription


@pytest.fixture
def desc(rng) -> TreeDescription:
    return pack_description(random_rects(rng, 400), 10, "hs")


class TestExpectedNodeAccesses:
    def test_point_queries_equal_total_area(self, desc):
        got = expected_node_accesses(desc, UniformPointWorkload())
        assert got == pytest.approx(desc.total_area())

    def test_region_queries_cost_more(self, desc):
        point = expected_node_accesses(desc, UniformPointWorkload())
        region = expected_node_accesses(desc, UniformRegionWorkload((0.1, 0.1)))
        assert region > point

    def test_at_least_root_probability(self, desc):
        # The root MBR covers the data, so any data-hitting query
        # touches it; EPT >= root access probability.
        w = UniformPointWorkload()
        root_prob = w.access_probabilities(desc.levels[0])[0]
        assert expected_node_accesses(desc, w) >= root_prob


class TestEq2:
    def test_closed_form_matches_sum(self, desc):
        q = (0.12, 0.05)
        estimate = kamel_faloutsos_estimate(desc, q)
        decomp = kamel_faloutsos_decomposition(desc, q)
        assert estimate == pytest.approx(decomp.total)

    def test_two_d_expansion(self, desc):
        """Eq. 2: A + qx·Ly + qy·Lx + M·qx·qy."""
        qx, qy = 0.2, 0.07
        d = kamel_faloutsos_decomposition(desc, (qx, qy))
        lx, ly = d.sum_extents
        expected = d.sum_area + qx * ly + qy * lx + d.total_nodes * qx * qy
        assert d.total == pytest.approx(expected)

    def test_point_query_case_is_total_area(self, desc):
        d = kamel_faloutsos_decomposition(desc, (0.0, 0.0))
        assert d.total == pytest.approx(desc.total_area())
        assert kamel_faloutsos_estimate(desc, (0.0, 0.0)) == pytest.approx(
            desc.total_area()
        )

    def test_three_dimensional_total(self):
        desc = TreeDescription.from_level_rects(
            [[Rect((0, 0, 0), (0.5, 0.5, 0.5))]]
        )
        q = (0.1, 0.2, 0.3)
        total = kamel_faloutsos_decomposition(desc, q).total
        assert total == pytest.approx(0.6 * 0.7 * 0.8)

    def test_extent_length_validated(self, desc):
        with pytest.raises(ValueError):
            kamel_faloutsos_decomposition(desc, (0.1,))

    def test_minimising_area_and_perimeter_lowers_cost(self, rng):
        """The design rule Eq. 2 encodes: for the same data, the packing
        with lower total area+perimeter costs less at every query size."""
        data = random_rects(rng, 1000, max_side=0.02)
        hs = pack_description(data, 10, "hs")
        nx = pack_description(data, 10, "nx")
        assert hs.total_area() < nx.total_area()
        for q in (0.0, 0.05, 0.2):
            assert kamel_faloutsos_estimate(hs, (q, q)) < kamel_faloutsos_estimate(
                nx, (q, q)
            )
