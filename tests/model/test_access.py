"""Tests for the access-probability formulas (§3.1–§3.2).

The clipped region formula is checked against a Monte Carlo estimate:
sample query corners uniformly in U' and count how often the query
intersects the rectangle.
"""

import numpy as np
import pytest

from repro.geometry import GeometryError, Rect, RectArray
from repro.model import (
    data_driven_probabilities,
    query_corner_domain,
    raw_region_probabilities,
    uniform_point_probabilities,
    uniform_region_probabilities,
)
from tests.conftest import random_rects


class TestCornerDomain:
    def test_u_prime(self):
        domain = query_corner_domain((0.25, 0.1), 2)
        assert domain == Rect((0.25, 0.1), (1.0, 1.0))

    def test_point_query_domain_is_unit_square(self):
        assert query_corner_domain((0.0, 0.0), 2) == Rect((0, 0), (1, 1))

    def test_validation(self):
        with pytest.raises(GeometryError):
            query_corner_domain((0.5,), 2)
        with pytest.raises(GeometryError):
            query_corner_domain((1.0, 0.0), 2)
        with pytest.raises(GeometryError):
            query_corner_domain((-0.1, 0.0), 2)


class TestUniformPoint:
    def test_equals_clipped_area(self, rng):
        arr = random_rects(rng, 50)
        assert uniform_point_probabilities(arr) == pytest.approx(arr.areas())

    def test_out_of_square_parts_ignored(self):
        arr = RectArray(np.array([[-0.5, 0.0]]), np.array([[0.5, 1.0]]))
        assert uniform_point_probabilities(arr)[0] == pytest.approx(0.5)


class TestUniformRegionFormula:
    def test_closed_form_matches_definition(self):
        """The C·D formula of §3.1 equals area(R' ∩ U')/area(U')."""
        r = Rect((0.3, 0.2), (0.6, 0.9))
        qx, qy = 0.25, 0.15
        a, b = r.lo
        c, d = r.hi
        C = min(1.0, c + qx) - max(a, qx)
        D = min(1.0, d + qy) - max(b, qy)
        expected = (C * D) / ((1 - qx) * (1 - qy))
        got = uniform_region_probabilities(
            RectArray.from_rects([r]), (qx, qy)
        )[0]
        assert got == pytest.approx(expected)

    @pytest.mark.parametrize("extents", [(0.0, 0.0), (0.1, 0.1), (0.4, 0.2), (0.9, 0.9)])
    def test_matches_monte_carlo(self, rng, extents):
        arr = random_rects(rng, 15)
        probs = uniform_region_probabilities(arr, extents)
        n = 40_000
        domain = query_corner_domain(extents, 2)
        lo = np.asarray(domain.lo)
        hi = np.asarray(domain.hi)
        corners = lo + rng.random((n, 2)) * (hi - lo)
        for i, rect in enumerate(arr):
            hits = 0
            for corner in corners[:4000]:
                q = Rect(
                    (corner[0] - extents[0], corner[1] - extents[1]),
                    tuple(corner),
                )
                hits += q.intersects(rect)
            estimate = hits / 4000
            assert probs[i] == pytest.approx(estimate, abs=0.03)

    def test_probabilities_never_exceed_one(self, rng):
        arr = random_rects(rng, 200, max_side=0.9)
        for extents in ((0.5, 0.5), (0.9, 0.9)):
            probs = uniform_region_probabilities(arr, extents)
            assert (probs <= 1.0 + 1e-12).all()
            assert (probs >= 0.0).all()

    def test_reduces_to_point_probabilities(self, rng):
        arr = random_rects(rng, 50)
        region = uniform_region_probabilities(arr, (0.0, 0.0))
        assert region == pytest.approx(uniform_point_probabilities(arr))


class TestRawFormula:
    def test_is_extended_area(self, rng):
        arr = random_rects(rng, 30)
        raw = raw_region_probabilities(arr, (0.1, 0.2))
        ext = arr.extents()
        assert raw == pytest.approx((ext[:, 0] + 0.1) * (ext[:, 1] + 0.2))

    def test_can_exceed_one_near_boundary(self):
        """Fig. 3b: the raw formula gives 1.21 for a 0.2-wide rect and
        a 0.9 query — the anomaly the clipped formula fixes."""
        arr = RectArray.from_rects([Rect((0.0, 0.0), (0.2, 0.2))])
        raw = raw_region_probabilities(arr, (0.9, 0.9))[0]
        assert raw == pytest.approx(1.21)
        clipped = uniform_region_probabilities(arr, (0.9, 0.9))[0]
        assert clipped <= 1.0

    def test_raw_upper_bounds_clipped_for_interior(self, rng):
        arr = random_rects(rng, 100)
        raw = raw_region_probabilities(arr, (0.1, 0.1))
        clipped = uniform_region_probabilities(arr, (0.1, 0.1))
        # Clipping removes boundary mass but rescales by area(U')<1, so
        # only the *aggregate* inequality versus raw/(area U') holds in
        # general; check each node against its own geometric bound.
        assert (clipped <= raw / (0.9 * 0.9) + 1e-12).all()


class TestDataDriven:
    def test_matches_monte_carlo(self, rng):
        data = random_rects(rng, 400, max_side=0.1)
        centers = data.centers()
        nodes = random_rects(rng, 10, max_side=0.4)
        extents = (0.15, 0.1)
        probs = data_driven_probabilities(nodes, centers, extents)
        # Monte Carlo: sample data centers, build centred queries.
        picks = rng.integers(len(centers), size=5000)
        for i, node in enumerate(nodes):
            hits = 0
            for k in picks[:2500]:
                q = Rect.from_center(centers[k], extents)
                hits += q.intersects(node)
            assert probs[i] == pytest.approx(hits / 2500, abs=0.04)

    def test_validation(self, rng):
        nodes = random_rects(rng, 5)
        with pytest.raises(GeometryError):
            data_driven_probabilities(nodes, np.zeros((3, 3)), (0.1, 0.1))
        with pytest.raises(GeometryError):
            data_driven_probabilities(nodes, np.zeros((0, 2)), (0.1, 0.1))
