"""Tests for the pinning analysis helpers."""

import pytest

from repro.model import (
    buffer_model,
    max_pinnable_levels,
    pinning_improvement,
    sweep_pinning,
)
from repro.packing import pack_description
from repro.queries import UniformPointWorkload
from tests.conftest import random_rects


@pytest.fixture
def desc(rng):
    # ~4 levels at capacity 5: 600 -> 120 -> 24 -> 5 -> 1.
    return pack_description(random_rects(rng, 600, max_side=0.03), 5, "hs")


class TestMaxPinnable:
    def test_counts_cumulative_pages(self, desc):
        assert desc.node_counts == (1, 5, 24, 120)
        assert max_pinnable_levels(desc, 1) == 1
        assert max_pinnable_levels(desc, 5) == 1
        assert max_pinnable_levels(desc, 6) == 2
        assert max_pinnable_levels(desc, 30) == 3
        assert max_pinnable_levels(desc, 150) == 4

    def test_validates_buffer(self, desc):
        with pytest.raises(ValueError):
            max_pinnable_levels(desc, 0)


class TestImprovement:
    def test_zero_for_zero_levels(self, desc):
        w = UniformPointWorkload()
        assert pinning_improvement(desc, w, 40, 0) == 0.0

    def test_fraction_between_zero_and_one(self, desc):
        w = UniformPointWorkload()
        imp = pinning_improvement(desc, w, 35, 3)
        assert 0.0 <= imp <= 1.0

    def test_matches_direct_computation(self, desc):
        w = UniformPointWorkload()
        base = buffer_model(desc, w, 35).disk_accesses
        pinned = buffer_model(desc, w, 35, pinned_levels=3).disk_accesses
        assert pinning_improvement(desc, w, 35, 3) == pytest.approx(
            (base - pinned) / base
        )

    def test_zero_when_buffer_covers_tree(self, desc):
        w = UniformPointWorkload()
        assert pinning_improvement(desc, w, desc.total_nodes, 1) == 0.0


class TestSweep:
    def test_covers_all_feasible_depths(self, desc):
        w = UniformPointWorkload()
        sweep = sweep_pinning(desc, w, 30)
        assert len(sweep.results) == max_pinnable_levels(desc, 30) + 1
        for k, result in enumerate(sweep.results):
            assert result.pinned_levels == k

    def test_best_is_minimal_cost(self, desc):
        w = UniformPointWorkload()
        sweep = sweep_pinning(desc, w, 30)
        best = sweep.best
        for result in sweep.results:
            assert best.disk_accesses <= result.disk_accesses + 1e-12

    def test_ties_prefer_fewer_pinned_levels(self, desc):
        w = UniformPointWorkload()
        # A buffer that covers the whole tree: all depths give 0.
        sweep = sweep_pinning(desc, w, desc.total_nodes)
        assert sweep.best_levels == 0
