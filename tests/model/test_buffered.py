"""Tests for the buffer model (§3.3): D(N), N*, and ED."""

import math

import numpy as np
import pytest

from repro.buffer import PinningError
from repro.model import (
    buffer_model,
    buffer_model_sweep,
    expected_distinct_nodes,
    queries_to_fill_buffer,
    steady_state_disk_accesses,
)
from repro.packing import pack_description
from repro.queries import UniformPointWorkload, UniformRegionWorkload
from tests.conftest import random_rects


class TestExpectedDistinctNodes:
    def test_zero_queries(self):
        assert expected_distinct_nodes(np.array([0.5, 0.5]), 0) == 0.0

    def test_one_query_equals_sum_of_probs(self):
        probs = np.array([0.1, 0.3, 0.0, 1.0])
        assert expected_distinct_nodes(probs, 1) == pytest.approx(probs.sum())

    def test_matches_formula(self):
        probs = np.array([0.2, 0.5])
        n = 7
        expected = (1 - 0.8**7) + (1 - 0.5**7)
        assert expected_distinct_nodes(probs, n) == pytest.approx(expected)

    def test_monotone_in_n(self, rng):
        probs = rng.random(50) * 0.3
        values = [expected_distinct_nodes(probs, n) for n in (1, 2, 5, 10, 100, 10000)]
        assert values == sorted(values)

    def test_limit_is_reachable_count(self, rng):
        probs = np.array([0.4, 0.0, 0.1, 0.0, 1.0])
        assert expected_distinct_nodes(probs, 10**9) == pytest.approx(3.0)

    def test_probability_one_node_counts_immediately(self):
        assert expected_distinct_nodes(np.array([1.0]), 1) == pytest.approx(1.0)

    def test_tiny_probabilities_are_stable(self):
        probs = np.full(1000, 1e-12)
        d = expected_distinct_nodes(probs, 10**6)
        assert d == pytest.approx(1000 * (1 - math.exp(10**6 * math.log1p(-1e-12))))
        assert 0 < d < 1

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            expected_distinct_nodes(np.array([0.5]), -1)


class TestQueriesToFillBuffer:
    def test_definition_smallest_n(self):
        probs = np.array([0.5, 0.5, 0.5, 0.5])
        n_star = queries_to_fill_buffer(probs, 3)
        assert expected_distinct_nodes(probs, n_star) >= 3
        assert expected_distinct_nodes(probs, n_star - 1) < 3

    def test_fills_first_query_when_footprint_large(self):
        probs = np.array([0.9] * 10)
        assert queries_to_fill_buffer(probs, 5) == 1

    def test_none_when_too_few_reachable_nodes(self):
        probs = np.array([0.5, 0.0, 0.0])
        assert queries_to_fill_buffer(probs, 2) is None

    def test_buffer_pages_validated(self):
        with pytest.raises(ValueError):
            queries_to_fill_buffer(np.array([0.5]), 0)

    def test_bigger_buffer_takes_longer_to_fill(self, rng):
        probs = rng.random(200) * 0.2
        fills = [queries_to_fill_buffer(probs, b) for b in (10, 50, 100, 150)]
        assert all(f is not None for f in fills)
        assert fills == sorted(fills)


class TestFillBufferEdgeCases:
    """The corners of N*: p = 1 nodes, unfillable buffers, the search cap."""

    def test_probability_one_nodes_fill_on_first_query(self):
        # Every query touches every node, so D(1) == buffer_pages exactly.
        assert queries_to_fill_buffer(np.ones(4), 4) == 1

    def test_probability_one_node_with_cold_tail(self):
        # The hot node is resident after one query; the cold tail
        # determines how long the rest of the buffer takes to fill.
        probs = np.array([1.0, 1e-3, 1e-3])
        n_star = queries_to_fill_buffer(probs, 2)
        assert n_star is not None
        assert expected_distinct_nodes(probs, n_star) >= 2
        assert expected_distinct_nodes(probs, n_star - 1) < 2

    def test_zero_queries_touch_nothing_even_at_probability_one(self):
        assert expected_distinct_nodes(np.array([1.0, 1.0]), 0) == 0.0

    def test_search_cap_returns_none(self):
        # D(N) -> 1 requires N ~ ln(2)/1e-19 ~ 6.9e18 queries, beyond
        # the 2**62 search cap: the model treats this buffer as never
        # filling rather than binary-searching astronomical N.
        assert queries_to_fill_buffer(np.array([1e-19, 1e-19]), 1) is None

    def test_just_under_the_cap_still_resolves(self):
        # Same shape but p = 1e-18: N* ~ 6.9e17 < 2**62, so the search
        # must complete and satisfy the defining inequality.
        probs = np.array([1e-18, 1e-18])
        n_star = queries_to_fill_buffer(probs, 1)
        assert n_star is not None
        assert expected_distinct_nodes(probs, n_star) >= 1.0
        assert expected_distinct_nodes(probs, n_star - 1) < 1.0

    def test_all_zero_probabilities_never_fill(self):
        assert queries_to_fill_buffer(np.zeros(8), 1) is None


class TestSteadyState:
    def test_zero_warmup_means_all_misses(self):
        probs = np.array([0.3, 0.4])
        assert steady_state_disk_accesses(probs, 0) == pytest.approx(0.7)

    def test_decreases_with_n_star(self, rng):
        probs = rng.random(100) * 0.5
        values = [
            steady_state_disk_accesses(probs, n) for n in (0, 1, 10, 100, 10**6)
        ]
        assert values == sorted(values, reverse=True)

    def test_hot_node_never_needs_disk(self):
        # A node accessed by every query is always resident.
        assert steady_state_disk_accesses(np.array([1.0]), 5) == 0.0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            steady_state_disk_accesses(np.array([0.5]), -1)


@pytest.fixture
def desc(rng):
    return pack_description(random_rects(rng, 2000, max_side=0.05), 10, "hs")


class TestBufferModel:
    def test_bounded_by_bufferless_cost(self, desc):
        w = UniformPointWorkload()
        for b in (1, 10, 50, 100):
            r = buffer_model(desc, w, b)
            assert 0.0 <= r.disk_accesses <= r.node_accesses + 1e-12

    def test_monotone_in_buffer_size(self, desc):
        w = UniformRegionWorkload((0.05, 0.05))
        costs = [buffer_model(desc, w, b).disk_accesses for b in (1, 5, 20, 80, 160)]
        assert costs == sorted(costs, reverse=True)

    def test_zero_when_buffer_holds_tree(self, desc):
        w = UniformPointWorkload()
        r = buffer_model(desc, w, desc.total_nodes)
        assert r.disk_accesses == 0.0
        assert r.n_star is None

    def test_hit_ratio_consistency(self, desc):
        w = UniformPointWorkload()
        r = buffer_model(desc, w, 50)
        assert r.hit_ratio == pytest.approx(1 - r.disk_accesses / r.node_accesses)
        assert 0.0 <= r.hit_ratio <= 1.0

    def test_result_metadata(self, desc):
        r = buffer_model(desc, UniformPointWorkload(), 30, pinned_levels=1)
        assert r.buffer_size == 30
        assert r.pinned_levels == 1
        assert r.pinned_pages == 1
        assert r.effective_buffer == 29
        assert r.total_nodes == desc.total_nodes

    def test_pinning_all_levels(self, desc):
        w = UniformPointWorkload()
        r = buffer_model(desc, w, desc.total_nodes, pinned_levels=desc.height)
        assert r.disk_accesses == 0.0
        assert r.pinned_pages == desc.total_nodes

    def test_pinning_beyond_buffer_raises(self, desc):
        leaf_count = desc.node_counts[-1]
        with pytest.raises(PinningError):
            buffer_model(
                desc, UniformPointWorkload(), leaf_count // 2,
                pinned_levels=desc.height,
            )

    def test_pinned_levels_validated(self, desc):
        with pytest.raises(ValueError):
            buffer_model(desc, UniformPointWorkload(), 10, pinned_levels=-1)
        with pytest.raises(ValueError):
            buffer_model(
                desc, UniformPointWorkload(), 10**6,
                pinned_levels=desc.height + 1,
            )

    def test_buffer_size_validated(self, desc):
        with pytest.raises(ValueError):
            buffer_model(desc, UniformPointWorkload(), 0)

    def test_effective_zero_buffer_pays_every_unpinned_access(self, desc):
        # Buffer exactly equals the pinned pages: every unpinned access
        # is a disk access.
        w = UniformPointWorkload()
        pinned_pages = desc.pages_in_top_levels(2)
        r = buffer_model(desc, w, pinned_pages, pinned_levels=2)
        probs = w.access_probabilities(desc.all_rects)
        unpinned = probs[desc.level_offsets[2] :]
        assert r.disk_accesses == pytest.approx(unpinned.sum())

    def test_sweep_matches_individual_calls(self, desc):
        w = UniformRegionWorkload((0.05, 0.05))
        sizes = (1, 5, 20, 80, desc.total_nodes)
        swept = buffer_model_sweep(desc, w, sizes)
        for b, result in zip(sizes, swept):
            single = buffer_model(desc, w, b)
            assert result.disk_accesses == single.disk_accesses
            assert result.n_star == single.n_star
            assert result.buffer_size == b

    def test_sweep_with_pinning(self, desc):
        w = UniformPointWorkload()
        pinned = desc.pages_in_top_levels(2)
        sizes = (pinned, pinned + 10, pinned + 100)
        swept = buffer_model_sweep(desc, w, sizes, pinned_levels=2)
        for b, result in zip(sizes, swept):
            single = buffer_model(desc, w, b, pinned_levels=2)
            assert result.disk_accesses == single.disk_accesses

    def test_sweep_pinning_infeasible_raises(self, desc):
        w = UniformPointWorkload()
        with pytest.raises(PinningError):
            buffer_model_sweep(desc, w, (desc.total_nodes, 1), pinned_levels=2)

    def test_sweep_validates_sizes(self, desc):
        with pytest.raises(ValueError):
            buffer_model_sweep(desc, UniformPointWorkload(), (10, 0))

    def test_pinning_never_hurts(self, desc):
        """The paper: 'pinning never hurts performance'."""
        w = UniformPointWorkload()
        for b in (50, 100, 200):
            base = buffer_model(desc, w, b).disk_accesses
            for levels in range(1, desc.height + 1):
                if desc.pages_in_top_levels(levels) > b:
                    break
                pinned = buffer_model(desc, w, b, pinned_levels=levels).disk_accesses
                assert pinned <= base + 1e-9


class TestLowerBoundHint:
    """``lower_bound`` seeds the N* bracket without changing answers."""

    def test_valid_hint_matches_unhinted(self, rng):
        probs = rng.random(200) * 0.05
        for pages in (5, 20, 80):
            n_star = queries_to_fill_buffer(probs, pages)
            for hint in (0, 1, n_star // 2, max(0, n_star - 1)):
                assert (
                    queries_to_fill_buffer(probs, pages, lower_bound=hint)
                    == n_star
                )

    def test_stale_hint_is_discarded(self, rng):
        # A hint beyond N* violates the bracket invariant; the search
        # must detect it and restart rather than return a wrong N*.
        probs = rng.random(200) * 0.05
        n_star = queries_to_fill_buffer(probs, 20)
        assert n_star is not None
        assert (
            queries_to_fill_buffer(probs, 20, lower_bound=n_star + 1000)
            == n_star
        )

    def test_negative_hint_rejected(self):
        with pytest.raises(ValueError):
            queries_to_fill_buffer(np.array([0.5]), 1, lower_bound=-1)


class TestSweepBracketReuse:
    """The sweep walks sizes in ascending order reusing the previous N*."""

    def test_unsorted_sizes_match_per_size_model(self, desc):
        w = UniformRegionWorkload((0.05, 0.05))
        sizes = (200, 10, 50, 400, 10, 25)
        swept = buffer_model_sweep(desc, w, sizes)
        for size, result in zip(sizes, swept):
            single = buffer_model(desc, w, size)
            assert result.buffer_size == size
            assert result.n_star == single.n_star
            assert result.disk_accesses == pytest.approx(single.disk_accesses)

    def test_n_star_monotone_in_buffer_size(self, desc):
        w = UniformPointWorkload()
        sizes = tuple(range(10, 200, 17))
        swept = buffer_model_sweep(desc, w, sizes)
        n_stars = [r.n_star for r in swept if r.n_star is not None]
        assert n_stars == sorted(n_stars)

    def test_never_fills_short_circuit(self, rng):
        # Once one size never fills, all larger sizes must also report
        # never-fills with zero steady-state disk accesses.
        data = random_rects(rng, 256)
        desc = pack_description(data, capacity=16, ordering="hs")
        w = UniformRegionWorkload((0.01, 0.01))
        reachable = int(
            np.count_nonzero(w.access_probabilities(desc.all_rects) > 0.0)
        )
        sizes = (reachable // 2, reachable, reachable + 5, desc.total_nodes)
        swept = buffer_model_sweep(desc, w, sizes)
        for size, result in zip(sizes, swept):
            single = buffer_model(desc, w, size)
            assert result.n_star == single.n_star
            assert result.disk_accesses == pytest.approx(single.disk_accesses)
        assert swept[-1].n_star is None
        assert swept[-1].disk_accesses == 0.0
