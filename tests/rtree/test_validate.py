"""Tests for the invariant checker itself (it must catch corruption)."""

import pytest

from repro.geometry import Rect
from repro.rtree import InvariantViolation, RTree, check_tree
from repro.rtree.node import Entry, Node
from tests.conftest import random_rects


@pytest.fixture
def tree(rng) -> RTree:
    t = RTree(max_entries=4, min_entries=2)
    for i, r in enumerate(random_rects(rng, 60)):
        t.insert(r, i)
    return t


def test_valid_tree_passes(tree):
    check_tree(tree)


def test_empty_tree_passes():
    check_tree(RTree())


def test_detects_stale_parent_mbr(tree):
    entry = tree.root.entries[0]
    entry.rect = entry.rect.expanded_centered((0.5, 0.5))
    with pytest.raises(InvariantViolation, match="stale MBR"):
        check_tree(tree)


def test_detects_overflow(tree):
    leaf = tree.nodes_by_level()[-1][0]
    for i in range(10):
        leaf.entries.append(Entry(leaf.entries[0].rect, item=1000 + i))
    with pytest.raises(InvariantViolation):
        check_tree(tree)


def test_detects_underflow(tree):
    leaf = tree.nodes_by_level()[-1][0]
    removed = leaf.entries[1:]
    del leaf.entries[1:]
    try:
        with pytest.raises(InvariantViolation):
            check_tree(tree)
    finally:
        leaf.entries.extend(removed)


def test_detects_item_count_mismatch(tree):
    tree._size += 1
    with pytest.raises(InvariantViolation, match="stored items"):
        check_tree(tree)


def test_detects_wrong_height(tree):
    tree._height += 1
    with pytest.raises(InvariantViolation, match="height"):
        check_tree(tree)


def test_detects_leaf_entry_with_child():
    t = RTree(max_entries=4)
    t.insert(Rect((0, 0), (0.1, 0.1)), "a")
    leaf = t.root
    child = Node(is_leaf=True, entries=[Entry(Rect((0, 0), (0.1, 0.1)), item="b")])
    leaf.entries[0].child = child
    leaf.entries[0].item = None
    with pytest.raises(InvariantViolation, match="child"):
        check_tree(t)


def test_detects_nonempty_claimed_empty():
    t = RTree(max_entries=4)
    t.insert(Rect((0, 0), (0.1, 0.1)), "a")
    t._size = 0
    with pytest.raises(InvariantViolation):
        check_tree(t)


def test_entry_rejects_child_and_item():
    with pytest.raises(ValueError):
        Entry(Rect((0, 0), (1, 1)), child=Node(is_leaf=True), item="x")
