"""Deletion tests: CondenseTree, reinsertion, and root shrinking."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.rtree import RTree, check_tree
from tests.conftest import random_rects


def build(rng, n, max_entries=6):
    arr = random_rects(rng, n)
    tree = RTree(max_entries=max_entries, min_entries=2)
    rects = list(arr)
    for i, r in enumerate(rects):
        tree.insert(r, i)
    return tree, rects


class TestDelete:
    def test_delete_only_entry(self):
        t = RTree(max_entries=4)
        r = Rect((0.1, 0.1), (0.2, 0.2))
        t.insert(r, "x")
        assert t.delete(r, "x")
        assert len(t) == 0
        check_tree(t)

    def test_delete_missing_returns_false(self):
        t = RTree(max_entries=4)
        t.insert(Rect((0.1, 0.1), (0.2, 0.2)), "x")
        assert not t.delete(Rect((0.3, 0.3), (0.4, 0.4)), "x")
        assert not t.delete(Rect((0.1, 0.1), (0.2, 0.2)), "y")
        assert len(t) == 1

    def test_delete_requires_exact_rect_and_item(self):
        t = RTree(max_entries=4)
        r = Rect((0.1, 0.1), (0.2, 0.2))
        t.insert(r, "x")
        t.insert(r, "y")
        assert t.delete(r, "y")
        assert t.search(r) == ["x"]

    def test_delete_half_keeps_rest_searchable(self, rng):
        tree, rects = build(rng, 200)
        for i in range(0, 200, 2):
            assert tree.delete(rects[i], i)
        check_tree(tree)
        assert len(tree) == 100
        found = sorted(tree.search(Rect((0, 0), (1, 1))))
        assert found == list(range(1, 200, 2))

    def test_delete_everything(self, rng):
        tree, rects = build(rng, 150)
        order = rng.permutation(150)
        for i in order:
            assert tree.delete(rects[i], int(i))
            check_tree(tree)
        assert len(tree) == 0
        assert tree.height == 1

    def test_root_shrinks_after_mass_delete(self, rng):
        tree, rects = build(rng, 300, max_entries=4)
        tall = tree.height
        assert tall >= 3
        for i in range(290):
            tree.delete(rects[i], i)
        check_tree(tree)
        assert tree.height < tall

    def test_interleaved_insert_delete(self, rng):
        tree = RTree(max_entries=5, min_entries=2)
        alive: dict[int, Rect] = {}
        arr = list(random_rects(rng, 400))
        for i, r in enumerate(arr):
            tree.insert(r, i)
            alive[i] = r
            if i % 3 == 2:
                victim = int(rng.choice(list(alive)))
                assert tree.delete(alive.pop(victim), victim)
        check_tree(tree)
        assert len(tree) == len(alive)
        found = sorted(tree.search(Rect((0, 0), (1, 1))))
        assert found == sorted(alive)

    def test_delete_then_queries_still_correct(self, rng):
        tree, rects = build(rng, 250)
        removed = set()
        for i in range(0, 250, 3):
            tree.delete(rects[i], i)
            removed.add(i)
        for _ in range(30):
            lo = rng.random(2) * 0.7
            q = Rect(tuple(lo), tuple(lo + 0.25))
            expected = sorted(
                i
                for i, r in enumerate(rects)
                if i not in removed and r.intersects(q)
            )
            assert sorted(tree.search(q)) == expected

    def test_delete_from_empty_tree(self):
        t = RTree()
        assert not t.delete(Rect((0, 0), (1, 1)), "x")
