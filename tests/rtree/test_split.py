"""Unit tests for the Guttman split heuristics."""

import numpy as np
import pytest

from repro.geometry import Rect, mbr_of
from repro.rtree import Entry, greene_split, linear_split, quadratic_split
from repro.rtree.split import SPLIT_FUNCTIONS


def entries_from(rects):
    return [Entry(r, item=i) for i, r in enumerate(rects)]


def two_clusters(n_per_side=4):
    """Two well-separated groups any sane split should keep apart."""
    left = [
        Rect((0.0 + i * 0.01, 0.0), (0.02 + i * 0.01, 0.05))
        for i in range(n_per_side)
    ]
    right = [
        Rect((0.9 + i * 0.01, 0.9), (0.92 + i * 0.01, 0.95))
        for i in range(n_per_side)
    ]
    return left + right


@pytest.mark.parametrize("split", [quadratic_split, linear_split, greene_split])
class TestCommonSplitBehaviour:
    def test_partition_is_complete_and_disjoint(self, split, rng):
        from tests.conftest import random_rects

        arr = random_rects(rng, 21)
        entries = entries_from(list(arr))
        a, b = split(entries, min_fill=8)
        assert sorted(a + b) == list(range(21))
        assert not set(a) & set(b)

    def test_min_fill_respected(self, split, rng):
        from tests.conftest import random_rects

        for seed in range(5):
            arr = random_rects(np.random.default_rng(seed), 11)
            entries = entries_from(list(arr))
            a, b = split(entries, min_fill=4)
            assert len(a) >= 4
            assert len(b) >= 4

    def test_separates_two_clusters(self, split):
        entries = entries_from(two_clusters())
        a, b = split(entries, min_fill=2)
        groups = {frozenset(a), frozenset(b)}
        assert groups == {frozenset(range(4)), frozenset(range(4, 8))}

    def test_split_two_entries(self, split):
        entries = entries_from(
            [Rect((0, 0), (0.1, 0.1)), Rect((0.5, 0.5), (0.6, 0.6))]
        )
        a, b = split(entries, min_fill=1)
        assert sorted(a + b) == [0, 1]
        assert len(a) == len(b) == 1

    def test_rejects_single_entry(self, split):
        with pytest.raises(ValueError):
            split(entries_from([Rect((0, 0), (1, 1))]), min_fill=1)

    def test_rejects_min_fill_too_large(self, split):
        entries = entries_from(two_clusters())
        with pytest.raises(ValueError):
            split(entries, min_fill=5)

    def test_rejects_zero_min_fill(self, split):
        entries = entries_from(two_clusters())
        with pytest.raises(ValueError):
            split(entries, min_fill=0)

    def test_identical_rects_split_evenly_enough(self, split):
        rect = Rect((0.4, 0.4), (0.6, 0.6))
        entries = entries_from([rect] * 10)
        a, b = split(entries, min_fill=4)
        assert len(a) >= 4 and len(b) >= 4


class TestQuadraticSpecifics:
    def test_seeds_are_most_wasteful_pair(self):
        # Two far-apart tiny squares and a cluster in the middle: the
        # far pair wastes the most area together and must seed groups.
        rects = [
            Rect((0.0, 0.0), (0.01, 0.01)),
            Rect((0.99, 0.99), (1.0, 1.0)),
            Rect((0.5, 0.5), (0.51, 0.51)),
            Rect((0.5, 0.52), (0.51, 0.53)),
        ]
        a, b = quadratic_split(entries_from(rects), min_fill=1)
        # 0 and 1 must end up in different groups.
        group_of = {}
        for idx in a:
            group_of[idx] = "a"
        for idx in b:
            group_of[idx] = "b"
        assert group_of[0] != group_of[1]

    def test_reduces_overlap_vs_arbitrary_split(self, rng):
        from tests.conftest import random_rects

        arr = random_rects(rng, 30, max_side=0.2)
        rects = list(arr)
        entries = entries_from(rects)
        a, b = quadratic_split(entries, min_fill=12)
        cover_a = mbr_of(rects[i] for i in a)
        cover_b = mbr_of(rects[i] for i in b)
        # Arbitrary split: first half vs second half.
        cover_1 = mbr_of(rects[:15])
        cover_2 = mbr_of(rects[15:])
        assert (
            cover_a.area + cover_b.area <= cover_1.area + cover_2.area + 1e-9
        )


class TestLinearSpecifics:
    def test_seeds_most_separated_on_best_axis(self):
        rects = [
            Rect((0.0, 0.45), (0.05, 0.55)),
            Rect((0.95, 0.45), (1.0, 0.55)),
            Rect((0.4, 0.4), (0.6, 0.6)),
            Rect((0.45, 0.45), (0.55, 0.55)),
        ]
        a, b = linear_split(entries_from(rects), min_fill=1)
        group_of = {}
        for idx in a:
            group_of[idx] = "a"
        for idx in b:
            group_of[idx] = "b"
        assert group_of[0] != group_of[1]


class TestGreeneSpecifics:
    def test_splits_at_midpoint_along_separated_axis(self):
        # Two x-separated runs of 5: Greene sorts by x-low and halves.
        rects = [
            Rect((0.05 * i, 0.4), (0.05 * i + 0.02, 0.6)) for i in range(5)
        ] + [
            Rect((0.7 + 0.05 * i, 0.4), (0.72 + 0.05 * i, 0.6))
            for i in range(5)
        ]
        a, b = greene_split(entries_from(rects), min_fill=2)
        groups = {frozenset(a), frozenset(b)}
        assert groups == {frozenset(range(5)), frozenset(range(5, 10))}

    def test_disjoint_covers_along_split_axis(self, rng):
        """Greene's halves never interleave along the chosen axis'
        lower coordinates."""
        from tests.conftest import random_rects

        arr = random_rects(rng, 20)
        rects = list(arr)
        a, b = greene_split(entries_from(rects), min_fill=8)
        # One group's members all precede the other's in some axis sort.
        for axis in range(2):
            lows_a = sorted(rects[i].lo[axis] for i in a)
            lows_b = sorted(rects[i].lo[axis] for i in b)
            if lows_a[-1] <= lows_b[0] or lows_b[-1] <= lows_a[0]:
                return
        pytest.fail("groups interleave on every axis")

    def test_builds_valid_trees(self, rng):
        from repro.rtree import RTree, check_tree
        from tests.conftest import random_rects

        tree = RTree(max_entries=8, split="greene")
        for i, r in enumerate(random_rects(rng, 300)):
            tree.insert(r, i)
        check_tree(tree)
        assert len(tree) == 300


def test_registry_contents():
    assert {"quadratic", "linear", "greene", "rstar"} <= set(SPLIT_FUNCTIONS)
    assert SPLIT_FUNCTIONS["quadratic"] is quadratic_split
    assert SPLIT_FUNCTIONS["linear"] is linear_split
    assert SPLIT_FUNCTIONS["greene"] is greene_split
