"""Unit tests for R-tree node/entry structures."""

import pytest

from repro.geometry import GeometryError, Rect
from repro.rtree import Entry, Node


class TestEntry:
    def test_leaf_entry(self):
        e = Entry(Rect((0, 0), (1, 1)), item="x")
        assert e.item == "x"
        assert e.child is None

    def test_internal_entry(self):
        child = Node(is_leaf=True)
        e = Entry(Rect((0, 0), (1, 1)), child=child)
        assert e.child is child
        assert e.item is None

    def test_child_and_item_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Entry(Rect((0, 0), (1, 1)), child=Node(is_leaf=True), item="x")


class TestNode:
    def test_len(self):
        node = Node(is_leaf=True)
        assert len(node) == 0
        node.entries.append(Entry(Rect((0, 0), (1, 1)), item=1))
        assert len(node) == 1

    def test_mbr_unions_entries(self):
        node = Node(
            is_leaf=True,
            entries=[
                Entry(Rect((0.1, 0.1), (0.3, 0.2)), item=1),
                Entry(Rect((0.5, 0.0), (0.9, 0.4)), item=2),
            ],
        )
        assert node.mbr() == Rect((0.1, 0.0), (0.9, 0.4))

    def test_mbr_of_empty_node_raises(self):
        with pytest.raises(GeometryError):
            Node(is_leaf=True).mbr()

    def test_children_of_leaf_is_empty(self):
        node = Node(is_leaf=True, entries=[Entry(Rect((0, 0), (1, 1)), item=1)])
        assert node.children() == []

    def test_children_of_internal(self):
        kids = [Node(is_leaf=True), Node(is_leaf=True)]
        node = Node(
            is_leaf=False,
            entries=[Entry(Rect((0, 0), (1, 1)), child=k) for k in kids],
        )
        assert node.children() == kids
