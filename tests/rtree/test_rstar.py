"""Tests for the R*-tree extension (split, insertion, reinsert)."""

import numpy as np
import pytest

from repro.geometry import Rect, mbr_of
from repro.rtree import RStarTree, RTree, check_tree, rstar_split
from repro.rtree.node import Entry
from repro.rtree.rstar import rstar_tree
from repro.rtree.split import SPLIT_FUNCTIONS, quadratic_split
from tests.conftest import brute_force_intersecting, random_rects


def entries_from(rects):
    return [Entry(r, item=i) for i, r in enumerate(rects)]


class TestRStarSplit:
    def test_registered(self):
        assert SPLIT_FUNCTIONS["rstar"] is rstar_split

    def test_partition_complete_and_disjoint(self, rng):
        arr = random_rects(rng, 26)
        a, b = rstar_split(entries_from(list(arr)), min_fill=10)
        assert sorted(a + b) == list(range(26))
        assert not set(a) & set(b)

    def test_min_fill_respected_at_every_distribution(self, rng):
        for n, m in ((26, 10), (11, 4), (5, 2), (4, 2)):
            arr = random_rects(np.random.default_rng(n), n)
            a, b = rstar_split(entries_from(list(arr)), min_fill=m)
            assert len(a) >= m and len(b) >= m
            assert len(a) + len(b) == n

    def test_separates_clusters(self):
        left = [Rect((0.0, i * 0.01), (0.05, i * 0.01 + 0.005)) for i in range(5)]
        right = [Rect((0.9, i * 0.01), (0.95, i * 0.01 + 0.005)) for i in range(5)]
        a, b = rstar_split(entries_from(left + right), min_fill=3)
        groups = {frozenset(a), frozenset(b)}
        assert groups == {frozenset(range(5)), frozenset(range(5, 10))}

    def test_overlap_not_worse_than_quadratic(self, rng):
        """R* optimises overlap directly; over random inputs its split
        overlap must not exceed the quadratic split's on average."""

        def overlap_of(rects, groups):
            bb1 = mbr_of(rects[i] for i in groups[0])
            bb2 = mbr_of(rects[i] for i in groups[1])
            inter = bb1.intersection(bb2)
            return inter.area if inter is not None else 0.0

        rstar_total = 0.0
        quad_total = 0.0
        for seed in range(20):
            arr = random_rects(np.random.default_rng(seed), 21, max_side=0.3)
            rects = list(arr)
            entries = entries_from(rects)
            rstar_total += overlap_of(rects, rstar_split(entries, 8))
            quad_total += overlap_of(rects, quadratic_split(entries, 8))
        assert rstar_total <= quad_total + 1e-9

    def test_usable_as_plain_rtree_split(self, rng):
        tree = RTree(max_entries=8, split="rstar")
        for i, r in enumerate(random_rects(rng, 200)):
            tree.insert(r, i)
        check_tree(tree)
        assert len(tree) == 200


class TestRStarTree:
    def test_builds_valid_tree(self, rng):
        tree = RStarTree(max_entries=10)
        for i, r in enumerate(random_rects(rng, 400)):
            tree.insert(r, i)
        check_tree(tree)
        assert len(tree) == 400

    def test_all_items_retrievable(self, rng):
        arr = random_rects(rng, 300)
        tree = rstar_tree(arr, 10)
        found = sorted(tree.search(Rect((0, 0), (1, 1))))
        assert found == list(range(300))

    def test_queries_match_brute_force(self, rng):
        arr = random_rects(rng, 350)
        rects = list(arr)
        tree = rstar_tree(arr, 12)
        for _ in range(25):
            lo = rng.random(2) * 0.7
            q = Rect(tuple(lo), tuple(lo + 0.2))
            assert sorted(tree.search(q)) == brute_force_intersecting(rects, q)

    def test_deletion_inherited(self, rng):
        arr = random_rects(rng, 200)
        rects = list(arr)
        tree = rstar_tree(arr, 8)
        for i in range(0, 200, 2):
            assert tree.delete(rects[i], i)
        check_tree(tree)
        assert sorted(tree.search(Rect((0, 0), (1, 1)))) == list(range(1, 200, 2))

    def test_forced_reinsert_occurs(self, rng):
        """With reinsertion disabled the tree must split strictly more
        often, so it ends up with at least as many nodes."""
        arr = random_rects(rng, 500, max_side=0.05)
        with_reinsert = RStarTree(max_entries=10)
        without = RStarTree(max_entries=10, reinsert_fraction=0.0)
        for i, r in enumerate(arr):
            with_reinsert.insert(r, i)
            without.insert(r, i)
        check_tree(with_reinsert)
        check_tree(without)
        assert with_reinsert.node_count() <= without.node_count()

    def test_reinsert_fraction_validated(self):
        with pytest.raises(ValueError):
            RStarTree(reinsert_fraction=0.6)
        with pytest.raises(ValueError):
            RStarTree(reinsert_fraction=-0.1)

    def test_better_structure_than_guttman(self, rng):
        """The classic R* result, via the paper's own methodology:
        lower expected node accesses than quadratic-split TAT."""
        from repro.model import expected_node_accesses
        from repro.queries import UniformPointWorkload
        from repro.rtree import TreeDescription

        arr = random_rects(rng, 1500, max_side=0.03)
        guttman = RTree(max_entries=16)
        rstar = RStarTree(max_entries=16)
        for i, r in enumerate(arr):
            guttman.insert(r, i)
            rstar.insert(r, i)
        w = UniformPointWorkload()
        cost_g = expected_node_accesses(TreeDescription.from_tree(guttman), w)
        cost_r = expected_node_accesses(TreeDescription.from_tree(rstar), w)
        assert cost_r < cost_g

    def test_point_data(self, rng):
        pts = rng.random((300, 2))
        tree = RStarTree(max_entries=10)
        for i, p in enumerate(pts):
            tree.insert(Rect.from_point(p), i)
        check_tree(tree)
        assert len(tree) == 300

    def test_loader_validation(self, rng):
        with pytest.raises(ValueError):
            rstar_tree([], 10)
        with pytest.raises(ValueError):
            rstar_tree(random_rects(rng, 5), 10, items=["a"])


class TestFacadeIntegration:
    def test_load_tree_rstar(self, rng):
        from repro.packing import load_description, load_tree

        arr = random_rects(rng, 150)
        tree = load_tree("rstar", arr, 10)
        check_tree(tree)
        desc = load_description("rstar", arr, 10)
        assert desc.total_nodes == tree.node_count()
