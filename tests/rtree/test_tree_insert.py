"""Insertion tests for the dynamic R-tree."""

import numpy as np
import pytest

from repro.geometry import GeometryError, Rect
from repro.rtree import RTree, check_tree
from tests.conftest import random_rects


class TestConstruction:
    def test_empty_tree(self):
        t = RTree(max_entries=4)
        assert len(t) == 0
        assert t.height == 1
        check_tree(t)

    def test_default_min_entries_is_40_percent(self):
        assert RTree(max_entries=10).min_entries == 4
        assert RTree(max_entries=100).min_entries == 40

    def test_min_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=10, min_entries=6)  # > max/2
        with pytest.raises(ValueError):
            RTree(max_entries=10, min_entries=0)

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError):
            RTree(split="cubic")

    def test_custom_split_callable(self):
        from repro.rtree import quadratic_split

        t = RTree(max_entries=4, split=quadratic_split)
        for i in range(20):
            t.insert(Rect((i * 0.01, 0.0), (i * 0.01 + 0.005, 0.01)), i)
        check_tree(t)

    def test_mbr_of_empty_tree_raises(self):
        with pytest.raises(GeometryError):
            RTree().mbr()


class TestInsertion:
    def test_single_insert(self):
        t = RTree(max_entries=4)
        r = Rect((0.1, 0.1), (0.2, 0.2))
        t.insert(r, "a")
        assert len(t) == 1
        assert t.mbr() == r
        check_tree(t)

    def test_insert_until_root_split(self):
        t = RTree(max_entries=4, min_entries=2)
        for i in range(5):
            t.insert(Rect((i * 0.1, 0.0), (i * 0.1 + 0.05, 0.05)), i)
        assert t.height == 2
        assert len(t) == 5
        check_tree(t)

    def test_insert_many_random(self, rng):
        t = RTree(max_entries=8, min_entries=3)
        arr = random_rects(rng, 500)
        for i, r in enumerate(arr):
            t.insert(r, i)
        assert len(t) == 500
        assert t.height >= 3
        check_tree(t)

    def test_duplicate_rects_allowed(self):
        t = RTree(max_entries=4)
        r = Rect((0.4, 0.4), (0.6, 0.6))
        for i in range(20):
            t.insert(r, i)
        assert len(t) == 20
        check_tree(t)
        assert sorted(t.search(r)) == list(range(20))

    def test_all_items_retrievable(self, rng):
        t = RTree(max_entries=6)
        arr = random_rects(rng, 200)
        for i, r in enumerate(arr):
            t.insert(r, i)
        stored = dict((item, rect) for rect, item in t.items())
        assert len(stored) == 200
        for i, r in enumerate(arr):
            assert stored[i] == r

    def test_mbr_covers_all_inserted(self, rng):
        t = RTree(max_entries=5)
        arr = random_rects(rng, 100)
        for i, r in enumerate(arr):
            t.insert(r, i)
        mbr = t.mbr()
        for r in arr:
            assert mbr.contains_rect(r)

    def test_linear_split_tree_valid(self, rng):
        t = RTree(max_entries=8, split="linear")
        arr = random_rects(rng, 300)
        for i, r in enumerate(arr):
            t.insert(r, i)
        check_tree(t)
        assert len(t) == 300

    def test_point_data(self, rng):
        t = RTree(max_entries=10)
        pts = rng.random((150, 2))
        for i, p in enumerate(pts):
            t.insert(Rect.from_point(p), i)
        check_tree(t)
        assert len(t) == 150

    def test_higher_dimensions(self, rng):
        t = RTree(max_entries=6)
        for i in range(100):
            lo = rng.random(3) * 0.9
            t.insert(Rect(tuple(lo), tuple(lo + 0.05)), i)
        check_tree(t)
        result = t.search(Rect((0, 0, 0), (1, 1, 1)))
        assert sorted(result) == list(range(100))


class TestStructure:
    def test_nodes_by_level_shape(self, rng):
        t = RTree(max_entries=4, min_entries=2)
        arr = random_rects(rng, 64)
        for i, r in enumerate(arr):
            t.insert(r, i)
        levels = t.nodes_by_level()
        assert len(levels) == t.height
        assert len(levels[0]) == 1
        assert all(n.is_leaf for n in levels[-1])
        assert all(not n.is_leaf for lvl in levels[:-1] for n in lvl)
        assert t.node_count() == sum(len(lvl) for lvl in levels)

    def test_level_sizes_grow_downward(self, rng):
        t = RTree(max_entries=4, min_entries=2)
        arr = random_rects(rng, 200)
        for i, r in enumerate(arr):
            t.insert(r, i)
        sizes = [len(lvl) for lvl in t.nodes_by_level()]
        assert sizes == sorted(sizes)
