"""Property-based tests: random operation sequences keep the R-tree
structurally valid and semantically equal to a brute-force set."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.geometry import Rect
from repro.rtree import RStarTree, RTree, check_tree

coords = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def small_rects(draw) -> Rect:
    x = draw(coords)
    y = draw(coords)
    w = draw(st.floats(min_value=0.0, max_value=0.2))
    h = draw(st.floats(min_value=0.0, max_value=0.2))
    return Rect((x, y), (x + w, y + h))


operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), small_rects()),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=200)),
        st.tuples(st.just("query"), small_rects()),
    ),
    min_size=1,
    max_size=120,
)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=operations,
    max_entries=st.integers(min_value=3, max_value=9),
    split=st.sampled_from(["quadratic", "linear"]),
)
def test_random_operation_sequences(ops, max_entries, split):
    tree = RTree(max_entries=max_entries, min_entries=1, split=split)
    reference: dict[int, Rect] = {}
    next_id = 0

    for op, arg in ops:
        if op == "insert":
            tree.insert(arg, next_id)
            reference[next_id] = arg
            next_id += 1
        elif op == "delete":
            if reference:
                victim = sorted(reference)[arg % len(reference)]
                assert tree.delete(reference.pop(victim), victim)
        else:  # query
            expected = sorted(
                i for i, r in reference.items() if r.intersects(arg)
            )
            assert sorted(tree.search(arg)) == expected

    check_tree(tree)
    assert len(tree) == len(reference)
    stored = sorted(item for _, item in tree.items())
    assert stored == sorted(reference)


@settings(max_examples=30, deadline=None)
@given(
    rects=st.lists(small_rects(), min_size=1, max_size=80),
    max_entries=st.integers(min_value=3, max_value=8),
)
def test_insert_only_invariants(rects, max_entries):
    tree = RTree(max_entries=max_entries, min_entries=1)
    for i, r in enumerate(rects):
        tree.insert(r, i)
        check_tree(tree)
    mbr = tree.mbr()
    for r in rects:
        assert mbr.contains_rect(r)


@settings(max_examples=30, deadline=None)
@given(rects=st.lists(small_rects(), min_size=2, max_size=60))
def test_full_query_returns_all(rects):
    tree = RTree(max_entries=4, min_entries=1)
    for i, r in enumerate(rects):
        tree.insert(r, i)
    found = sorted(tree.search(Rect((0, 0), (2, 2))))
    assert found == list(range(len(rects)))


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=operations,
    max_entries=st.integers(min_value=4, max_value=9),
)
def test_rstar_random_operation_sequences(ops, max_entries):
    """The R*-tree must satisfy the same contract as the base tree
    under arbitrary insert/delete/query interleavings."""
    tree = RStarTree(max_entries=max_entries, min_entries=2)
    reference: dict[int, Rect] = {}
    next_id = 0

    for op, arg in ops:
        if op == "insert":
            tree.insert(arg, next_id)
            reference[next_id] = arg
            next_id += 1
        elif op == "delete":
            if reference:
                victim = sorted(reference)[arg % len(reference)]
                assert tree.delete(reference.pop(victim), victim)
        else:  # query
            expected = sorted(
                i for i, r in reference.items() if r.intersects(arg)
            )
            assert sorted(tree.search(arg)) == expected

    check_tree(tree)
    assert len(tree) == len(reference)
