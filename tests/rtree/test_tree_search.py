"""Search tests: queries agree with a brute-force oracle."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.rtree import RTree
from tests.conftest import brute_force_intersecting, random_rects


@pytest.fixture
def loaded(rng):
    arr = random_rects(rng, 300)
    tree = RTree(max_entries=8, min_entries=3)
    rects = list(arr)
    for i, r in enumerate(rects):
        tree.insert(r, i)
    return tree, rects


class TestSearch:
    def test_empty_tree(self):
        t = RTree()
        result = t.query(Rect((0, 0), (1, 1)))
        assert result.items == []
        assert result.node_accesses == 0

    def test_matches_brute_force(self, loaded, rng):
        tree, rects = loaded
        for _ in range(50):
            lo = rng.random(2) * 0.8
            size = rng.random(2) * 0.3
            q = Rect(tuple(lo), tuple(lo + size))
            assert sorted(tree.search(q)) == brute_force_intersecting(rects, q)

    def test_point_queries_match_brute_force(self, loaded, rng):
        tree, rects = loaded
        for _ in range(50):
            p = tuple(rng.random(2))
            expected = [i for i, r in enumerate(rects) if r.contains_point(p)]
            assert sorted(tree.search_point(p)) == expected

    def test_whole_space_query_returns_everything(self, loaded):
        tree, rects = loaded
        assert sorted(tree.search(Rect((0, 0), (1, 1)))) == list(range(len(rects)))

    def test_far_away_query_returns_nothing(self, loaded):
        tree, _ = loaded
        assert tree.search(Rect((5, 5), (6, 6))) == []

    def test_node_accesses_counts_root(self, loaded):
        tree, _ = loaded
        result = tree.query(Rect((5, 5), (6, 6)))
        assert result.node_accesses == 1
        assert result.accesses_per_level[0] == 1
        assert sum(result.accesses_per_level[1:]) == 0

    def test_accesses_per_level_sums_to_total(self, loaded, rng):
        tree, _ = loaded
        for _ in range(10):
            lo = rng.random(2) * 0.7
            q = Rect(tuple(lo), tuple(lo + 0.2))
            result = tree.query(q)
            assert sum(result.accesses_per_level) == result.node_accesses
            assert len(result.accesses_per_level) == tree.height

    def test_traversal_visits_exactly_intersecting_mbrs(self, loaded, rng):
        """The premise of the paper's MBR-list simulation: a traversal
        touches a node iff the node's MBR intersects the query (except
        that the root is always touched)."""
        tree, _ = loaded
        levels = tree.nodes_by_level()
        for _ in range(20):
            lo = rng.random(2) * 0.7
            q = Rect(tuple(lo), tuple(lo + 0.25))
            visited = tree.accessed_node_mbrs(q)
            per_level_visited = [0] * tree.height
            for level, mbr in visited:
                per_level_visited[level] += 1
                if level > 0:
                    assert mbr.intersects(q)
            for level, nodes in enumerate(levels):
                expected = sum(
                    1 for n in nodes if n.mbr().intersects(q)
                )
                if level == 0:
                    assert per_level_visited[0] == 1
                else:
                    assert per_level_visited[level] == expected

    def test_accessed_node_mbrs_empty_tree(self):
        t = RTree()
        assert t.accessed_node_mbrs(Rect((0, 0), (1, 1))) == []
