"""Tests for :class:`repro.rtree.TreeDescription`."""

import numpy as np
import pytest

from repro.geometry import GeometryError, Rect, RectArray
from repro.rtree import RTree, TreeDescription
from tests.conftest import random_rects


@pytest.fixture
def desc() -> TreeDescription:
    return TreeDescription.from_level_rects(
        [
            [Rect((0, 0), (1, 1))],
            [Rect((0, 0), (0.5, 1)), Rect((0.5, 0), (1, 1))],
            [
                Rect((0, 0), (0.5, 0.5)),
                Rect((0, 0.5), (0.5, 1)),
                Rect((0.5, 0), (1, 0.5)),
                Rect((0.5, 0.5), (1, 1)),
            ],
        ]
    )


class TestShape:
    def test_basic_counts(self, desc):
        assert desc.height == 3
        assert desc.node_counts == (1, 2, 4)
        assert desc.total_nodes == 7
        assert desc.dim == 2

    def test_level_offsets(self, desc):
        assert desc.level_offsets == (0, 1, 3, 7)

    def test_node_levels(self, desc):
        assert desc.node_levels.tolist() == [0, 1, 1, 2, 2, 2, 2]

    def test_level_of(self, desc):
        assert desc.level_of(0) == 0
        assert desc.level_of(2) == 1
        assert desc.level_of(6) == 2
        with pytest.raises(IndexError):
            desc.level_of(7)

    def test_all_rects_level_major(self, desc):
        assert len(desc.all_rects) == 7
        assert desc.all_rects.rect(0) == Rect((0, 0), (1, 1))
        assert desc.all_rects.rect(3) == Rect((0, 0), (0.5, 0.5))

    def test_empty_levels_rejected(self):
        with pytest.raises(GeometryError):
            TreeDescription(())

    def test_mixed_dim_rejected(self):
        with pytest.raises(GeometryError):
            TreeDescription(
                (
                    RectArray.from_rects([Rect((0, 0), (1, 1))]),
                    RectArray.from_rects([Rect((0, 0, 0), (1, 1, 1))]),
                )
            )


class TestAggregates:
    def test_total_area(self, desc):
        assert desc.total_area() == pytest.approx(1 + 1 + 1)

    def test_total_extent(self, desc):
        assert desc.total_extent(0) == pytest.approx(1 + 1 + 2)
        assert desc.total_extent(1) == pytest.approx(1 + 2 + 2)

    def test_pages_in_top_levels(self, desc):
        assert desc.pages_in_top_levels(0) == 0
        assert desc.pages_in_top_levels(1) == 1
        assert desc.pages_in_top_levels(2) == 3
        assert desc.pages_in_top_levels(3) == 7
        with pytest.raises(ValueError):
            desc.pages_in_top_levels(4)


class TestDropTopLevels:
    def test_zero_is_identity(self, desc):
        assert desc.drop_top_levels(0) is desc

    def test_drop_one(self, desc):
        trimmed = desc.drop_top_levels(1)
        assert trimmed.node_counts == (2, 4)
        assert trimmed.total_nodes == 6

    def test_drop_all_raises(self, desc):
        with pytest.raises(ValueError):
            desc.drop_top_levels(3)

    def test_negative_raises(self, desc):
        with pytest.raises(ValueError):
            desc.drop_top_levels(-1)


class TestFromTree:
    def test_matches_tree_structure(self, rng):
        tree = RTree(max_entries=5, min_entries=2)
        for i, r in enumerate(random_rects(rng, 120)):
            tree.insert(r, i)
        desc = TreeDescription.from_tree(tree)
        assert desc.height == tree.height
        assert desc.total_nodes == tree.node_count()
        levels = tree.nodes_by_level()
        for level_rects, nodes in zip(desc.levels, levels):
            assert len(level_rects) == len(nodes)
            for i, node in enumerate(nodes):
                assert level_rects.rect(i) == node.mbr()

    def test_empty_tree_raises(self):
        with pytest.raises(GeometryError):
            TreeDescription.from_tree(RTree())

    def test_root_mbr_contains_level_mbrs(self, rng):
        tree = RTree(max_entries=5, min_entries=2)
        for i, r in enumerate(random_rects(rng, 80)):
            tree.insert(r, i)
        desc = TreeDescription.from_tree(tree)
        root = desc.levels[0].rect(0)
        for level in desc.levels[1:]:
            for rect in level:
                assert root.contains_rect(rect)
