"""Unit tests for the Hilbert curve implementations."""

import numpy as np
import pytest

from repro.hilbert import (
    hilbert_index,
    hilbert_index_2d,
    hilbert_sort_key,
    quantize,
)


class TestQuantize:
    def test_basic(self):
        cells = quantize(np.array([[0.0, 0.5], [0.999, 0.25]]), order=2)
        assert cells.tolist() == [[0, 2], [3, 1]]

    def test_top_edge_maps_to_last_cell(self):
        cells = quantize(np.array([[1.0, 1.0]]), order=4)
        assert cells.tolist() == [[15, 15]]

    def test_out_of_range_clamped(self):
        cells = quantize(np.array([[-0.5, 1.5]]), order=3)
        assert cells.tolist() == [[0, 7]]

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((1, 2)), order=0)


class TestHilbert2D:
    def test_order_one_quadrant_order(self):
        # The order-1 curve visits (0,0), (0,1), (1,1), (1,0).
        xs = np.array([0, 0, 1, 1])
        ys = np.array([0, 1, 1, 0])
        d = hilbert_index_2d(xs, ys, order=1)
        assert d.tolist() == [0, 1, 2, 3]

    def test_bijective_order_4(self):
        side = 16
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        d = hilbert_index_2d(xs.ravel(), ys.ravel(), order=4)
        assert sorted(d.tolist()) == list(range(side * side))

    def test_consecutive_cells_are_grid_neighbours(self):
        """The defining Hilbert property: the curve is a Hamiltonian
        path on the grid, so consecutive indices differ by one step in
        exactly one coordinate."""
        side = 16
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        xs, ys = xs.ravel(), ys.ravel()
        d = hilbert_index_2d(xs, ys, order=4)
        order = np.argsort(d)
        dx = np.abs(np.diff(xs[order].astype(int)))
        dy = np.abs(np.diff(ys[order].astype(int)))
        assert np.all(dx + dy == 1)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_index_2d(np.array([4]), np.array([0]), order=2)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            hilbert_index_2d(np.array([0]), np.array([0]), order=0)
        with pytest.raises(ValueError):
            hilbert_index_2d(np.array([0]), np.array([0]), order=33)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            hilbert_index_2d(np.array([0, 1]), np.array([0]), order=2)

    def test_locality_better_than_row_major(self):
        """Points close on the curve should be close in the plane, on
        average much closer than a row-major scan achieves."""
        side = 32
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        xs, ys = xs.ravel(), ys.ravel()
        d = hilbert_index_2d(xs, ys, order=5)
        order = np.argsort(d)
        gap = 8
        hx, hy = xs[order].astype(float), ys[order].astype(float)
        hilbert_dist = np.hypot(hx[gap:] - hx[:-gap], hy[gap:] - hy[:-gap]).mean()
        # Row-major: index = y*side + x.
        rm = np.argsort(ys.astype(np.int64) * side + xs)
        rx, ry = xs[rm].astype(float), ys[rm].astype(float)
        row_major_dist = np.hypot(rx[gap:] - rx[:-gap], ry[gap:] - ry[:-gap]).mean()
        assert hilbert_dist < row_major_dist


class TestHilbertND:
    @pytest.mark.parametrize("dim,order", [(2, 3), (3, 3), (4, 2)])
    def test_bijective(self, dim, order):
        side = 1 << order
        grids = np.meshgrid(*[np.arange(side)] * dim)
        cells = np.column_stack([g.ravel() for g in grids])
        d = hilbert_index(cells, order=order)
        assert sorted(d.tolist()) == list(range(side**dim))

    @pytest.mark.parametrize("dim,order", [(2, 3), (3, 3), (4, 2)])
    def test_consecutive_cells_are_grid_neighbours(self, dim, order):
        side = 1 << order
        grids = np.meshgrid(*[np.arange(side)] * dim)
        cells = np.column_stack([g.ravel() for g in grids])
        d = hilbert_index(cells, order=order)
        ranked = cells[np.argsort(d)].astype(int)
        steps = np.abs(np.diff(ranked, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_one_dimensional_is_identity(self):
        cells = np.arange(8, dtype=np.uint64)[:, None]
        d = hilbert_index(cells, order=3)
        assert d.tolist() == list(range(8))

    def test_rejects_too_many_bits(self):
        with pytest.raises(ValueError):
            hilbert_index(np.zeros((1, 5), dtype=np.uint64), order=13)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_index(np.array([[8, 0]], dtype=np.uint64), order=3)


class TestSortKey:
    def test_2d_uses_fast_path_consistently(self):
        pts = np.random.default_rng(0).random((100, 2))
        keys = hilbert_sort_key(pts, order=8)
        cells = quantize(pts, order=8)
        expected = hilbert_index_2d(cells[:, 0], cells[:, 1], order=8)
        assert np.array_equal(keys, expected)

    def test_3d(self):
        pts = np.random.default_rng(0).random((50, 3))
        keys = hilbert_sort_key(pts, order=8)
        assert keys.shape == (50,)
        assert len(np.unique(keys)) > 40  # collisions rare at order 8

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            hilbert_sort_key(np.zeros(5))

    def test_sorted_points_nearby(self):
        """Sorting unit-square points by curve key gives a short tour."""
        rng = np.random.default_rng(1)
        pts = rng.random((2000, 2))
        keys = hilbert_sort_key(pts)
        tour = pts[np.argsort(keys)]
        hops = np.hypot(*(tour[1:] - tour[:-1]).T)
        # A random order has mean hop ~0.52; Hilbert should be ~sqrt(1/n).
        assert hops.mean() < 0.05
