"""Tests for the Z-order (Morton) curve and its packing ordering."""

import numpy as np
import pytest

from repro.hilbert import hilbert_sort_key, morton_index, morton_sort_key
from repro.packing import zorder_order
from repro.geometry import RectArray


class TestMortonIndex:
    def test_known_2d_values(self):
        # Interleave x into odd bits, y into even: (x,y)=(1,0) -> 0b10.
        cells = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint64)
        d = morton_index(cells, order=1)
        assert d.tolist() == [0, 1, 2, 3]

    def test_bijective(self):
        side = 8
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        cells = np.column_stack([xs.ravel(), ys.ravel()])
        d = morton_index(cells, order=3)
        assert sorted(d.tolist()) == list(range(side * side))

    def test_bijective_3d(self):
        side = 4
        grids = np.meshgrid(*[np.arange(side)] * 3)
        cells = np.column_stack([g.ravel() for g in grids])
        d = morton_index(cells, order=2)
        assert sorted(d.tolist()) == list(range(side**3))

    def test_has_jumps_unlike_hilbert(self):
        """Z-order is not a Hamiltonian path: consecutive indices can
        be far apart (that is why Hilbert packs better)."""
        side = 16
        xs, ys = np.meshgrid(np.arange(side), np.arange(side))
        cells = np.column_stack([xs.ravel(), ys.ravel()])
        d = morton_index(cells, order=4)
        ranked = cells[np.argsort(d)].astype(int)
        steps = np.abs(np.diff(ranked, axis=0)).sum(axis=1)
        assert steps.max() > 1  # jumps exist
        assert steps.min() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            morton_index(np.zeros((1,), dtype=np.uint64), order=4)
        with pytest.raises(ValueError):
            morton_index(np.zeros((1, 5), dtype=np.uint64), order=13)
        with pytest.raises(ValueError):
            morton_index(np.array([[4, 0]], dtype=np.uint64), order=2)


class TestMortonSortKey:
    def test_shape_and_determinism(self):
        pts = np.random.default_rng(0).random((100, 2))
        a = morton_sort_key(pts)
        b = morton_sort_key(pts)
        assert a.shape == (100,)
        assert np.array_equal(a, b)

    def test_hilbert_tour_is_shorter(self):
        """The locality claim behind Hilbert packing: sorting points by
        Hilbert key yields a shorter tour than sorting by Z-order."""
        pts = np.random.default_rng(3).random((3000, 2))

        def tour_length(keys):
            tour = pts[np.argsort(keys)]
            return np.hypot(*(tour[1:] - tour[:-1]).T).sum()

        assert tour_length(hilbert_sort_key(pts)) < tour_length(
            morton_sort_key(pts)
        )

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            morton_sort_key(np.zeros(5))


class TestZOrderPacking:
    def test_is_permutation(self, rng):
        from tests.conftest import random_rects

        arr = random_rects(rng, 200)
        perm = zorder_order(arr, 10)
        assert sorted(perm.tolist()) == list(range(200))

    def test_hilbert_packs_better(self, rng):
        """Under the paper's own metric (Eq. 2 / total node area),
        Hilbert packing beats Z-order packing — the reason Kamel &
        Faloutsos proposed it."""
        from repro.model import expected_node_accesses
        from repro.packing import pack_description
        from repro.queries import UniformPointWorkload

        pts = rng.random((20_000, 2))
        data = RectArray.from_points(pts)
        w = UniformPointWorkload()
        hs = expected_node_accesses(pack_description(data, 25, "hs"), w)
        zo = expected_node_accesses(pack_description(data, 25, "zorder"), w)
        assert hs < zo
