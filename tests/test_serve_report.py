"""The serve-report CLI: rendering, convergence call-out, exit codes.

Thin wrapper over ``tools/serve_report.py`` (same pattern as
``tests/test_bench_history.py``): the report is CI's artifact of
record for the serving smoke run, so its exit codes and the sections
it renders are tier-1 behaviour, not cosmetics.
"""

import importlib.util
import io
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.obs import TelemetrySink
from repro.packing import pack_description
from repro.queries import UniformPointWorkload
from repro.serving import QueryService
from tests.conftest import random_rects

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "serve_report", REPO_ROOT / "tools" / "serve_report.py"
)
serve_report = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("serve_report", serve_report)
_SPEC.loader.exec_module(serve_report)


class _Clock:
    def __init__(self) -> None:
        self.now = 0

    def __call__(self) -> int:
        return self.now


@pytest.fixture(scope="module")
def stream_path(tmp_path_factory):
    """A real 2-shard stream written by the sink itself."""
    path = tmp_path_factory.mktemp("telemetry") / "stream.jsonl"
    rng = np.random.default_rng(31)
    desc = pack_description(random_rects(rng, 400), 10, "hs")
    service = QueryService(desc, UniformPointWorkload(), 16, shards=2)
    clock = _Clock()
    sink = TelemetrySink(
        service,
        path=str(path),
        clock=clock,
        config={"dataset": "unit", "workload": "uniform-point"},
        model={"hit_ratio": 0.35},
    )
    for _ in range(4):
        service.process(service.workload.sample_points(200, rng))
        clock.now += 100_000_000
        sink.tick()
    sink.close()
    return path


class TestRender:
    def test_report_covers_every_section(self, stream_path, capsys):
        assert serve_report.main([str(stream_path)]) == 0
        out = capsys.readouterr().out
        assert "serving telemetry report" in out
        assert "dataset=unit" in out
        assert "predicted steady-state hit ratio: 0.3500" in out
        assert "convergence vs model" in out
        assert "per-shard totals" in out
        assert "hit-ratio spread" in out

    def test_timeline_has_one_row_per_tick(self, stream_path, capsys):
        assert serve_report.main([str(stream_path)]) == 0
        out = capsys.readouterr().out
        # 4 driven ticks + the final close() tick, each with a bar.
        assert out.count("[#") + out.count("[ ") + out.count("[|") == 5

    def test_width_flag_resizes_the_bar(self, stream_path, capsys):
        assert serve_report.main(["--width", "10", str(stream_path)]) == 0
        assert serve_report.main(["--width", "50", str(stream_path)]) == 0

    def test_bar_marks_the_model_prediction(self):
        bar = serve_report._bar(0.5, 20, 0.8)
        assert bar[:10] == "#" * 10
        assert bar[15] == "|"
        assert serve_report._bar(None, 10, None) == " " * 10


class TestExitCodes:
    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert serve_report.main([str(tmp_path / "nope.jsonl")]) == 1
        assert "invalid telemetry stream" in capsys.readouterr().err

    def test_corrupt_stream_exits_nonzero(self, stream_path, tmp_path, capsys):
        lines = stream_path.read_text().splitlines()
        tick = json.loads(lines[1])
        tick["shards"][0]["hits"] += 1  # break the shard-sum invariant
        lines[1] = json.dumps(tick)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        assert serve_report.main([str(bad)]) == 1
        assert "invalid telemetry stream" in capsys.readouterr().err

    def test_header_only_stream_exits_nonzero(self, stream_path, tmp_path, capsys):
        header_only = tmp_path / "header.jsonl"
        header_only.write_text(stream_path.read_text().splitlines()[0] + "\n")
        assert serve_report.main([str(header_only)]) == 1
        assert "no ticks" in capsys.readouterr().err
