"""A uniform-grid point-stabbing index over a :class:`RectArray`.

The simulator's hot loop asks "which rects contain this point?" for
millions of points against a *fixed* rect set (the workload-transformed
node MBRs).  A uniform grid turns that from O(n_rects) per point into
O(candidates): each rect is registered in every grid cell it overlaps
(built once, vectorised), a point hashes to exactly one cell, and the
exact closed-boundary containment test runs only against that cell's
candidate list.

Cell resolution is chosen from the *median* MBR extent per axis — the
typical node MBR then overlaps O(2^d) cells, so the index stays linear
in the number of rects — then capped so the flattened cell table and
the entry table stay small; pathological inputs (a rect covering the
whole space inflating the entry count) trigger automatic coarsening.

Correctness does not depend on any of these heuristics: the grid only
proposes a candidate *superset* (cell assignment uses the same
monotone ``floor((x - origin) * inv)`` arithmetic for rect corners and
query points, so a containing rect's cell range always covers the
point's cell) and membership is decided by the exact comparison
``lo <= p <= hi`` — bit-identical to the dense oracle.
"""

from __future__ import annotations

import numpy as np

from ..geometry import GeometryError, RectArray
from ..obs.spans import span
from .sparse import DenseStabber, SparseContainment

__all__ = ["GridStabbingIndex", "make_stabber"]

_GRID_MIN_RECTS = 4096
"""``mode="auto"`` builds a grid only at or above this many rects;
below it the dense matrix is faster than building an index."""

_DENSE_MAX_WORK = 1 << 22
"""``mode="auto"`` with an ``n_points`` hint switches to the grid once
the dense matrix would evaluate this many rect-point pairs — even a
small rect set loses to the grid when probed with enough points."""

_MAX_CELLS = 1 << 22
"""Hard cap on the flattened cell count (indptr memory)."""

_ENTRIES_PER_RECT_CAP = 64
"""Coarsen the grid while the (cell, rect) entry table exceeds
``_ENTRIES_PER_RECT_CAP * n_rects + 1024`` entries."""

STABBER_MODES = ("auto", "grid", "dense")
"""Accepted values for the ``mode`` argument of :func:`make_stabber`."""


def _cell_coords(
    x: np.ndarray,
    origin: np.ndarray,
    inv: np.ndarray,
    nbins: np.ndarray,
    nan_fill: np.ndarray,
) -> np.ndarray:
    """Per-axis grid coordinates of ``x`` (``(m, d)`` int64).

    ``floor((x - origin) * inv)`` clipped into ``[0, nbins - 1]``.
    Every operation is monotone in ``x`` (IEEE subtraction,
    multiplication by a non-negative value, floor, clip), which is the
    superset guarantee: ``lo <= p <= hi`` implies
    ``cell(lo) <= cell(p) <= cell(hi)`` axis-wise.  NaN coordinates
    (possible only from degenerate inputs like ``inf - inf``) fall back
    to ``nan_fill``, keeping rect ranges maximal and point lookups
    in-range.
    """
    with np.errstate(invalid="ignore", over="ignore"):
        coords = np.floor((x - origin) * inv)
    coords = np.where(np.isnan(coords), nan_fill, coords)
    coords = np.clip(coords, 0.0, (nbins - 1).astype(np.float64))
    return coords.astype(np.int64)


def _choose_bins(rects: RectArray, span: np.ndarray, max_cells: int) -> np.ndarray:
    """Bins per axis from the median MBR extent, capped to ``max_cells``.

    A cell of roughly the median extent makes the typical rect overlap
    about two cells per axis.  Axes where the median extent is zero
    (point-heavy data) fall back to the mean extent, then to an
    ``n^(1/d)`` spatial hash.
    """
    n = len(rects)
    d = rects.dim
    extents = rects.extents()
    target = np.median(extents, axis=0)
    mean = np.mean(extents, axis=0)
    target = np.where(target > 0.0, target, mean)
    default = float(np.ceil(n ** (1.0 / d)))
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        bins = np.where(
            (target > 0.0) & (span > 0.0), span / target, default
        )
    bins = np.where(span > 0.0, np.maximum(bins, 1.0), 1.0)
    bins = np.minimum(bins, float(max_cells))
    total = float(np.prod(bins))
    if total > max_cells:
        bins = np.maximum(1.0, np.floor(bins * (max_cells / total) ** (1.0 / d)))
    return np.maximum(1, np.floor(bins)).astype(np.int64)


def _expand_entries(
    i_lo: np.ndarray, i_hi: np.ndarray, nbins: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All (flat cell, rect id) pairs covered by each rect's cell range.

    Mixed-radix expansion, one axis at a time: after axis ``k`` the
    ``flat`` array holds the flattened prefix coordinate of every
    partial cell tuple, and ``rect_idx`` the owning rect of each.
    """
    n, d = i_lo.shape
    rect_idx = np.arange(n, dtype=np.int64)
    flat = np.zeros(n, dtype=np.int64)
    for axis in range(d):
        counts = i_hi[rect_idx, axis] - i_lo[rect_idx, axis] + 1
        total = int(counts.sum())
        starts = np.cumsum(counts) - counts
        offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        base = np.repeat(flat * nbins[axis] + i_lo[rect_idx, axis], counts)
        flat = base + offsets
        rect_idx = np.repeat(rect_idx, counts)
    return flat, rect_idx


class GridStabbingIndex:
    """Point-stabbing over a fixed rect set via a uniform grid.

    Build once per rect set (O(n_rects + n_entries)), then
    :meth:`stab` answers point batches in O(candidates) — exact,
    closed-boundary, byte-identical to :class:`DenseStabber`.

    Parameters
    ----------
    rects:
        The rectangles to index (e.g. workload-transformed node MBRs).
    max_cells:
        Upper bound on the flattened cell count; defaults to
        ``min(2**22, max(1024, 8 * len(rects)))``.
    """

    def __init__(self, rects: RectArray, *, max_cells: int | None = None) -> None:
        if max_cells is None:
            max_cells = min(_MAX_CELLS, max(1024, 8 * len(rects)))
        if max_cells < 1:
            raise GeometryError("max_cells must be positive")
        self.rects = rects
        n = len(rects)
        d = rects.dim
        if n == 0:
            self._origin = np.zeros(d)
            self._inv = np.zeros(d)
            self._nbins = np.ones(d, dtype=np.int64)
            self._strides = np.ones(d, dtype=np.int64)
            self._indptr = np.zeros(2, dtype=np.int64)
            self._entries = np.empty(0, dtype=np.int64)
            return

        origin = rects.lo.min(axis=0)
        span = rects.hi.max(axis=0) - origin
        nbins = _choose_bins(rects, span, max_cells)
        entry_cap = _ENTRIES_PER_RECT_CAP * n + 1024
        while True:
            # Denormal spans may saturate ``inv`` to +inf; cell
            # arithmetic stays monotone (NaN products fall back to
            # ``nan_fill``, +inf clips to the top bin), so exactness
            # is unaffected.
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                inv = np.where(span > 0.0, nbins / span, 0.0)
            zero_fill = np.zeros(d)
            top_fill = (nbins - 1).astype(np.float64)
            i_lo = _cell_coords(rects.lo, origin, inv, nbins, zero_fill)
            i_hi = _cell_coords(rects.hi, origin, inv, nbins, top_fill)
            n_entries = int(np.prod(i_hi - i_lo + 1, axis=1).sum())
            if n_entries <= entry_cap or bool(np.all(nbins == 1)):
                break
            nbins = np.maximum(1, nbins // 2)

        flat, rect_idx = _expand_entries(i_lo, i_hi, nbins)
        n_cells = int(np.prod(nbins))
        # Sort by (cell, rect id): each cell's candidate run is then
        # ascending, so filtered rows inherit the dense nonzero order.
        order = np.lexsort((rect_idx, flat))
        cells_sorted = flat[order]
        entries = rect_idx[order]
        indptr = np.zeros(n_cells + 1, dtype=np.int64)
        np.cumsum(np.bincount(cells_sorted, minlength=n_cells), out=indptr[1:])

        strides = np.ones(d, dtype=np.int64)
        for axis in range(d - 2, -1, -1):
            strides[axis] = strides[axis + 1] * nbins[axis + 1]

        self._origin = origin
        self._inv = inv
        self._nbins = nbins
        self._strides = strides
        self._indptr = indptr
        self._entries = entries

    def __len__(self) -> int:
        return len(self.rects)

    @property
    def n_cells(self) -> int:
        """Flattened cell count of the grid."""
        return int(np.prod(self._nbins))

    @property
    def n_entries(self) -> int:
        """Total (cell, rect) registrations in the index."""
        return int(self._entries.shape[0])

    @property
    def bins(self) -> tuple[int, ...]:
        """Bins per axis."""
        return tuple(int(b) for b in self._nbins)

    def candidate_lists(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Unfiltered per-point candidates ``(point_idx, rect_ids, p_rows)``.

        ``point_idx[k]`` is the query row owning candidate
        ``rect_ids[k]``; ``p_rows`` are the gathered point coordinates
        aligned with the candidates (saves a second gather in
        :meth:`stab`).  Candidates are a superset of the true
        containing set, ascending within each point.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.rects.dim:
            raise GeometryError("points must be (n_points, d)")
        m = points.shape[0]
        coords = _cell_coords(
            points, self._origin, self._inv, self._nbins, np.zeros(points.shape[1])
        )
        flat = coords @ self._strides
        start = self._indptr[flat]
        counts = self._indptr[flat + 1] - start
        total = int(counts.sum())
        point_idx = np.repeat(np.arange(m, dtype=np.int64), counts)
        run_starts = np.cumsum(counts) - counts
        offsets = np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
        rect_ids = self._entries[np.repeat(start, counts) + offsets]
        return point_idx, rect_ids, points[point_idx]

    def stab(self, points: np.ndarray) -> SparseContainment:
        """Exact CSR containment of ``points`` (closed boundaries)."""
        m = np.asarray(points).shape[0]
        point_idx, rect_ids, p = self.candidate_lists(points)
        lo = self.rects.lo
        hi = self.rects.hi
        ok = np.all((lo[rect_ids] <= p) & (p <= hi[rect_ids]), axis=1)
        kept_points = point_idx[ok]
        kept_ids = rect_ids[ok]
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(kept_points, minlength=m), out=indptr[1:])
        return SparseContainment(
            indptr=indptr, ids=kept_ids, n_rects=len(self.rects)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bins = "x".join(str(b) for b in self.bins)
        return (
            f"GridStabbingIndex(n={len(self.rects)}, bins={bins}, "
            f"entries={self.n_entries})"
        )


def make_stabber(
    rects: RectArray, mode: str = "auto", *, n_points: int | None = None
) -> GridStabbingIndex | DenseStabber:
    """Pick a point-stabbing backend for ``rects``.

    ``"auto"`` builds a :class:`GridStabbingIndex` at or above
    ``_GRID_MIN_RECTS`` rects and falls back to the
    :class:`DenseStabber` oracle below (building an index for a small
    rect set costs more than the dense matrix it avoids); ``"grid"``
    and ``"dense"`` force the choice.  Both backends return
    byte-identical :class:`~repro.accel.sparse.SparseContainment`.

    ``n_points`` is an optional hint: roughly how many points the
    caller will stab over the stabber's lifetime.  ``"auto"`` then
    also takes the grid whenever the dense matrix would touch
    ``_DENSE_MAX_WORK`` rect-point pairs — a few hundred tree nodes
    probed by a whole measurement window (the single-pass sweep of
    :mod:`repro.simulation.stackdist`) favour the grid even though a
    4096-point chunk would not.  The hint only ever changes *speed*:
    backends are bit-exact, so results are hint-independent.
    """
    if mode not in STABBER_MODES:
        raise ValueError(
            f"unknown stabber mode {mode!r}; choices: {STABBER_MODES}"
        )
    hinted = n_points is not None and len(rects) * n_points >= _DENSE_MAX_WORK
    if mode == "grid" or (
        mode == "auto" and (len(rects) >= _GRID_MIN_RECTS or hinted)
    ):
        with span("accel.build", backend="grid", n_rects=len(rects)):
            return GridStabbingIndex(rects)
    with span("accel.build", backend="dense", n_rects=len(rects)):
        return DenseStabber(rects)
