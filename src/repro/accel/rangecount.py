"""Offline orthogonal range counting over a fixed point set.

The data-driven query model (Eq. 4) needs, for every (expanded) node
MBR, the number of data centres inside it.  The dense evaluation tests
every centre against every rect — O(M·n) boolean cells, the dominant
cost of the data-driven figures on large data sets.

:class:`SortedRangeCounter` sorts the centres **once** and answers a
whole batch of rects with searchsorted prefix cuts plus merge
counting:

* **1-D**: ``count = searchsorted(x, hi, 'right') −
  searchsorted(x, lo, 'left')`` — two binary searches per rect.
* **2-D**: sort points by x; a rect's x-slab is then a pair of prefix
  lengths (``side='right'`` at ``hi_x`` keeps every ``px <= hi_x``,
  ``side='left'`` at ``lo_x`` drops every ``px >= lo_x``), and the
  rect count is an inclusion–exclusion of four *dominance* counts
  ``#{px in prefix, py <= Y}``.  Dominance counts are answered by a
  Fenwick-style binary decomposition of the prefix into aligned
  power-of-two blocks whose y-values are pre-sorted (a binary indexed
  mergesort tree): each query touches at most ``log2(n)`` blocks and
  does one binary search per block, all lanes advancing together in
  vectorised lock-step.

Total cost O((M + n) · log² n) instead of O(M · n), and — because
every comparison is the same exact float comparison the dense kernel
performs — the counts are *bit-identical* to
:meth:`RectArray.count_points_inside`.  Dimensions above 2 fall back
to the chunked dense kernel (the paper's workloads are 2-D; the 3-D
ablation stays on the oracle path).
"""

from __future__ import annotations

import numpy as np

from ..geometry import GeometryError, RectArray
from ..obs.spans import span

__all__ = ["SortedRangeCounter", "count_points_inside", "segmented_left_rank"]

_SORTED_MIN_CELLS = 1 << 22
"""``method="auto"`` switches to the sorted kernel once the dense
matrix would exceed this many ``n_rects * n_points`` cells."""

COUNT_METHODS = ("auto", "sorted", "dense")
"""Accepted values for the ``method`` argument of
:func:`count_points_inside`."""


class SortedRangeCounter:
    """Reusable range-count structure over a fixed ``(n, d)`` point set.

    Supports ``d <= 2``.  Build cost is O(n log n); each
    :meth:`count` call costs O(m log² n) for ``m`` rects.  Counts are
    bit-identical to the dense kernel (closed boundaries throughout).
    """

    def __init__(self, points: np.ndarray) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise GeometryError("points must be an (n, d) array")
        if points.shape[1] > 2:
            raise GeometryError(
                "SortedRangeCounter supports 1-D and 2-D points only; "
                "use the dense kernel for higher dimensions"
            )
        self.dim = int(points.shape[1])
        self.n_points = int(points.shape[0])
        order = np.argsort(points[:, 0], kind="stable")
        self._xs = points[order, 0]
        self._levels: list[np.ndarray] = []
        self._n_levels = 0
        if self.dim == 2:
            ys = points[order, 1]
            n = ys.shape[0]
            # Number of bits needed to decompose any prefix length <= n.
            self._n_levels = max(int(n - 1).bit_length(), 1) + 1 if n else 1
            padded_n = 1 << (self._n_levels - 1)
            for b in range(self._n_levels):
                size = 1 << b
                # Pad to a whole number of blocks with NaN: NaN compares
                # False against everything, so padding never counts and
                # np.sort parks it at the end of each block.
                padded = np.full(padded_n + 1, np.nan)
                padded[:n] = ys
                blocks = padded[:padded_n].reshape(-1, size)
                level = np.empty(padded_n + 1)
                level[:padded_n] = np.sort(blocks, axis=1).ravel()
                level[padded_n] = np.nan  # sentinel: safe overshoot reads
                self._levels.append(level)

    def prefix_rank(
        self,
        k: np.ndarray,
        y: np.ndarray,
        *,
        strict: bool = False,
    ) -> np.ndarray:
        """Vectorised dominance counts over x-order prefixes.

        For each lane ``i``, counts the points among the first
        ``k[i]`` in **x-sorted order** whose y-value is ``<= y[i]``
        (``< y[i]`` when ``strict``).  This exposes the Fenwick
        mergesort-tree directly for callers whose x-slab cuts are
        already known — the offline LRU stack-distance engine
        (:mod:`repro.simulation.stackdist`) builds the counter over
        ``(position, previous-position)`` points, where positions are
        ``0..n-1`` so every prefix cut is just an index and the two
        ``searchsorted`` calls of :meth:`count` would be wasted work.

        ``k`` entries must lie in ``[0, n_points]``; 2-D counters only.
        Returns an int64 array of ``k.shape[0]`` counts.
        """
        if self.dim != 2:
            raise GeometryError("prefix_rank needs a 2-D counter")
        k = np.asarray(k, dtype=np.int64)
        y = np.asarray(y, dtype=np.float64)
        if k.ndim != 1 or y.ndim != 1 or k.shape != y.shape:
            raise GeometryError("k and y must be 1-D arrays of equal length")
        if k.size and (k.min() < 0 or k.max() > self.n_points):
            raise GeometryError(
                f"prefix lengths must lie in [0, {self.n_points}]"
            )
        return self._prefix_rank(k, y, strict)

    def _prefix_rank(
        self, k: np.ndarray, y: np.ndarray, strict: bool
    ) -> np.ndarray:
        """``#{i < k : ys[i] <= y}`` (or ``< y`` when ``strict``).

        ``k`` holds prefix lengths into the x-sorted y-array; the
        Fenwick decomposition of each ``k`` visits at most one aligned
        block per level, located purely from the bits of ``k`` (the
        blocks for prefix ``[0, k)`` are, high bit first, exactly the
        set bits of ``k``), so all queries advance level by level in
        lock-step with a vectorised binary search inside each block.
        """
        total = np.zeros(k.shape[0], dtype=np.int64)
        for b in range(self._n_levels):
            sel = np.nonzero((k >> b) & 1)[0]
            if sel.size == 0:
                continue
            size = 1 << b
            # Offset of this block = the bits of k above b; aligned to
            # a multiple of 2^(b+1), hence a whole block at level b.
            base = (k[sel] >> (b + 1)) << (b + 1)
            arr = self._levels[b]
            yq = y[sel]
            lo = np.zeros(sel.size, dtype=np.int64)
            hi = np.full(sel.size, size, dtype=np.int64)
            for _ in range(b + 1):
                active = lo < hi
                mid = (lo + hi) >> 1
                v = arr[base + mid]
                if strict:
                    cond = active & (v < yq)
                else:
                    cond = active & (v <= yq)
                lo = np.where(cond, mid + 1, lo)
                hi = np.where(active & ~cond, mid, hi)
            total[sel] += lo
        return total

    def count(self, rects: RectArray) -> np.ndarray:
        """``(n_rects,)`` int64 count of points inside each rect."""
        if rects.dim != self.dim:
            raise GeometryError(
                f"counter is {self.dim}-D but rects are {rects.dim}-D"
            )
        k_hi = np.searchsorted(self._xs, rects.hi[:, 0], side="right")
        k_lo = np.searchsorted(self._xs, rects.lo[:, 0], side="left")
        if self.dim == 1:
            return (k_hi - k_lo).astype(np.int64)
        # Inclusion–exclusion over the x-slab [k_lo, k_hi):
        #   #{lo <= p <= hi} = #{py <= hi_y} − #{py < lo_y} within the slab.
        below_hi = self._prefix_rank(
            np.concatenate([k_hi, k_lo]),
            np.concatenate([rects.hi[:, 1], rects.hi[:, 1]]),
            strict=False,
        )
        below_lo = self._prefix_rank(
            np.concatenate([k_hi, k_lo]),
            np.concatenate([rects.lo[:, 1], rects.lo[:, 1]]),
            strict=True,
        )
        m = len(rects)
        inside_hi = below_hi[:m] - below_hi[m:]
        inside_lo = below_lo[:m] - below_lo[m:]
        return (inside_hi - inside_lo).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SortedRangeCounter(n={self.n_points}, dim={self.dim})"


def segmented_left_rank(
    values: np.ndarray,
    segment: int,
    *,
    block: int = 64,
) -> np.ndarray:
    """``r[i] = #{j < i in i's segment : values[j] <= values[i]}``.

    The positional *left rank* of every element among the elements
    before it in its own length-``segment`` span (segments are
    consecutive: element ``i`` belongs to segment ``i // segment``;
    the last segment may be short).  This is the inner kernel of the
    offline LRU stack-distance engine
    (:mod:`repro.simulation.stackdist`), which turns the global
    dominance count of :meth:`SortedRangeCounter.prefix_rank` into a
    per-segment one plus a tiny per-segment "live pages" snapshot —
    cheaper because a segment's merge tree is shallow and because
    segments are independent (and therefore trivially parallel).
    That engine decides every buffer size of the paper's buffer
    curves (Fig. 6, 9 and 11) in one pass via the left-rank identity
    ``D(t) = rank(t) − prev[t] − 1`` for within-segment reuse; the
    independence of segments is also exactly what lets the sharded
    process-pool sweep cut the stream on segment-aligned boundaries
    and stay bit-exact (``docs/PARALLELISM.md``).

    **Determinism guarantee.**  The result is a pure function of
    ``(values, segment, block)``: batching, thread count and shard
    boundaries chosen by callers never change a single count, because
    every block and every prefix merge computes an exact integer
    dominance count, not an approximation.

    Two-level scheme, everything in vectorised lock-step across all
    segments at once:

    * **blocks** (``block`` elements): brute-force dominance inside
      each block via one boolean ``(rows, block, block)`` tensor;
    * **block prefixes**: per segment, a sorted running prefix of the
      blocks so far, stored packed with per-segment key offsets so a
      single flat ``searchsorted`` ranks every segment's next block
      simultaneously; prefixes grow by classic two-``searchsorted``
      merges (no re-sorting).

    ``values`` must be an integer array; ``segment`` must be a
    positive multiple of ``block``.  Returns int64 counts, one per
    element (ties count: equal earlier values are included).
    """
    v = np.asarray(values)
    if v.ndim != 1:
        raise GeometryError("values must be a 1-D array")
    if v.dtype.kind not in "iu":
        raise GeometryError("values must be an integer array")
    if block < 1 or segment < 1 or segment % block:
        raise GeometryError("segment must be a positive multiple of block")
    n = v.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    n_pad = -(-n // segment) * segment
    vmin = int(v.min())
    sentinel = int(v.max()) - vmin + 1
    padded = np.empty(n_pad, dtype=np.int64)
    np.subtract(v, vmin, out=padded[:n], casting="unsafe")
    # Padding sorts above every real value, so it only ever counts for
    # padded (discarded) queries.
    padded[n:] = sentinel

    n_blocks = n_pad // block
    per_seg = segment // block
    n_seg = n_pad // segment
    rank = np.zeros((n_blocks, block), dtype=np.int64)

    # Bottom level: dominance inside each block, brute force, batched
    # so the boolean tensor stays ~16M cells.
    blocks = padded.reshape(n_blocks, block)
    tri = np.tril(np.ones((block, block), dtype=bool), k=-1)
    batch = max(1, (1 << 24) // (block * block))
    for s in range(0, n_blocks, batch):
        sub = blocks[s : s + batch]
        np.sum(
            (sub[:, None, :] <= sub[:, :, None]) & tri,
            axis=2,
            dtype=np.int64,
            out=rank[s : s + batch],
        )

    if per_seg > 1:
        # Mid level: each block is ranked against the merged sorted
        # prefix of its segment's earlier blocks.  Keys carry a
        # per-segment offset (stride > any real value) so the packed
        # prefixes of all segments form one globally sorted array and
        # a single flat searchsorted serves every segment at once.
        stride = np.int64(sentinel) + 1
        rows = np.arange(n_seg, dtype=np.int64)
        keys = padded.reshape(n_seg, per_seg, block) + (rows * stride)[
            :, None, None
        ]
        rank3 = rank.reshape(n_seg, per_seg, block)
        prefix = np.sort(keys[:, 0, :], axis=1).ravel()
        for j in range(1, per_seg):
            width = j * block
            q = keys[:, j, :]
            cnt = np.searchsorted(prefix, q.ravel(), side="right")
            rank3[:, j, :] += cnt.reshape(n_seg, block) - (rows * width)[
                :, None
            ]
            if j == per_seg - 1:
                break
            # Merge block j into each prefix: an element's merged slot
            # is its rank among the other side plus its own rank, with
            # prefix elements winning ties (matching side="right"
            # above).  Row r's packed prefix starts at r*width before
            # and r*(width+block) after, which the row offsets absorb.
            small = np.sort(q, axis=1)
            pos_s = (
                np.searchsorted(prefix, small.ravel(), side="right").reshape(
                    n_seg, block
                )
                + np.arange(block, dtype=np.int64)[None, :]
                + (rows * block)[:, None]
            )
            pos_b = (
                np.searchsorted(small.ravel(), prefix, side="left").reshape(
                    n_seg, width
                )
                + np.arange(width, dtype=np.int64)[None, :]
                + (rows * width)[:, None]
            )
            merged = np.empty(n_seg * (width + block), dtype=np.int64)
            merged[pos_s.ravel()] = small.ravel()
            merged[pos_b.ravel()] = prefix
            prefix = merged
    return rank.reshape(-1)[:n]


def count_points_inside(
    rects: RectArray,
    points: np.ndarray,
    *,
    method: str = "auto",
    counter: SortedRangeCounter | None = None,
) -> np.ndarray:
    """Count ``points`` inside each rect, choosing a kernel by size.

    Parameters
    ----------
    rects, points:
        The rect set and the ``(n, d)`` point set (closed boundaries).
    method:
        ``"auto"`` uses the sorted kernel when ``d <= 2`` and the dense
        matrix would exceed ``_SORTED_MIN_CELLS`` cells (or whenever a
        prebuilt ``counter`` is supplied), the chunked dense kernel
        otherwise; ``"sorted"`` / ``"dense"`` force the choice.
    counter:
        A prebuilt :class:`SortedRangeCounter` over ``points`` — lets
        callers with a fixed point set (e.g. the data-driven workload's
        centres) amortise the sort across many calls.

    All kernels return bit-identical int64 counts.
    """
    if method not in COUNT_METHODS:
        raise ValueError(
            f"unknown count method {method!r}; choices: {COUNT_METHODS}"
        )
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != rects.dim:
        raise GeometryError("points must be (n_points, d)")
    if method == "dense":
        with span(
            "accel.count",
            backend="dense",
            n_rects=len(rects),
            n_points=points.shape[0],
        ):
            return rects.count_points_inside(points)
    sortable = rects.dim <= 2
    if method == "sorted":
        if not sortable:
            raise GeometryError(
                "the sorted kernel supports 1-D and 2-D only; "
                "use method='dense' for higher dimensions"
            )
    elif counter is None and not (
        sortable and len(rects) * points.shape[0] >= _SORTED_MIN_CELLS
    ):
        with span(
            "accel.count",
            backend="dense",
            n_rects=len(rects),
            n_points=points.shape[0],
        ):
            return rects.count_points_inside(points)
    if counter is None:
        with span("accel.counter_build", n_points=points.shape[0]):
            counter = SortedRangeCounter(points)
    elif counter.dim != rects.dim or counter.n_points != points.shape[0]:
        raise GeometryError("counter does not match the supplied points")
    with span(
        "accel.count",
        backend="sorted",
        n_rects=len(rects),
        n_points=points.shape[0],
    ):
        return counter.count(rects)
