"""Sparse (CSR) point-in-rectangle containment results.

The §4 validation simulator asks, for a batch of query points, *which*
node MBRs contain each point.  The dense answer is a boolean
``(n_points, n_rects)`` matrix — quadratic in space and time even
though each query typically touches only a handful of nodes (one or
two per tree level).  :class:`SparseContainment` stores the same
information in CSR form: ``indptr`` delimits each query's run inside
``ids``, and ids within a row are ascending (level-major = top-down),
matching the order ``np.nonzero`` yields on a dense row.

:class:`DenseStabber` is the reference ("oracle") producer: it
evaluates the full dense matrix via
:meth:`~repro.geometry.RectArray.contains_points` and compresses it.
The grid-accelerated producer lives in :mod:`repro.accel.grid`; both
must return byte-identical results.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..geometry import GeometryError, RectArray

__all__ = ["DenseStabber", "SparseContainment"]


@dataclass(frozen=True)
class SparseContainment:
    """CSR containment: row ``q`` holds the rect ids containing point ``q``.

    ``indptr`` has ``n_points + 1`` entries; row ``q`` is
    ``ids[indptr[q]:indptr[q + 1]]``, ascending.
    """

    indptr: np.ndarray
    ids: np.ndarray
    n_rects: int

    def __post_init__(self) -> None:
        if self.indptr.ndim != 1 or self.ids.ndim != 1:
            raise GeometryError("indptr and ids must be 1-D arrays")
        if self.indptr.shape[0] < 1:
            raise GeometryError("indptr needs at least one entry")
        if int(self.indptr[-1]) != self.ids.shape[0]:
            raise GeometryError("indptr[-1] must equal len(ids)")

    @property
    def n_points(self) -> int:
        """Number of query points (rows)."""
        return self.indptr.shape[0] - 1

    @property
    def nnz(self) -> int:
        """Total number of (point, rect) containment pairs."""
        return self.ids.shape[0]

    def row(self, q: int) -> np.ndarray:
        """Ascending rect ids containing point ``q``."""
        return self.ids[self.indptr[q] : self.indptr[q + 1]]

    def iter_rows(self) -> Iterator[np.ndarray]:
        """Yield each point's ascending id list in query order."""
        indptr = self.indptr
        ids = self.ids
        for q in range(self.n_points):
            yield ids[indptr[q] : indptr[q + 1]]

    def to_dense(self) -> np.ndarray:
        """The equivalent boolean ``(n_points, n_rects)`` matrix."""
        out = np.zeros((self.n_points, self.n_rects), dtype=bool)
        rows = np.repeat(
            np.arange(self.n_points), np.diff(self.indptr.astype(np.int64))
        )
        out[rows, self.ids] = True
        return out

    @classmethod
    def from_dense(cls, matrix: np.ndarray) -> "SparseContainment":
        """Compress a boolean containment matrix to CSR.

        ``np.nonzero`` scans row-major, so ids come out grouped by row
        and ascending within each row — the exact order the simulator's
        per-query loop consumed from the dense matrix.
        """
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise GeometryError("containment matrix must be 2-D")
        counts = matrix.sum(axis=1, dtype=np.int64)
        indptr = np.zeros(matrix.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        ids = np.nonzero(matrix)[1].astype(np.int64, copy=False)
        return cls(indptr=indptr, ids=ids, n_rects=matrix.shape[1])


class DenseStabber:
    """The dense reference producer of :class:`SparseContainment`.

    Wraps a :class:`~repro.geometry.RectArray` and answers
    :meth:`stab` by evaluating the full containment matrix (chunked
    internally by ``RectArray.contains_points`` to bound peak memory)
    and compressing it.  Kept as the oracle the grid index is tested
    against, and as the fast path for small rect sets where building a
    grid costs more than it saves.
    """

    def __init__(self, rects: RectArray) -> None:
        self.rects = rects

    def __len__(self) -> int:
        return len(self.rects)

    def stab(self, points: np.ndarray) -> SparseContainment:
        """Exact CSR containment of ``points`` against all rects."""
        return SparseContainment.from_dense(self.rects.contains_points(points))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseStabber(n={len(self.rects)})"
