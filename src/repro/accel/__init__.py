"""Spatial-acceleration kernels for the simulator and the model.

The two compute-dominant paths of the reproduction — the §4 validation
simulator and the data-driven access probabilities (Eq. 4) — both
reduce to point-vs-rectangle problems over a *fixed* rect or point
set.  This package holds the sub-quadratic kernels they run on:

* :class:`GridStabbingIndex` / :func:`make_stabber` — uniform-grid
  point stabbing: which rects contain each query point, as a
  :class:`SparseContainment` CSR result (:class:`DenseStabber` is the
  dense oracle);
* :class:`SortedRangeCounter` / :func:`count_points_inside` — offline
  sorted range counting: how many points fall inside each rect;
* :func:`segmented_left_rank` — lock-step per-segment left ranks, the
  inner kernel of the single-pass stack-distance sweep.

Every kernel is *bit-exact* against its dense reference (closed
boundaries, degenerate slivers included); ``auto`` modes select by
input size and can be overridden.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

from .grid import GridStabbingIndex, make_stabber
from .rangecount import (
    SortedRangeCounter,
    count_points_inside,
    segmented_left_rank,
)
from .sparse import DenseStabber, SparseContainment

__all__ = [
    "DenseStabber",
    "GridStabbingIndex",
    "SortedRangeCounter",
    "SparseContainment",
    "count_points_inside",
    "make_stabber",
    "segmented_left_rank",
]
