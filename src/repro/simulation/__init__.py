"""LRU-buffer query simulation, batch means, and model validation."""

from __future__ import annotations

from .batchmeans import BatchMeansEstimate, batch_means
from .engine import SimulationResult, build_stabbers, simulate
from .stackdist import simulate_sweep
from .stats import (
    regularized_incomplete_beta,
    student_t_cdf,
    student_t_quantile,
)
from .validation import ValidationReport, ValidationRow, validate_model

__all__ = [
    "BatchMeansEstimate",
    "SimulationResult",
    "ValidationReport",
    "ValidationRow",
    "batch_means",
    "build_stabbers",
    "regularized_incomplete_beta",
    "simulate",
    "simulate_sweep",
    "student_t_cdf",
    "student_t_quantile",
    "validate_model",
]
