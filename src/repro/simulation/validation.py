"""First-class model-vs-simulation validation (the paper's §4 as API).

The paper validates its buffer model by comparing predicted and
simulated disk accesses over a grid of buffer sizes.  Anyone extending
the model (new workloads, new replacement policies, new tree types)
needs the same check, so it is exposed here as a single call:

    report = validate_model(desc, workload, buffer_sizes=(10, 100, 500))
    print(report.to_text())
    assert report.max_abs_percent_difference < 2.0
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model import buffer_model_sweep
from ..rtree import TreeDescription
from .engine import simulate
from .stackdist import simulate_sweep

__all__ = ["ValidationReport", "ValidationRow", "validate_model"]


@dataclass(frozen=True)
class ValidationRow:
    """Model vs simulation at one buffer size."""

    buffer_size: int
    model: float
    simulated: float
    ci_half_width: float
    percent_difference: float
    """100 · (model − simulated) / simulated; 0 when both are zero."""

    @property
    def within_ci(self) -> bool:
        """True if the model prediction falls inside the simulation CI."""
        return abs(self.model - self.simulated) <= self.ci_half_width


@dataclass(frozen=True)
class ValidationReport:
    """All validation rows for one tree / workload setup."""

    rows: tuple[ValidationRow, ...]
    pinned_levels: int
    policy: str

    @property
    def max_abs_percent_difference(self) -> float:
        """Worst-case |model − sim| / sim over the swept buffer sizes."""
        return max(abs(r.percent_difference) for r in self.rows)

    def to_text(self, title: str | None = None) -> str:
        lines = [title or "Model vs simulation (disk accesses per query)"]
        lines.append(
            f"{'buffer':>7} {'model':>10} {'simulated':>10} "
            f"{'ci±':>9} {'diff %':>8}"
        )
        for r in self.rows:
            lines.append(
                f"{r.buffer_size:>7} {r.model:>10.4f} {r.simulated:>10.4f} "
                f"{r.ci_half_width:>9.4f} {r.percent_difference:>8.2f}"
            )
        return "\n".join(lines)


def validate_model(
    desc: TreeDescription,
    workload,
    buffer_sizes,
    *,
    pinned_levels: int = 0,
    n_batches: int = 10,
    batch_size: int = 5000,
    policy: str = "lru",
    confidence: float = 0.90,
    rng: np.random.Generator | int | None = None,
    workers: int = 0,
) -> ValidationReport:
    """Compare the buffer model against simulation over buffer sizes.

    All simulation parameters mirror :func:`~repro.simulation.simulate`;
    the model side shares one access-probability computation across the
    sweep, and the simulation side runs the whole sweep in one pass
    through :func:`~repro.simulation.simulate_sweep` (each buffer size
    replays the same seeded stream, exactly as the old per-size loop
    did).  Passing a live ``Generator`` keeps the sequential per-size
    loop, since its capacities deliberately share generator state.
    ``workers >= 1`` shards the sweep across processes — results are
    bit-identical to ``workers=0`` (the sweep's determinism
    guarantee), so validation numbers never depend on it.
    """
    predictions = buffer_model_sweep(
        desc, workload, buffer_sizes, pinned_levels=pinned_levels
    )
    if isinstance(rng, np.random.Generator):
        measurements = [
            simulate(
                desc,
                workload,
                predicted.buffer_size,
                pinned_levels=pinned_levels,
                n_batches=n_batches,
                batch_size=batch_size,
                policy=policy,
                confidence=confidence,
                rng=rng,
            )
            for predicted in predictions
        ]
    else:
        measurements = simulate_sweep(
            desc,
            workload,
            [predicted.buffer_size for predicted in predictions],
            pinned_levels=pinned_levels,
            n_batches=n_batches,
            batch_size=batch_size,
            policy=policy,
            confidence=confidence,
            rng=rng,
            workers=workers,
        )
    rows = []
    for predicted, measured in zip(predictions, measurements):
        sim_mean = measured.disk_accesses.mean
        if sim_mean > 0:
            diff = 100.0 * (predicted.disk_accesses - sim_mean) / sim_mean
        elif predicted.disk_accesses == 0.0:
            diff = 0.0
        else:
            diff = float("inf")
        rows.append(
            ValidationRow(
                buffer_size=predicted.buffer_size,
                model=predicted.disk_accesses,
                simulated=sim_mean,
                ci_half_width=measured.disk_accesses.half_width,
                percent_difference=diff,
            )
        )
    return ValidationReport(
        rows=tuple(rows), pinned_levels=pinned_levels, policy=policy
    )
