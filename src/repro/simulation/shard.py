"""Multiprocess sharding of the Mattson stack-distance sweep.

This module is the process-pool half of
:func:`~repro.simulation.simulate_sweep` — the full design, with the
boundary math and the bit-exactness argument, lives in
``docs/PARALLELISM.md``.  The short version:

Every phase of the offline sweep is a computation over the flattened
unpinned access stream ``pages[0:n]`` whose natural decomposition is
by *contiguous stream ranges*, and every per-range kernel below is
constructed so that running it over any disjoint cover of ``[0, n)``
and merging in range order reproduces the serial arrays **bit for
bit**:

* **stab** — stabbers are pure functions of prebuilt arrays, so
  stabbing point spans in workers and concatenating in span order is
  the serial result by definition.
* **prev** — the previous-occurrence index is sharded as a
  *slice-local scan plus a boundary stitch*: each worker resolves
  ``prev`` inside its slice (a local stable argsort) and reports, per
  page, the last position it saw and the positions of first-in-slice
  occurrences; the parent then walks the shards in order, patching
  each first occurrence with the page's last position in earlier
  shards.  ``prev`` is uniquely defined, so any schedule that fills
  every position with the true previous occurrence is exact.
* **distances** — segments of :func:`~repro.accel.segmented_left_rank`
  are independent by construction, so shards cut on segment-aligned
  boundaries; the far-access snapshot tables are rebuilt per shard
  from the *global* read-only ``prev``/``nxt`` arrays with liveness
  runs clipped to the shard's boundary window, which preserves every
  per-boundary live set exactly (membership ``first[q] <= c <=
  last[q]`` is unchanged by clipping to a window containing ``c``).
* **accounting** — per-batch miss/eviction counts are sums of
  indicator variables over access ranges; integer partial sums over
  ``shard ∩ batch`` ranges added in any order are associative, so the
  merged counts equal the serial counts and the (identical) float
  batch-means path runs once, in the parent.

Workers exchange bulk data through ``multiprocessing.shared_memory``
(:class:`SharedArray`), never through pickles: inputs are attached as
read-only views, outputs through :class:`WriteGrant` views that
expose *only* the granted ``[lo, hi)`` slice — a worker structurally
cannot write outside its shard.  Ownership follows the RL012 rules:
the parent creates, grants, and finally unlinks every segment
(``dispose``); workers hold borrowed attachments that are
unregistered from the resource tracker at attach time and die with
the worker process.  Grants are the RL009 "disjoint slice" idiom made
explicit — the ``REPRO_SANITIZE=1`` sanitizer patches
:meth:`SharedArray.grant` to fail loudly on overlapping grants and on
a non-creator unlink.

The sharded path requires the ``fork`` start method (the stabber and
sampled points reach workers via fork-inherited module state);
:func:`fork_available` gates it, and ``simulate_sweep`` silently runs
its in-process path where fork does not exist.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import resource_tracker, shared_memory
from typing import NamedTuple

import numpy as np

from ..accel import segmented_left_rank
from ..obs.spans import current_tracer, span
from .engine import _CHUNK, SimulationResult

__all__ = [
    "ShmSpec",
    "SharedArray",
    "WriteGrant",
    "attach_readonly",
    "fork_available",
    "plan_shards",
    "sharded_sweep",
]


def fork_available() -> bool:
    """Whether this platform can run the sharded sweep.

    The stab phase ships its stabber to workers by forking after it is
    built; ``spawn``-only platforms fall back to the in-process path.
    """
    return "fork" in multiprocessing.get_all_start_methods()


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------


class ShmSpec(NamedTuple):
    """A picklable handle to one shared segment: name, length, dtype."""

    name: str
    length: int
    dtype: str


class WriteGrant(NamedTuple):
    """Permission to write one ``[lo, hi)`` slice of a shared array.

    The only way a worker gets a writable view: :meth:`writable` maps
    *exactly* the granted slice (the numpy view starts at ``lo`` and
    ends at ``hi``), so out-of-grant writes are impossible by
    construction, not by convention.  Grants are issued by the owning
    parent (:meth:`SharedArray.grant`), which keeps the ledger the
    sanitizer checks for overlaps.

    A grant may additionally be addressed to one process: when ``pid``
    is set, only that process is meant to map the slice writable.  The
    serving worker topology uses this to give each long-lived shard
    worker exclusive write access to its stats slots; the sanitizer
    patches :meth:`writable` to enforce the address at map time.
    """

    spec: ShmSpec
    lo: int
    hi: int
    pid: int | None = None

    def writable(self) -> np.ndarray:
        """The granted slice as a writable view (worker side)."""
        shm = _attach_shm(self.spec.name)
        itemsize = np.dtype(self.spec.dtype).itemsize
        return np.ndarray(
            (self.hi - self.lo,),
            dtype=self.spec.dtype,
            buffer=shm.buf,
            offset=self.lo * itemsize,
        )


class SharedArray:
    """A 1-D numpy array in shared memory with one owning process.

    The creator is the owner: it holds the writable full view
    (:attr:`array`), issues :class:`WriteGrant` slices to workers, and
    is the only process allowed to :meth:`dispose` (close + unlink)
    the segment.  Workers never construct these — they attach through
    :meth:`WriteGrant.writable` / :func:`attach_readonly`, borrowing the
    mapping until the worker process exits.
    """

    __slots__ = ("_shm", "length", "dtype", "owner", "created_pid", "_grants")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        length: int,
        dtype: np.dtype,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.length = int(length)
        self.dtype = np.dtype(dtype)
        self.owner = owner
        self.created_pid = os.getpid()
        self._grants: list[tuple[int, int]] = []

    @classmethod
    def create(cls, length: int, dtype) -> "SharedArray":
        """A new zero-filled owned segment of ``length`` items."""
        dtype = np.dtype(dtype)
        size = max(1, int(length) * dtype.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=size)
        return cls(shm, length, dtype, owner=True)

    @property
    def spec(self) -> ShmSpec:
        return ShmSpec(self._shm.name, self.length, self.dtype.str)

    @property
    def array(self) -> np.ndarray:
        """The owner's writable full view."""
        return np.ndarray((self.length,), dtype=self.dtype, buffer=self._shm.buf)

    def grant(self, lo: int, hi: int, *, pid: int | None = None) -> WriteGrant:
        """Grant write access to ``[lo, hi)`` (parent side).

        The ledger of outstanding grants is kept per phase; the
        sanitizer patches this method to reject overlapping grants,
        the static shape (a view that *is* the slice) does the rest.
        ``pid`` addresses the grant to one process (see
        :class:`WriteGrant`).
        """
        if not 0 <= lo <= hi <= self.length:
            raise ValueError(f"grant [{lo}, {hi}) outside [0, {self.length})")
        self._grants.append((int(lo), int(hi)))
        return WriteGrant(
            self.spec, int(lo), int(hi), None if pid is None else int(pid)
        )

    def release_grants(self) -> None:
        """Drop the grant ledger at a phase barrier (all futures done)."""
        self._grants.clear()

    def dispose(self) -> None:
        """Owner-only: close the mapping and unlink the segment."""
        if not self.owner:
            raise RuntimeError("only the owning process may dispose a segment")
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


_ATTACHED: dict[str, shared_memory.SharedMemory] = {}
_attach_lock = threading.Lock()


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach (once per process) to a segment owned by the parent.

    Attaching must *not* register the segment with the resource
    tracker: the creating parent already registered it, it alone
    unlinks it (RL012 ownership), and on Python < 3.13 (no
    ``track=False``) a borrowed attachment's registration can land in
    a worker-respawned tracker that later warns about — or worse,
    unlinks — a segment it never owned.  So the attach temporarily
    swaps ``register`` for a no-op; the swap happens under
    ``_attach_lock`` and segment *creation* never runs concurrently
    with an attach in the same process (creates all happen in the
    orchestrator before any grant is handed out).  The cached mapping
    lives until the worker process dies with its pool.
    """
    with _attach_lock:
        shm = _ATTACHED.get(name)
        if shm is None:
            original = resource_tracker.register
            resource_tracker.register = _untracked_register
            try:
                shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original
            _ATTACHED[name] = shm
    return shm


def _untracked_register(name: str, rtype: str) -> None:
    """Stand-in for ``resource_tracker.register`` during attach."""


def attach_readonly(spec: ShmSpec) -> np.ndarray:
    """A read-only full view of a shared segment (worker side)."""
    shm = _attach_shm(spec.name)
    arr = np.ndarray((spec.length,), dtype=spec.dtype, buffer=shm.buf)
    arr.setflags(write=False)
    return arr


def plan_shards(
    n: int, shards: int, *, align: int = 1
) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` spans covering ``range(n)``.

    Spans are equal-width (up to the tail), cut on multiples of
    ``align`` so segment-dependent kernels never straddle a shard
    boundary.  The cover is a pure function of ``(n, shards, align)``
    — the shard plan, and with it every merge order, is deterministic.
    """
    if n <= 0:
        return []
    shards = max(1, int(shards))
    width = -(-n // shards)
    if align > 1:
        width = -(-width // align) * align
    return [(lo, min(lo + width, n)) for lo in range(0, n, width)]


# ----------------------------------------------------------------------
# Worker-side kernels
# ----------------------------------------------------------------------
#
# Each worker self-times with the shared CLOCK_MONOTONIC epoch and
# returns a small report dict; the parent replays the reports as
# ``stackdist.shard`` spans in shard order (deterministic span ids).


def _report_start() -> dict:
    return {
        "pid": os.getpid(),
        "start_ns": time.perf_counter_ns(),
        "cpu_ns": time.thread_time_ns(),
    }


def _report_end(report: dict) -> dict:
    return {
        **report,
        "cpu_ns": time.thread_time_ns() - report["cpu_ns"],
        "end_ns": time.perf_counter_ns(),
    }


_STAB_CONTEXT: dict[int, tuple] = {}
_context_lock = threading.Lock()
_TOKENS = itertools.count()


def _stab_shard(token: int, lo: int, hi: int):
    """Stab one contiguous point span (fork-inherited stabber).

    Pure: the stabber and points are read-only state inherited at
    fork, the result is the exact slice of the serial stab.
    """
    report = _report_start()
    stabber, points = _STAB_CONTEXT[token]
    sparse = stabber.stab(points[lo:hi])
    return sparse.indptr, sparse.ids, _report_end(report)


def _prev_shard(grant: WriteGrant, pages_spec: ShmSpec, n_pages: int):
    """Slice-local previous-occurrence pass over ``pages[lo:hi)``.

    Writes the in-slice ``prev`` links into the granted slice and
    returns the two stitch tables: ``last_occ[page]`` — the last
    position of each page inside the slice (−1 if absent) — and
    ``firsts`` — the global positions of first-in-slice occurrences,
    which the parent patches with earlier shards' last occurrences.
    """
    report = _report_start()
    lo, hi = grant.lo, grant.hi
    pages = attach_readonly(pages_spec)
    sub = pages[lo:hi]
    prev_w = grant.writable()
    order = np.argsort(sub, kind="stable")
    sp = sub[order]
    same = sp[1:] == sp[:-1]
    prev_w[order[1:][same]] = order[:-1][same] + lo
    last_occ = np.full(n_pages, -1, dtype=np.int64)
    last_occ[sp] = order + lo  # stable sort: last write per page wins
    first_mask = np.ones(hi - lo, dtype=bool)
    first_mask[1:] = ~same
    firsts = order[first_mask] + lo
    return last_occ, firsts, _report_end(report)


def _distance_shard(
    grant: WriteGrant,
    prev_spec: ShmSpec,
    nxt_spec: ShmSpec,
    segment: int,
):
    """Stack distances for accesses in the (segment-aligned) shard.

    Mirrors the serial ``_stack_distances`` arithmetic exactly: near
    accesses telescope to the segment-local left rank, far accesses
    add a snapshot count of live positions.  The snapshot tables are
    rebuilt from the global read-only ``prev``/``nxt`` with liveness
    runs clipped to this shard's boundary window ``[c0, c1)`` — every
    queried boundary's live set (and hence every ``searchsorted``
    count) is identical to the serial table's.
    """
    report = _report_start()
    lo, hi = grant.lo, grant.hi
    prev = attach_readonly(prev_spec)
    nxt = attach_readonly(nxt_spec)
    n = prev.shape[0]
    sub_prev = prev[lo:hi]
    depth_w = grant.writable()
    ranks = segmented_left_rank(sub_prev, segment)
    t = np.arange(lo, hi, dtype=np.int64)
    seg_start = t - t % segment
    cold = sub_prev < 0
    near = sub_prev >= seg_start
    depth_w[near] = seg_start[near] + ranks[near] - sub_prev[near] - 1
    far = ~near & ~cold
    if np.any(far):
        n_segments = -(-n // segment)
        qseg = t[far] // segment
        c0 = int(qseg.min())
        c1 = int(qseg.max()) + 1
        tg = np.arange(n, dtype=np.int64)
        first = np.maximum(tg // segment + 1, c0)
        last = np.minimum(nxt // segment, min(n_segments - 1, c1 - 1))
        runs = np.maximum(last - first + 1, 0)
        live_pos = np.repeat(tg, runs)
        run_base = np.repeat(np.cumsum(runs) - runs, runs)
        offsets = np.arange(live_pos.shape[0], dtype=np.int64) - run_base
        keys = (np.repeat(first, runs) + offsets) * n + live_pos
        keys.sort()
        starts = np.searchsorted(
            keys, np.arange(c0, c1, dtype=np.int64) * n, side="left"
        )
        sizes = np.diff(np.append(starts, keys.shape[0]))
        at_most_p = (
            np.searchsorted(keys, qseg * n + sub_prev[far], side="right")
            - starts[qseg - c0]
        )
        depth_w[far] = sizes[qseg - c0] - at_most_p + ranks[far]
    return _report_end(report)


def _account_shard(
    prev_spec: ShmSpec,
    depth_spec: ShmSpec,
    ccold_spec: ShmSpec,
    lo: int,
    hi: int,
    capacities: np.ndarray,
    cap_bounds: np.ndarray,
):
    """Per-capacity × per-batch partial miss/eviction counts.

    ``cap_bounds[k]`` holds capacity ``k``'s batch access bounds; the
    shard counts indicators over ``shard ∩ batch`` ranges only, so the
    parent's elementwise int64 sum over shards is the serial count.
    """
    report = _report_start()
    prev = attach_readonly(prev_spec)
    depth = attach_readonly(depth_spec)
    ccold = attach_readonly(ccold_spec)
    n_caps, n_bounds = cap_bounds.shape
    miss_out = np.zeros((n_caps, n_bounds - 1), dtype=np.int64)
    evict_out = np.zeros_like(miss_out)
    for k in range(n_caps):
        bounds = cap_bounds[k]
        a0 = max(int(bounds[0]), lo)
        a1 = min(int(bounds[-1]), hi)
        if a0 >= a1:
            continue
        capacity = int(capacities[k])
        miss = (prev[a0:a1] < 0) | (depth[a0:a1] >= capacity)
        cmiss = np.zeros(a1 - a0 + 1, dtype=np.int64)
        np.cumsum(miss, out=cmiss[1:])
        rel = np.clip(bounds, a0, a1) - a0
        miss_out[k] = cmiss[rel[1:]] - cmiss[rel[:-1]]
        if capacity > 0:
            evict = miss & (ccold[a0:a1] >= capacity)
            cevict = np.zeros(a1 - a0 + 1, dtype=np.int64)
            np.cumsum(evict, out=cevict[1:])
            evict_out[k] = cevict[rel[1:]] - cevict[rel[:-1]]
    return miss_out, evict_out, _report_end(report)


# ----------------------------------------------------------------------
# Parent-side orchestration
# ----------------------------------------------------------------------


class _SparseChunk(NamedTuple):
    """Duck-typed stand-in for a stab result shipped back by a worker."""

    indptr: np.ndarray
    ids: np.ndarray


def _record_shard(report: dict, *, phase: str, shard: int, lo: int, hi: int):
    """Replay one worker report as a ``stackdist.shard`` span."""
    tracer = current_tracer()
    if tracer is None:
        return
    tracer.record_completed(
        "stackdist.shard",
        start_ns=report["start_ns"],
        end_ns=report["end_ns"],
        cpu_ns=report["cpu_ns"],
        worker=report["pid"],
        phase=phase,
        shard=shard,
        lo=lo,
        hi=hi,
        pid=report["pid"],
    )


def sharded_sweep(
    desc,
    workload,
    buffer_sizes: tuple[int, ...],
    *,
    pinned_count: int,
    n_batches: int,
    batch_size: int,
    warmup_queries: int | None,
    warmup_cap: int,
    confidence: float,
    seed: int,
    accel: str,
    workers: int,
) -> tuple[SimulationResult, ...]:
    """The process-pool sweep: bit-exact against ``workers=0``.

    Phases run in order over one fork-context pool — stab spans, the
    prev stitch, segment-aligned distances, then accounting partials —
    with the parent consuming futures in shard order, so every array
    and every float in the returned results is identical to the
    in-process path's for any ``workers >= 1``.
    """
    from .stackdist import (
        _LR_SEGMENT,
        _assemble_result,
        _capacity_bounds,
        _generate_stream,
        _warmup_for,
    )

    capacities = [b - pinned_count for b in buffer_sizes]
    measurement = n_batches * batch_size
    ctx = multiprocessing.get_context("fork")
    with _context_lock:
        token = next(_TOKENS)
    pool: ProcessPoolExecutor | None = None
    segments: list[SharedArray] = []

    def ensure_pool() -> ProcessPoolExecutor:
        nonlocal pool
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
        return pool

    def tail_stab(stabber, points):
        remaining = points.shape[0]
        if remaining < 2 * _CHUNK:
            return [stabber.stab(points)]
        with _context_lock:
            _STAB_CONTEXT[token] = (stabber, points)
        executor = ensure_pool()  # forks *after* the context is set
        spans_ = plan_shards(remaining, workers)
        futures = [
            executor.submit(_stab_shard, token, lo, hi)
            for lo, hi in spans_
        ]
        chunks = []
        for i, ((lo, hi), fut) in enumerate(zip(spans_, futures)):
            indptr, ids, report = fut.result()
            _record_shard(report, phase="stream", shard=i, lo=lo, hi=hi)
            chunks.append(_SparseChunk(indptr, ids))
        return chunks

    try:
        with span("stackdist.stream", workers=workers) as stream_span:
            stream = _generate_stream(
                desc,
                workload,
                pinned_count=pinned_count,
                max_capacity=max(capacities),
                measurement=measurement,
                warmup_queries=warmup_queries,
                warmup_cap=warmup_cap,
                seed=seed,
                accel=accel,
                tail_stab=tail_stab,
            )
            stream_span.set_attrs(
                queries=stream.n_queries,
                accesses=int(stream.q_indptr[-1]),
                unpinned=int(stream.pages.size),
                backend=stream.backend,
            )

        n = int(stream.pages.shape[0])
        n_pages = int(desc.total_nodes)

        with span("stackdist.distances", accesses=n, workers=workers):
            pages_sh = SharedArray.create(n, np.int64)
            prev_sh = SharedArray.create(n, np.int64)
            nxt_sh = SharedArray.create(n, np.int64)
            depth_sh = SharedArray.create(n, np.int64)
            ccold_sh = SharedArray.create(n + 1, np.int64)
            segments += [pages_sh, prev_sh, nxt_sh, depth_sh, ccold_sh]
            pages_sh.array[:] = stream.pages

            executor = ensure_pool()
            spans_ = plan_shards(n, workers)
            futures = [
                executor.submit(
                    _prev_shard, prev_sh.grant(lo, hi), pages_sh.spec, n_pages
                )
                for lo, hi in spans_
            ]
            prev_view = prev_sh.array
            last_global = np.full(n_pages, -1, dtype=np.int64)
            for i, ((lo, hi), fut) in enumerate(zip(spans_, futures)):
                last_occ, firsts, report = fut.result()
                # Stitch: a first-in-slice occurrence's true prev is
                # its page's last occurrence in any earlier shard.
                if firsts.size:
                    prev_view[firsts] = last_global[stream.pages[firsts]]
                np.copyto(last_global, last_occ, where=last_occ >= 0)
                _record_shard(report, phase="prev", shard=i, lo=lo, hi=hi)
            prev_sh.release_grants()

            # Serial epilogue on owner views: running cold counts and
            # the next-occurrence scatter (cheap, order-dependent).
            cold = prev_view < 0
            ccold_view = ccold_sh.array
            ccold_view[0] = 0
            np.cumsum(cold, out=ccold_view[1:])
            nxt_view = nxt_sh.array
            nxt_view[:] = n
            warm_idx = np.nonzero(~cold)[0]
            nxt_view[prev_view[warm_idx]] = warm_idx

            seg_spans = plan_shards(n, workers, align=_LR_SEGMENT)
            futures = [
                executor.submit(
                    _distance_shard,
                    depth_sh.grant(lo, hi),
                    prev_sh.spec,
                    nxt_sh.spec,
                    _LR_SEGMENT,
                )
                for lo, hi in seg_spans
            ]
            for i, ((lo, hi), fut) in enumerate(zip(seg_spans, futures)):
                report = fut.result()
                _record_shard(report, phase="distances", shard=i, lo=lo, hi=hi)
            depth_sh.release_grants()

        warmups = [
            _warmup_for(stream, c, warmup_queries, warmup_cap)
            for c in capacities
        ]
        per_cap = [
            _capacity_bounds(stream, w, n_batches, batch_size)
            for w in warmups
        ]
        caps_arr = np.asarray(capacities, dtype=np.int64)
        cap_bounds = np.stack([bounds for _, bounds in per_cap])

        with span("stackdist.accounting", workers=workers):
            executor = ensure_pool()
            acc_spans = plan_shards(n, workers)
            futures = [
                executor.submit(
                    _account_shard,
                    prev_sh.spec,
                    depth_sh.spec,
                    ccold_sh.spec,
                    lo,
                    hi,
                    caps_arr,
                    cap_bounds,
                )
                for lo, hi in acc_spans
            ]
            miss = np.zeros((len(buffer_sizes), n_batches), dtype=np.int64)
            evict = np.zeros_like(miss)
            for i, ((lo, hi), fut) in enumerate(zip(acc_spans, futures)):
                miss_part, evict_part, report = fut.result()
                miss += miss_part
                evict += evict_part
                _record_shard(report, phase="account", shard=i, lo=lo, hi=hi)

        results = []
        for k, size in enumerate(buffer_sizes):
            batch_queries, access_bounds = per_cap[k]
            with span(
                "stackdist.capacity",
                buffer_size=size,
                capacity=capacities[k],
                warmup=warmups[k],
            ):
                results.append(
                    _assemble_result(
                        stream,
                        capacity=capacities[k],
                        warmed=warmups[k],
                        batch_queries=batch_queries,
                        miss_b=miss[k],
                        evict_b=evict[k],
                        resident=int(ccold_view[access_bounds[0]]),
                        batch_size=batch_size,
                        confidence=confidence,
                    )
                )
        return tuple(results)
    finally:
        if pool is not None:
            pool.shutdown()
        with _context_lock:
            _STAB_CONTEXT.pop(token, None)
        for segment in segments:
            segment.dispose()
