"""Batch-means confidence intervals.

The paper's validation collects "confidence intervals ... using batch
means with 20 batches of 1,000,000 queries each, resulting in
confidence intervals of less than 3 percent at a 90 percent confidence
level" (§4).  This module provides the same machinery: per-batch means
are treated as (approximately) independent observations and a Student-t
interval is formed around their grand mean.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from .stats import student_t_quantile

__all__ = ["BatchMeansEstimate", "batch_means"]


@dataclass(frozen=True)
class BatchMeansEstimate:
    """A point estimate with a batch-means confidence interval."""

    mean: float
    """Grand mean over all batches."""
    half_width: float
    """Half-width of the confidence interval."""
    confidence: float
    """Confidence level, e.g. 0.90."""
    batch_values: tuple[float, ...]
    """The per-batch means the estimate was formed from."""

    @property
    def n_batches(self) -> int:
        """Number of batches."""
        return len(self.batch_values)

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (inf for a zero mean)."""
        if self.mean == 0.0:
            return 0.0 if self.half_width == 0.0 else math.inf
        return self.half_width / abs(self.mean)

    @property
    def interval(self) -> tuple[float, float]:
        """The confidence interval ``(low, high)``."""
        return self.mean - self.half_width, self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.6g} ± {self.half_width:.2g} "
            f"({self.confidence:.0%} CI, {self.n_batches} batches)"
        )


def batch_means(
    values: Sequence[float], confidence: float = 0.90
) -> BatchMeansEstimate:
    """Form a Student-t confidence interval from per-batch means.

    Parameters
    ----------
    values:
        One mean per batch (at least two batches).
    confidence:
        Two-sided confidence level in (0, 1); the paper uses 0.90.
    """
    values = tuple(float(v) for v in values)
    if len(values) < 2:
        raise ValueError("batch means needs at least two batches")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std_err = math.sqrt(variance / n)
    t = student_t_quantile(0.5 + confidence / 2.0, df=n - 1)
    return BatchMeansEstimate(
        mean=mean,
        half_width=t * std_err,
        confidence=confidence,
        batch_values=values,
    )
