"""Single-pass multi-capacity LRU simulation via Mattson stack distances.

A buffer-size sweep (fig6 / fig9 / fig11, Table 1, ``validate_model``)
replays the same query stream once per buffer size; since the stabbing
side went sparse (PR 3) the per-request Python LRU loop in
:mod:`repro.simulation.engine` dominates, and the sweep pays it ``K``
times for ``K`` capacities.  Mattson's *inclusion property* removes
the ``K``: an LRU buffer of capacity ``C`` always holds the ``C`` most
recently used distinct pages, so a single offline pass that computes
each access's **stack distance** — the number of distinct pages
touched since the previous access to the same page — determines the
hit/miss outcome at *every* capacity at once:

    miss at capacity ``C``  ⇔  first access, or stack distance ≥ ``C``.

The stack distance itself is a 2-D dominance count.  With ``prev[t]``
the position of the previous access to ``page[t]`` (−1 when cold),

    D(t) = #{ s : prev[t] < s < t  and  prev[s] <= prev[t] }

(an access ``s`` inside the reuse window contributes one *distinct*
page exactly when its own previous access lies outside the window).
Because ``prev[s] < s`` always, every ``s <= prev[t]`` satisfies the
value condition for free, which collapses the window count into a pure
positional *left rank*:

    D(t) = #{ s < t : prev[s] <= prev[t] } − prev[t] − 1.

A global left rank is still O(n log² n) with fat constants (the
binary-indexed mergesort tree of
:meth:`repro.accel.SortedRangeCounter.prefix_rank`, kept as the
reference oracle in the tests).  The engine instead splits the stream
into fixed segments and exploits the small page alphabet (pages =
tree nodes):

* ``prev[t]`` inside ``t``'s segment — the count telescopes to the
  segment-local left rank of
  :func:`repro.accel.segmented_left_rank`, a shallow two-level
  merge-count kernel run over all segments in lock-step (and in
  parallel across segment spans);
* ``prev[t]`` before the segment — the distinct pages in the window
  split at the segment boundary into a *snapshot* term (live pages at
  the boundary whose last access is after ``prev[t]``) plus the same
  segment-local rank.  Each position ``q`` is live for a contiguous
  run of segment boundaries (until its page's next access), so every
  snapshot table materialises at once from one ``np.repeat`` and one
  sort, and one flat offset-keyed ``searchsorted`` serves every
  query — no per-segment Python loop anywhere.

Pinning reduction (§3.3): pinned pages always hit and never occupy the
LRU area, so they are excluded from the access stream and every
capacity is reduced by the pin count before the comparison; requests
against pinned pages still count as node accesses.

Warm-up honours the online engine's semantics exactly: the measurement
window of capacity ``C`` starts at the first warm-up chunk boundary at
which the buffer has filled (the number of *distinct* unpinned pages
seen reaches the unpinned capacity), capped at ``warmup_cap`` — so a
bigger buffer warms up longer, just as in per-capacity simulation, and
the per-batch counters are bit-exact against
:func:`~repro.simulation.engine.simulate` (same batch-means values,
same :class:`~repro.buffer.BufferStats` snapshots).

The inclusion property is LRU-specific — FIFO/CLOCK/RANDOM buffers do
not nest — but a weaker, still valuable saving applies to FIFO and
CLOCK: the *query stream* is shared across capacities even when the
hit/miss outcomes are not.  Those policies take the **replay** path:
sample and stab the stream once (the expensive, vectorizable part),
then replay the unpinned page sequence through one real buffer per
capacity — bit-exact against per-capacity ``simulate()`` by
construction, paying the Python buffer loop per capacity but the
sampling/stabbing only once.  :class:`~repro.queries.MixedWorkload`
joins the same path (for LRU/FIFO/CLOCK) when ``warmup_queries`` is
explicit, which fixes the chunk schedule so every capacity consumes
the generator identically; with warm-up-until-full its component/point
draws would interleave differently per warm-up length, so that
combination — and RANDOM, whose eviction draws share the sampling
generator — falls back to per-capacity simulation (still one call,
same results, no speedup).

One small thread pool serves the whole pass: the measurement tail is
stabbed in contiguous spans (stabbers are pure reads over prebuilt
arrays), the left-rank kernel splits across segment-aligned spans
(segments are independent by construction), and per-capacity
accounting fans out one task per buffer size.  Every split is
order-preserving, so results never depend on the thread count — and
the sweep is the first genuinely concurrent workload under the
thread-safe span tracer (``stackdist.capacity`` spans carry worker
thread ids).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..accel import make_stabber, segmented_left_rank
from ..buffer import BufferStats, PinningError, POLICIES
from ..obs import MetricsRegistry
from ..obs.spans import span
from ..queries.mixed import MixedWorkload
from ..rtree import TreeDescription
from .batchmeans import batch_means
from .engine import _CHUNK, SimulationResult, _mixed_rows, simulate

__all__ = ["simulate_sweep"]

_MAX_SWEEP_THREADS = 4
"""Default upper bound on the sweep's worker thread pool."""

_LR_SEGMENT = 512
"""Segment length of the stack-distance kernel: both the left-rank
segments and the snapshot boundaries.  Must be a multiple of the
left-rank block (64).  Short segments keep the lock-step merge shallow
— measured fastest around 512 for streams near 10⁶ accesses."""


def _sharding_available() -> bool:
    """Whether ``workers > 0`` can actually shard (fork platforms)."""
    from .shard import fork_available

    return fork_available()


def simulate_sweep(
    desc: TreeDescription,
    workload,
    buffer_sizes,
    *,
    pinned_levels: int = 0,
    n_batches: int = 20,
    batch_size: int = 5000,
    warmup_queries: int | None = None,
    warmup_cap: int = 100_000,
    policy: str = "lru",
    confidence: float = 0.90,
    rng: int | None = None,
    registry: MetricsRegistry | None = None,
    accel: str = "auto",
    max_threads: int = _MAX_SWEEP_THREADS,
    workers: int = 0,
) -> tuple[SimulationResult, ...]:
    """Simulate every buffer size in one pass over one query stream.

    This is the engine behind every buffer-sensitivity curve of the
    paper — Fig. 6 (buffer size vs. disk accesses), Fig. 9 (loader
    comparison) and Fig. 11 (pinning levels), plus the Table 1 probes
    and the analytic-model validation — all of which sweep the same
    workload over many buffer capacities.

    Returns one :class:`~repro.simulation.SimulationResult` per entry
    of ``buffer_sizes`` (in order), each bit-exact against the result
    of :func:`~repro.simulation.simulate` called with the same
    parameters and that single buffer size: identical per-batch
    :class:`~repro.buffer.BufferStats`, batch-means estimates, warm-up
    counts and ``buffer_filled`` flags.

    **Determinism guarantee.**  For a fixed ``(workload, seed)`` the
    returned tuple is a pure function of the simulation parameters:
    it does not depend on ``max_threads``, on ``workers``, on the
    ``accel`` backend, or on how the OS schedules threads or worker
    processes.  Every internal split is over contiguous stream ranges
    merged in range order, and every floating-point reduction runs on
    one code path from identical integer counts (see
    ``docs/PARALLELISM.md`` for the argument, phase by phase).

    Parameters mirror :func:`~repro.simulation.simulate`, except:

    rng:
        A seed (or ``None`` for the default seed 0).  A live
        ``Generator`` is rejected — per-capacity equivalence requires
        replaying the stream from a known seed.
    registry:
        When given, the sweep records a ``simulate.sweep`` timer and
        ``sweep.*`` gauges.  Per-level sinks and query traces are a
        per-capacity affair — use :func:`~repro.simulation.simulate`
        (e.g. the metrics probes) when you need ``level_stats``.
    max_threads:
        Worker threads shared by every phase of the in-process pass —
        stabbing the measurement tail, the segmented left-rank kernel,
        and per-capacity accounting.  Results never depend on it.
    workers:
        ``0`` (the default) runs the in-process path above.  ``>= 1``
        shards the sweep across that many *processes* over shared
        memory (:mod:`repro.simulation.shard`) — same results, no GIL.
        Platforms without the ``fork`` start method, and the fallback
        cases below, silently use the in-process path.

    Raises :class:`~repro.buffer.PinningError` when any swept size
    cannot hold the pinned levels — filter infeasible sizes first
    (fig11 does).  FIFO/CLOCK (and mixed workloads with explicit
    ``warmup_queries``) take the shared-stream *replay* path; RANDOM
    and until-full mixed sweeps fall back to per-capacity simulation
    internally.  Results are identical on every route — the route only
    changes speed (``workers`` applies to the stackdist route only).
    """
    if n_batches < 2:
        raise ValueError("need at least two batches for confidence intervals")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if warmup_cap < 0:
        raise ValueError("warmup_cap must be non-negative")
    if not 0 <= pinned_levels <= desc.height:
        raise ValueError(f"pinned_levels must be in [0, {desc.height}]")
    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; choices: {sorted(POLICIES)}"
        )
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = in-process sweep)")
    if rng is not None and not isinstance(rng, (int, np.integer)):
        raise TypeError(
            "simulate_sweep needs a reproducible seed (int or None), not a "
            "Generator: every capacity must replay the same query stream"
        )
    buffer_sizes = tuple(int(b) for b in buffer_sizes)
    if not buffer_sizes:
        raise ValueError("buffer_sizes must not be empty")
    if any(b < 1 for b in buffer_sizes):
        raise ValueError("buffer capacity must be at least 1 page")
    pinned_count = int(desc.level_offsets[pinned_levels])
    too_small = [b for b in buffer_sizes if b < pinned_count]
    if too_small:
        raise PinningError(
            f"cannot pin {pinned_count} pages in a "
            f"{min(too_small)}-page buffer"
        )
    seed = 0 if rng is None else int(rng)

    mixed = isinstance(workload, MixedWorkload)
    stackdist_ok = policy == "lru" and not mixed
    replay_ok = (
        not stackdist_ok
        and policy in ("lru", "fifo", "clock")
        and (not mixed or warmup_queries is not None)
    )
    fallback = not stackdist_ok and not replay_ok
    mode = (
        "stackdist" if stackdist_ok else "replay" if replay_ok else "fallback"
    )
    root = span(
        "simulate.sweep",
        capacities=len(buffer_sizes),
        policy=policy,
        accel=accel,
        levels=desc.height,
        nodes=desc.total_nodes,
        pinned_levels=pinned_levels,
        n_batches=n_batches,
        batch_size=batch_size,
        mode=mode,
        workers=workers,
    )
    started = time.perf_counter_ns() if registry is not None else 0
    with root:
        if fallback:
            results = tuple(
                simulate(
                    desc,
                    workload,
                    b,
                    pinned_levels=pinned_levels,
                    n_batches=n_batches,
                    batch_size=batch_size,
                    warmup_queries=warmup_queries,
                    warmup_cap=warmup_cap,
                    policy=policy,
                    confidence=confidence,
                    rng=seed,
                    accel=accel,
                )
                for b in buffer_sizes
            )
        elif replay_ok:
            results = _replay_sweep(
                desc,
                workload,
                buffer_sizes,
                pinned_count=pinned_count,
                policy=policy,
                n_batches=n_batches,
                batch_size=batch_size,
                warmup_queries=warmup_queries,
                warmup_cap=warmup_cap,
                confidence=confidence,
                seed=seed,
                accel=accel,
            )
        elif workers > 0 and _sharding_available():
            # Deferred import: shard.py reuses this module's kernels
            # (the RL008-sanctioned escape hatch for the back edge).
            from .shard import sharded_sweep

            results = sharded_sweep(
                desc,
                workload,
                buffer_sizes,
                pinned_count=pinned_count,
                n_batches=n_batches,
                batch_size=batch_size,
                warmup_queries=warmup_queries,
                warmup_cap=warmup_cap,
                confidence=confidence,
                seed=seed,
                accel=accel,
                workers=workers,
            )
        else:
            results = _stackdist_sweep(
                desc,
                workload,
                buffer_sizes,
                pinned_count=pinned_count,
                n_batches=n_batches,
                batch_size=batch_size,
                warmup_queries=warmup_queries,
                warmup_cap=warmup_cap,
                confidence=confidence,
                seed=seed,
                accel=accel,
                max_threads=max_threads,
            )
    if registry is not None:
        registry.timer("simulate.sweep").record(
            (time.perf_counter_ns() - started) / 1e9
        )
        registry.gauge("sweep.capacities").set(len(buffer_sizes))
        registry.gauge("sweep.pinned_pages").set(pinned_count)
        registry.gauge("sim.batches").set(n_batches)
        registry.gauge("sim.batch_size").set(batch_size)
    return results


# ----------------------------------------------------------------------
# The offline engine
# ----------------------------------------------------------------------


class _Stream:
    """The flattened access stream shared by every capacity.

    ``q_indptr`` delimits each query's accesses (pinned included), so
    ``q_indptr[q+1] - q_indptr[q]`` is query ``q``'s node-access
    count.  ``pages`` / ``q_of_page`` are the unpinned subsequence the
    LRU area sees, in request order.  ``bounds`` / ``bound_distinct``
    are the warm-up chunk boundaries (cumulative query counts) with
    the number of distinct unpinned pages seen at each — the data the
    online engine's "warm up until full" check reads.
    """

    __slots__ = (
        "q_indptr",
        "pages",
        "q_of_page",
        "bounds",
        "bound_distinct",
        "backend",
    )

    def __init__(
        self,
        q_indptr: np.ndarray,
        pages: np.ndarray,
        q_of_page: np.ndarray,
        bounds: np.ndarray,
        bound_distinct: np.ndarray,
        backend: str,
    ) -> None:
        self.q_indptr = q_indptr
        self.pages = pages
        self.q_of_page = q_of_page
        self.bounds = bounds
        self.bound_distinct = bound_distinct
        self.backend = backend

    @property
    def n_queries(self) -> int:
        return self.q_indptr.shape[0] - 1


def _warmup_schedule(warmup_queries: int | None, warmup_cap: int) -> list[int]:
    """The online engine's warm-up chunk sizes, in order.

    ``simulate`` warms up in ``min(_CHUNK, remaining)`` steps — either
    until the buffer fills (capped at ``warmup_cap``) or for exactly
    ``warmup_queries``.  The sweep samples the same chunks so the
    buffer-full check lands on the same query boundaries.
    """
    total = warmup_cap if warmup_queries is None else warmup_queries
    steps: list[int] = []
    done = 0
    while done < total:
        step = min(_CHUNK, total - done)
        steps.append(step)
        done += step
    return steps


def _generate_stream(
    desc: TreeDescription,
    workload,
    *,
    pinned_count: int,
    max_capacity: int,
    measurement: int,
    warmup_queries: int | None,
    warmup_cap: int,
    seed: int,
    accel: str,
    tail_stab=None,
) -> _Stream:
    """Sample and stab the shared query stream, chunk by chunk.

    The warm-up region reproduces the online engine's chunk schedule
    so the buffer-full boundaries land on the same query indices.
    Every built-in non-mixed workload consumes the generator as a
    function of the *total* sample count only, so chunk boundaries
    never change the sampled stream — the contract the sweep's
    bit-exactness rests on.  It also lets the measurement tail sample
    in one draw and hand the points to ``tail_stab`` — a strategy
    callable ``(stabber, points) -> iterable of sparse chunks`` that
    may stab contiguous point spans on a thread pool or a process
    pool (stabbers are stateless pure reads), as long as it yields
    the chunks in stream order.  ``None`` stabs in one serial call.
    Any order-preserving split produces the identical stream, so the
    sampled/stabbed result never depends on the execution strategy.
    """
    transformed = workload.transformed_rects(desc.all_rects)
    budget = warmup_cap if warmup_queries is None else warmup_queries
    stabber = make_stabber(
        transformed, mode=accel, n_points=budget + measurement
    )
    rng = np.random.default_rng(seed)

    lengths: list[np.ndarray] = []
    id_chunks: list[np.ndarray] = []
    seen = np.zeros(desc.total_nodes, dtype=bool)
    distinct = 0
    generated = 0
    bounds = [0]
    bound_distinct = [0]

    def ingest(sparse) -> np.ndarray:
        ids = sparse.ids.astype(np.int64, copy=False)
        lengths.append(np.diff(sparse.indptr).astype(np.int64))
        id_chunks.append(ids)
        return ids

    # Warm-up region: stop early once every swept capacity can have
    # filled (the remaining schedule steps cannot change any W).  The
    # distinct-page tracking is sequential, so this part stays serial.
    for step in _warmup_schedule(warmup_queries, warmup_cap):
        if warmup_queries is None and distinct >= max_capacity:
            break
        ids = ingest(stabber.stab(workload.sample_points(step, rng)))
        fresh = np.unique(ids[ids >= pinned_count])
        fresh = fresh[~seen[fresh]]
        seen[fresh] = True
        distinct += int(fresh.size)
        generated += step
        bounds.append(generated)
        bound_distinct.append(distinct)

    # Measurement tail: the largest warm-up any capacity can report is
    # the last recorded boundary, so `generated` already covers every
    # W; extend by the measurement window.
    target = (bounds[-1] if warmup_queries is None else warmup_queries)
    target += measurement
    remaining = target - generated
    if remaining > 0:
        points = workload.sample_points(remaining, rng)
        if tail_stab is None:
            ingest(stabber.stab(points))
        else:
            for sparse in tail_stab(stabber, points):
                ingest(sparse)

    all_lengths = np.concatenate(lengths)[:target]
    q_indptr = np.zeros(target + 1, dtype=np.int64)
    np.cumsum(all_lengths, out=q_indptr[1:])
    ids = np.concatenate(id_chunks)[: q_indptr[-1]]
    q_of_access = np.repeat(np.arange(target, dtype=np.int64), all_lengths)
    unpinned = ids >= pinned_count
    return _Stream(
        q_indptr=q_indptr,
        pages=ids[unpinned],
        q_of_page=q_of_access[unpinned],
        bounds=np.asarray(bounds, dtype=np.int64),
        bound_distinct=np.asarray(bound_distinct, dtype=np.int64),
        backend=type(stabber).__name__,
    )


def _left_ranks(
    prev: np.ndarray,
    pool: ThreadPoolExecutor | None,
    workers: int,
) -> np.ndarray:
    """Segment-local left ranks of ``prev``, split across the pool.

    Segments are independent in :func:`~repro.accel.
    segmented_left_rank`, so slicing on segment-aligned boundaries and
    concatenating in order is exact regardless of ``workers``.
    """
    n = prev.shape[0]
    if pool is None or workers < 2 or n < 4 * _LR_SEGMENT:
        return segmented_left_rank(prev, _LR_SEGMENT)
    n_segments = -(-n // _LR_SEGMENT)
    width = -(-n_segments // workers) * _LR_SEGMENT
    cuts = range(0, n, width)
    parts = pool.map(
        lambda at: segmented_left_rank(prev[at : at + width], _LR_SEGMENT),
        cuts,
    )
    return np.concatenate(list(parts))


def _stack_distances(
    pages: np.ndarray,
    pool: ThreadPoolExecutor | None = None,
    workers: int = 1,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-access ``(cold, depth, ccold)`` arrays.

    ``cold`` marks first accesses (misses at every capacity);
    ``depth`` is the stack distance of each non-cold access (distinct
    pages touched since the previous access to the same page — the
    access hits a capacity-``C`` LRU iff ``depth < C``);
    ``ccold`` (length ``n + 1``) is the running distinct-page count:
    ``ccold[t]`` pages were seen strictly before access ``t`` — the
    online buffer's resident count until it fills, which decides
    whether a miss evicts and whether the buffer is full at the
    warm-up boundary.

    Distances come from the left-rank identity split at segment
    boundaries (see the module docstring).  Writing ``T`` for the
    start of ``t``'s segment, ``p = prev[t]`` and ``W(t)`` for the
    segment-local left rank of ``p`` among ``prev[T:t]``:

    * ``p >= T``:  the global left rank below ``T`` telescopes — every
      ``s < T`` has ``prev[s] < T <= p`` — so
      ``depth = T + W(t) - p - 1``;
    * ``p < T``:  the in-segment part is ``W(t)`` verbatim, and the
      part in ``(p, T)`` is the number of distinct pages touched there
      — the live positions at ``T`` greater than ``p``, read off the
      snapshot table (``p`` itself is live and lands on the ``<= p``
      side, so ``page[t]`` is never double-counted).
    """
    n = pages.shape[0]
    prev = np.full(n, -1, dtype=np.int64)
    if n:
        order = np.argsort(pages, kind="stable")
        sorted_pages = pages[order]
        same = sorted_pages[1:] == sorted_pages[:-1]
        prev[order[1:][same]] = order[:-1][same]
    cold = prev < 0
    ccold = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(cold, out=ccold[1:])

    depth = np.zeros(n, dtype=np.int64)
    if n == 0:
        return cold, depth, ccold

    ranks = _left_ranks(prev, pool, workers)
    t = np.arange(n, dtype=np.int64)
    seg_start = t - t % _LR_SEGMENT
    near = prev >= seg_start  # implies warm: cold prev = -1 < seg_start
    depth[near] = seg_start[near] + ranks[near] - prev[near] - 1
    far = ~near & ~cold
    if np.any(far):
        # Live-position snapshot tables, all segments at once.  A
        # position q is *live* at boundary c·S when its page is not
        # re-accessed before the boundary: q's liveness run spans
        # boundaries (q // S)+1 .. min(nxt[q] // S, last).  depth for
        # a far access then counts live positions > p at its boundary
        # (distinct pages last touched after p) plus W(t), whose
        # below-boundary candidates (prev < T, including cold) all
        # have prev <= p counted consistently by construction.
        nxt = np.full(n, n, dtype=np.int64)
        warm_idx = np.nonzero(~cold)[0]
        nxt[prev[warm_idx]] = warm_idx
        n_segments = -(-n // _LR_SEGMENT)
        first = t // _LR_SEGMENT + 1
        last = np.minimum(nxt // _LR_SEGMENT, n_segments - 1)
        runs = np.maximum(last - first + 1, 0)
        live_pos = np.repeat(t, runs)
        run_base = np.repeat(np.cumsum(runs) - runs, runs)
        offsets = np.arange(live_pos.shape[0], dtype=np.int64) - run_base
        keys = (np.repeat(first, runs) + offsets) * n + live_pos
        keys.sort()
        starts = np.searchsorted(
            keys, np.arange(n_segments, dtype=np.int64) * n, side="left"
        )
        sizes = np.diff(np.append(starts, keys.shape[0]))
        qseg = t[far] // _LR_SEGMENT
        at_most_p = (
            np.searchsorted(keys, qseg * n + prev[far], side="right")
            - starts[qseg]
        )
        depth[far] = sizes[qseg] - at_most_p + ranks[far]
    return cold, depth, ccold


def _warmup_for(
    stream: _Stream,
    capacity: int,
    warmup_queries: int | None,
    warmup_cap: int,
) -> int:
    """Queries this capacity warms up for — the online ``W``.

    With an explicit ``warmup_queries`` every capacity uses it; with
    warm-up-until-full it is the first chunk boundary at which the
    distinct unpinned pages seen reach the (unpinned) capacity, capped
    at ``warmup_cap``.  A zero-capacity LRU area is full immediately.
    """
    if warmup_queries is not None:
        return warmup_queries
    if capacity <= 0:
        return 0
    filled = np.nonzero(stream.bound_distinct >= capacity)[0]
    if filled.size:
        return int(stream.bounds[filled[0]])
    return warmup_cap


def _capacity_bounds(
    stream: _Stream,
    warmed: int,
    n_batches: int,
    batch_size: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Batch boundaries of one capacity's measurement window.

    Returns ``(batch_queries, access_bounds)``: the cumulative query
    counts delimiting each batch and the matching unpinned-access
    bounds — the only quantities the counting kernels need, shared
    verbatim by the serial and sharded accounting paths.
    """
    batch_queries = warmed + batch_size * np.arange(
        n_batches + 1, dtype=np.int64
    )
    access_bounds = np.searchsorted(stream.q_of_page, batch_queries, "left")
    return batch_queries, access_bounds


def _assemble_result(
    stream: _Stream,
    *,
    capacity: int,
    warmed: int,
    batch_queries: np.ndarray,
    miss_b: np.ndarray,
    evict_b: np.ndarray,
    resident: int,
    batch_size: int,
    confidence: float,
    filled: bool | None = None,
) -> SimulationResult:
    """Integer per-batch counts → one ``SimulationResult``.

    The single float path of the sweep: both the serial counts and the
    merged shard partials are exact int64 per-batch totals, so routing
    them through this one function makes the two paths bit-identical
    by construction.  ``resident`` is the distinct unpinned pages seen
    before the first measured access (``ccold`` at the window start) —
    the online buffer's resident count when ``is_full`` was last
    checked.  The replay path passes ``filled`` explicitly (it read
    ``is_full()`` off a real buffer) and ``resident=0``.
    """
    req_b = stream.q_indptr[batch_queries[1:]] - stream.q_indptr[
        batch_queries[:-1]
    ]

    snapshots = []
    for requests, misses, evictions in zip(req_b, miss_b, evict_b):
        stats = BufferStats()
        stats.requests = int(requests)
        stats.hits = int(requests - misses)
        stats.misses = int(misses)
        stats.evictions = int(evictions)
        snapshots.append(stats)

    if filled is None:
        filled = capacity <= 0 or resident >= capacity

    return SimulationResult(
        disk_accesses=batch_means(
            [m / batch_size for m in miss_b], confidence=confidence
        ),
        node_accesses=batch_means(
            [r / batch_size for r in req_b], confidence=confidence
        ),
        warmup_queries=warmed,
        buffer_filled=filled,
        batch_stats=tuple(snapshots),
    )


def _account_capacity(
    stream: _Stream,
    cold: np.ndarray,
    depth: np.ndarray,
    ccold: np.ndarray,
    *,
    capacity: int,
    warmed: int,
    n_batches: int,
    batch_size: int,
    confidence: float,
) -> SimulationResult:
    """Batch-means accounting for one capacity over the shared arrays.

    Reproduces exactly what the online engine's ``BufferStats`` would
    have counted in each measurement batch: every node access is a
    request, an unpinned access misses iff it is cold or its stack
    distance reaches the capacity, and a miss evicts iff the buffer
    was already full (``ccold[t] >= capacity``; never when the
    unpinned area has zero capacity, where pages are read and
    discarded).
    """
    batch_queries, access_bounds = _capacity_bounds(
        stream, warmed, n_batches, batch_size
    )
    # Unpinned-access bounds of each batch, then exclusive prefix sums
    # -> exact integer per-batch counts.
    lo, hi = access_bounds[0], access_bounds[-1]
    miss = cold[lo:hi] | (depth[lo:hi] >= capacity)
    if capacity > 0:
        evict = miss & (ccold[lo:hi] >= capacity)
    else:
        evict = np.zeros_like(miss)
    cmiss = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(miss, dtype=np.int64)]
    )
    cevict = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(evict, dtype=np.int64)]
    )
    rel = access_bounds - lo
    miss_b = cmiss[rel[1:]] - cmiss[rel[:-1]]
    evict_b = cevict[rel[1:]] - cevict[rel[:-1]]
    return _assemble_result(
        stream,
        capacity=capacity,
        warmed=warmed,
        batch_queries=batch_queries,
        miss_b=miss_b,
        evict_b=evict_b,
        resident=int(ccold[lo]),
        batch_size=batch_size,
        confidence=confidence,
    )


# ----------------------------------------------------------------------
# The shared-stream replay engine (FIFO/CLOCK, fixed-warm-up mixtures)
# ----------------------------------------------------------------------


def _generate_mixed_stream(
    desc: TreeDescription,
    workload: MixedWorkload,
    *,
    pinned_count: int,
    n_batches: int,
    batch_size: int,
    warmup_queries: int,
    warmup_cap: int,
    seed: int,
    accel: str,
) -> _Stream:
    """The shared stream for a mixture with an explicit warm-up.

    A mixture's generator consumption *does* depend on chunk
    boundaries (component assignments and per-component point draws
    interleave per chunk), so this replays the online engine's exact
    chunk schedule: the ``_warmup_schedule`` steps followed by each
    batch in ``min(_CHUNK, remaining)`` steps.  With ``warmup_queries``
    fixed, that schedule — hence the sampled stream — is identical for
    every capacity, which is precisely why the replay path requires an
    explicit warm-up for mixtures.
    """
    transformed = workload.component_transforms(desc.all_rects)
    budget = warmup_queries + n_batches * batch_size
    stabbers = [
        make_stabber(t, mode=accel, n_points=budget) for t in transformed
    ]
    rng = np.random.default_rng(seed)

    schedule = _warmup_schedule(warmup_queries, warmup_cap)
    for _ in range(n_batches):
        remaining = batch_size
        while remaining > 0:
            step = min(_CHUNK, remaining)
            schedule.append(step)
            remaining -= step

    lengths: list[np.ndarray] = []
    id_chunks: list[np.ndarray] = []
    for count in schedule:
        rows = _mixed_rows(stabbers, workload, rng, count)
        lengths.append(
            np.fromiter((row.size for row in rows), np.int64, count=count)
        )
        id_chunks.append(
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )

    total = budget
    all_lengths = (
        np.concatenate(lengths) if lengths else np.empty(0, dtype=np.int64)
    )
    q_indptr = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(all_lengths, out=q_indptr[1:])
    ids = (
        np.concatenate(id_chunks)
        if id_chunks
        else np.empty(0, dtype=np.int64)
    ).astype(np.int64, copy=False)
    q_of_access = np.repeat(np.arange(total, dtype=np.int64), all_lengths)
    unpinned = ids >= pinned_count
    return _Stream(
        q_indptr=q_indptr,
        pages=ids[unpinned],
        q_of_page=q_of_access[unpinned],
        # Warm-up is explicit, so the until-full boundary tables are
        # never consulted; keep them trivially empty.
        bounds=np.zeros(1, dtype=np.int64),
        bound_distinct=np.zeros(1, dtype=np.int64),
        backend=",".join(sorted({type(s).__name__ for s in stabbers})),
    )


def _replay_capacity(
    stream: _Stream,
    *,
    policy: str,
    capacity: int,
    warmed: int,
    n_batches: int,
    batch_size: int,
    confidence: float,
) -> SimulationResult:
    """Replay the shared unpinned page sequence through one buffer.

    The buffer has capacity equal to the *unpinned* capacity and no
    pinned set: pinned requests never touch the online pool's
    replacement structures (``BufferPool.request`` short-circuits
    them), so feeding only the unpinned subsequence through an
    unpinned pool of the reduced capacity walks the identical state
    sequence.  Per-batch requests come from ``q_indptr`` (they include
    pinned accesses); hits are requests minus misses, exactly the
    online accounting.
    """
    batch_queries, access_bounds = _capacity_bounds(
        stream, warmed, n_batches, batch_size
    )
    pages = stream.pages
    lo = int(access_bounds[0])
    if capacity <= 0:
        # A zero-capacity unpinned area: every unpinned access is read
        # and discarded — all misses, no evictions, trivially full.
        miss_b = np.diff(access_bounds).astype(np.int64)
        evict_b = np.zeros(n_batches, dtype=np.int64)
        filled = True
    else:
        buffer = POLICIES[policy](capacity)
        request = buffer.request
        for page in pages[:lo]:
            request(int(page))
        filled = buffer.is_full()
        stats = buffer.stats
        stats.reset()
        miss_b = np.zeros(n_batches, dtype=np.int64)
        evict_b = np.zeros(n_batches, dtype=np.int64)
        for index in range(n_batches):
            for page in pages[access_bounds[index] : access_bounds[index + 1]]:
                request(int(page))
            miss_b[index] = stats.misses
            evict_b[index] = stats.evictions
            stats.reset()
    return _assemble_result(
        stream,
        capacity=capacity,
        warmed=warmed,
        batch_queries=batch_queries,
        miss_b=miss_b,
        evict_b=evict_b,
        resident=0,
        batch_size=batch_size,
        confidence=confidence,
        filled=filled,
    )


def _replay_sweep(
    desc: TreeDescription,
    workload,
    buffer_sizes: tuple[int, ...],
    *,
    pinned_count: int,
    policy: str,
    n_batches: int,
    batch_size: int,
    warmup_queries: int | None,
    warmup_cap: int,
    confidence: float,
    seed: int,
    accel: str,
) -> tuple[SimulationResult, ...]:
    """Sample/stab once, replay per capacity through a real buffer.

    The saving relative to the fallback is everything upstream of the
    buffer loop — sampling and stabbing run once instead of once per
    capacity; the Python replacement loop itself is inherently
    per-capacity for non-nesting policies.  Bit-exact against
    per-capacity :func:`~repro.simulation.engine.simulate` by
    construction: same stream (chunk-independence for non-mixed
    workloads, replicated chunk schedule for mixtures), same warm-up
    boundaries, same buffer implementation.
    """
    capacities = [b - pinned_count for b in buffer_sizes]
    measurement = n_batches * batch_size
    with span("stackdist.stream") as stream_span:
        if isinstance(workload, MixedWorkload):
            assert warmup_queries is not None  # guaranteed by the gate
            stream = _generate_mixed_stream(
                desc,
                workload,
                pinned_count=pinned_count,
                n_batches=n_batches,
                batch_size=batch_size,
                warmup_queries=warmup_queries,
                warmup_cap=warmup_cap,
                seed=seed,
                accel=accel,
            )
        else:
            stream = _generate_stream(
                desc,
                workload,
                pinned_count=pinned_count,
                max_capacity=max(capacities),
                measurement=measurement,
                warmup_queries=warmup_queries,
                warmup_cap=warmup_cap,
                seed=seed,
                accel=accel,
            )
        stream_span.set_attrs(
            queries=stream.n_queries,
            accesses=int(stream.q_indptr[-1]),
            unpinned=int(stream.pages.size),
            backend=stream.backend,
        )

    results = []
    for buffer_size, capacity in zip(buffer_sizes, capacities):
        warmed = _warmup_for(stream, capacity, warmup_queries, warmup_cap)
        with span(
            "stackdist.capacity",
            buffer_size=buffer_size,
            capacity=capacity,
            warmup=warmed,
        ):
            results.append(
                _replay_capacity(
                    stream,
                    policy=policy,
                    capacity=capacity,
                    warmed=warmed,
                    n_batches=n_batches,
                    batch_size=batch_size,
                    confidence=confidence,
                )
            )
    return tuple(results)


def _stackdist_sweep(
    desc: TreeDescription,
    workload,
    buffer_sizes: tuple[int, ...],
    *,
    pinned_count: int,
    n_batches: int,
    batch_size: int,
    warmup_queries: int | None,
    warmup_cap: int,
    confidence: float,
    seed: int,
    accel: str,
    max_threads: int,
) -> tuple[SimulationResult, ...]:
    """The Mattson fast path (LRU, single-transform workloads)."""
    capacities = [b - pinned_count for b in buffer_sizes]
    measurement = n_batches * batch_size

    workers = max(1, max_threads)
    pool = ThreadPoolExecutor(max_workers=workers) if workers > 1 else None

    def tail_stab(stabber, points):
        """Thread-pooled span stabbing, reassembled in stream order."""
        remaining = points.shape[0]
        if pool is None or remaining < 2 * _CHUNK:
            return [stabber.stab(points)]
        width = max(_CHUNK, -(-remaining // (2 * workers)))
        cuts = range(0, remaining, width)
        return pool.map(
            lambda at: stabber.stab(points[at : at + width]), cuts
        )

    try:
        with span("stackdist.stream") as stream_span:
            stream = _generate_stream(
                desc,
                workload,
                pinned_count=pinned_count,
                max_capacity=max(capacities),
                measurement=measurement,
                warmup_queries=warmup_queries,
                warmup_cap=warmup_cap,
                seed=seed,
                accel=accel,
                tail_stab=tail_stab,
            )
            stream_span.set_attrs(
                queries=stream.n_queries,
                accesses=int(stream.q_indptr[-1]),
                unpinned=int(stream.pages.size),
                backend=stream.backend,
            )

        with span("stackdist.distances", accesses=int(stream.pages.size)):
            cold, depth, ccold = _stack_distances(stream.pages, pool, workers)

        warmups = [
            _warmup_for(stream, c, warmup_queries, warmup_cap)
            for c in capacities
        ]

        def account(index: int) -> SimulationResult:
            with span(
                "stackdist.capacity",
                buffer_size=buffer_sizes[index],
                capacity=capacities[index],
                warmup=warmups[index],
            ):
                return _account_capacity(
                    stream,
                    cold,
                    depth,
                    ccold,
                    capacity=capacities[index],
                    warmed=warmups[index],
                    n_batches=n_batches,
                    batch_size=batch_size,
                    confidence=confidence,
                )

        if pool is None:
            return tuple(account(i) for i in range(len(buffer_sizes)))
        return tuple(pool.map(account, range(len(buffer_sizes))))
    finally:
        if pool is not None:
            pool.shutdown()
