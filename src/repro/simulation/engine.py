"""The validation simulator of the paper's §4.

"The simulation models an LRU buffer and, like the model, takes as
input the list of the MBRs for all nodes at all levels.  It then
generates random point queries in the unit square and checks each
node's MBR to see if it contains the point.  If the MBR does contain
the point, the node is requested from the buffer pool."

Every query model in the paper reduces to a point test against
transformed node MBRs (see :mod:`repro.queries`), so the simulator is a
single loop: sample representative points, find the containing
(transformed) MBRs, and request those nodes from the buffer top-down.
Disk accesses are buffer misses; estimates carry batch-means confidence
intervals exactly as in the paper.

The containment step runs on the :mod:`repro.accel` layer: a point
stabber is built once per transformed rect set (a uniform grid above a
size threshold, the dense matrix below — ``accel=`` overrides) and
returns per-query candidate id lists in CSR form, so the buffer loop
only ever touches the already-sparse lists.  Both backends produce
byte-identical id sequences (ascending = level-major = top-down), so
traces, sinks, and measured statistics do not depend on the backend.

Observability: measurement batches are bracketed by
``BufferStats.reset()`` so every batch's counters are independent
(``SimulationResult.batch_stats``), and passing a
:class:`~repro.obs.MetricsRegistry` attaches a per-level sink and
phase timers — see ``docs/OBSERVABILITY.md``.  With no registry the
hot path is unchanged.  Independently, when a process-wide tracer is
installed (``repro.obs.use_tracer``) the phases emit nested spans —
simulate → warmup/measure → per-batch → sample/stab/buffer loop — at
chunk granularity, so the un-traced run pays only the no-op span
dispatch (held within noise by ``benchmarks/test_obs_overhead.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..accel import make_stabber
from ..buffer import BufferPool, BufferStats, POLICIES
from ..obs import LevelStats, LevelStatsTable, MetricsRegistry, QueryTrace, QueryTraceEntry
from ..obs.spans import span
from ..queries.mixed import MixedWorkload
from ..rtree import TreeDescription
from .batchmeans import BatchMeansEstimate, batch_means

__all__ = ["SimulationResult", "build_stabbers", "simulate"]

_CHUNK = 4096
"""Queries vectorised per containment-matrix block."""


@dataclass(frozen=True)
class SimulationResult:
    """Measured per-query costs for one tree / workload / buffer setup."""

    disk_accesses: BatchMeansEstimate
    """Pages required from disk per query (buffer misses)."""
    node_accesses: BatchMeansEstimate
    """Nodes touched per query (the bufferless metric)."""
    warmup_queries: int
    """Queries executed before measurement began."""
    buffer_filled: bool
    """Whether the buffer was full when measurement began."""
    batch_stats: tuple[BufferStats, ...] = ()
    """Independent buffer counters per measurement batch (warm-up
    excluded); each batch's counters are snapshot then reset."""
    level_stats: tuple[LevelStats, ...] | None = None
    """Per-tree-level request/hit/miss/eviction/pin-hit counters over
    the whole measurement window; ``None`` unless ``simulate`` was
    given a registry."""
    trace: tuple[QueryTraceEntry, ...] = ()
    """The last ``trace_last`` queries' touched node ids and miss
    sets; empty unless tracing was requested."""

    @property
    def hit_ratio(self) -> float:
        """Measured steady-state buffer hit probability."""
        if self.node_accesses.mean == 0.0:
            return 1.0
        return 1.0 - self.disk_accesses.mean / self.node_accesses.mean


def simulate(
    desc: TreeDescription,
    workload,
    buffer_size: int,
    *,
    pinned_levels: int = 0,
    n_batches: int = 20,
    batch_size: int = 5000,
    warmup_queries: int | None = None,
    warmup_cap: int = 100_000,
    policy: str = "lru",
    confidence: float = 0.90,
    rng: np.random.Generator | int | None = None,
    registry: MetricsRegistry | None = None,
    trace_last: int = 0,
    accel: str = "auto",
) -> SimulationResult:
    """Simulate the buffer and measure disk accesses per query.

    Parameters
    ----------
    desc:
        Per-level node MBRs (level-major node ids are the page ids).
    workload:
        A workload from :mod:`repro.queries` (anything exposing
        ``transformed_rects`` and ``sample_points``).
    buffer_size:
        Buffer capacity in pages.
    pinned_levels:
        Top tree levels preloaded and pinned (they always hit and are
        excluded from replacement, as in §3.3 / §5.5).
    n_batches, batch_size, confidence:
        Batch-means measurement parameters (the paper uses 20 batches;
        its batch size of 10⁶ is configurable here for runtime).
    warmup_queries:
        Queries run before measurement.  ``None`` (default) warms up
        until the buffer first fills, capped at ``warmup_cap`` — the
        moment the model's steady-state approximation refers to.
    policy:
        Replacement policy name (``lru``, ``fifo``, ``clock``,
        ``random``); the paper's model targets LRU.
    rng:
        Seed or generator for query sampling (default: seed 0).
    registry:
        Optional :class:`~repro.obs.MetricsRegistry`.  When given, a
        :class:`~repro.obs.LevelStatsTable` sink is attached to the
        buffer pool (levels resolved via ``desc.level_offsets``), the
        warm-up and measurement phases are timed into
        ``simulate.warmup`` / ``simulate.measure``, and the aggregate
        measurement-window counters land in ``buffer.*`` counters.
        The result then carries ``level_stats``.  With ``None`` the
        simulation runs the uninstrumented fast path.
    trace_last:
        Retain the last this-many queries' touched node ids and miss
        sets on ``SimulationResult.trace`` (0 disables tracing).
    accel:
        Containment backend: ``"auto"`` (grid index for large rect
        sets, dense below the size threshold), ``"grid"``, or
        ``"dense"``.  All backends are bit-exact, so every measured
        statistic is independent of this choice.
    """
    if n_batches < 2:
        raise ValueError("need at least two batches for confidence intervals")
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if warmup_cap < 0:
        raise ValueError("warmup_cap must be non-negative")
    if trace_last < 0:
        raise ValueError("trace_last must be non-negative")
    if not 0 <= pinned_levels <= desc.height:
        raise ValueError(f"pinned_levels must be in [0, {desc.height}]")
    if rng is None or isinstance(rng, int):
        rng = np.random.default_rng(0 if rng is None else rng)

    root_span = span(
        "simulate",
        buffer_size=buffer_size,
        policy=policy,
        accel=accel,
        levels=desc.height,
        nodes=desc.total_nodes,
        pinned_levels=pinned_levels,
        n_batches=n_batches,
        batch_size=batch_size,
    )
    with root_span:
        # The stabber sees the whole run: warm-up (bounded by the cap
        # or the explicit count) plus every measurement batch.  The
        # work hint lets make_stabber promote small trees to the grid
        # when the probe volume is large (fig6-sized runs), exactly as
        # the sweep path does — backends are bit-exact, so the hint
        # only ever changes speed.
        probe_budget = (
            warmup_cap if warmup_queries is None else warmup_queries
        ) + n_batches * batch_size
        stabber, backend = build_stabbers(
            desc, workload, accel=accel, n_points=probe_budget
        )
        root_span.set_attrs(backend=backend)
        pinned_ids = range(desc.level_offsets[pinned_levels])
        buffer = _make_buffer(policy, buffer_size, pinned_ids, rng)

        sink: LevelStatsTable | None = None
        if registry is not None:
            sink = LevelStatsTable(desc.level_offsets)
            buffer.sink = sink
        trace = QueryTrace(trace_last) if trace_last > 0 else None

        # --------------------------------------------------------------
        # Warm-up: reach the state the model's steady-state estimate
        # targets.
        # --------------------------------------------------------------
        started = time.perf_counter_ns() if registry is not None else 0
        warmed = 0
        with span("simulate.warmup"):
            if warmup_queries is None:
                while not buffer.is_full() and warmed < warmup_cap:
                    step = min(_CHUNK, warmup_cap - warmed)
                    _run_queries(buffer, stabber, workload, rng, step, trace)
                    warmed += step
            else:
                remaining = warmup_queries
                while remaining > 0:
                    step = min(_CHUNK, remaining)
                    _run_queries(buffer, stabber, workload, rng, step, trace)
                    warmed += step
                    remaining -= step
        buffer_filled = buffer.is_full()
        if registry is not None:
            registry.timer("simulate.warmup").record(
                (time.perf_counter_ns() - started) / 1e9
            )

        # --------------------------------------------------------------
        # Measurement: batch means over misses and accesses per query.
        # Counters are reset at every batch boundary, so each batch's
        # statistics are independent and the batch snapshots sum to the
        # measurement-window totals.
        # --------------------------------------------------------------
        started = time.perf_counter_ns() if registry is not None else 0
        buffer.stats.reset()
        if sink is not None:
            sink.reset()
        batch_snapshots: list[BufferStats] = []
        miss_means: list[float] = []
        access_means: list[float] = []
        with span("simulate.measure"):
            for batch_index in range(n_batches):
                with span("simulate.batch", batch=batch_index):
                    remaining = batch_size
                    while remaining > 0:
                        step = min(_CHUNK, remaining)
                        _run_queries(
                            buffer, stabber, workload, rng, step, trace
                        )
                        remaining -= step
                snapshot = buffer.stats.snapshot()
                batch_snapshots.append(snapshot)
                miss_means.append(snapshot.misses / batch_size)
                access_means.append(snapshot.requests / batch_size)
                buffer.stats.reset()

    if registry is not None:
        registry.timer("simulate.measure").record(
            (time.perf_counter_ns() - started) / 1e9
        )
        totals = _sum_stats(batch_snapshots)
        registry.counter("buffer.requests").inc(totals.requests)
        registry.counter("buffer.hits").inc(totals.hits)
        registry.counter("buffer.misses").inc(totals.misses)
        registry.counter("buffer.evictions").inc(totals.evictions)
        registry.gauge("buffer.capacity").set(buffer_size)
        registry.gauge("buffer.pinned_pages").set(len(buffer.pinned))
        registry.gauge("sim.batches").set(n_batches)
        registry.gauge("sim.batch_size").set(batch_size)

    return SimulationResult(
        disk_accesses=batch_means(miss_means, confidence=confidence),
        node_accesses=batch_means(access_means, confidence=confidence),
        warmup_queries=warmed,
        buffer_filled=buffer_filled,
        batch_stats=tuple(batch_snapshots),
        level_stats=sink.snapshot() if sink is not None else None,
        trace=trace.entries() if trace is not None else (),
    )


def build_stabbers(
    desc: TreeDescription,
    workload,
    *,
    accel: str = "auto",
    n_points: int = 0,
):
    """Build the point stabber(s) for ``workload`` over ``desc``.

    Returns ``(stabber, backend)``: one stabber over the workload's
    transformed MBRs, or a list of per-component stabbers for a
    :class:`~repro.queries.mixed.MixedWorkload`; ``backend`` names the
    chosen accel class(es) for span attribution.  ``n_points`` is the
    expected probe volume — the work hint that lets ``make_stabber``
    promote small trees to the grid index (bit-exact either way).

    Shared by the batch simulator and the serving engine so both paths
    stab through identical structures — part of the K=1 exactness
    argument in ``docs/SERVING.md``.
    """
    if isinstance(workload, MixedWorkload):
        transformed = workload.component_transforms(desc.all_rects)
        stabbers = [
            make_stabber(t, mode=accel, n_points=n_points)
            for t in transformed
        ]
        backend = ",".join(sorted({type(s).__name__ for s in stabbers}))
        return stabbers, backend
    transformed = workload.transformed_rects(desc.all_rects)
    stabber = make_stabber(transformed, mode=accel, n_points=n_points)
    return stabber, type(stabber).__name__


def _sum_stats(snapshots: list[BufferStats]) -> BufferStats:
    """Column sums over per-batch snapshots."""
    totals = BufferStats()
    for snapshot in snapshots:
        totals.requests += snapshot.requests
        totals.hits += snapshot.hits
        totals.misses += snapshot.misses
        totals.evictions += snapshot.evictions
    return totals


def _make_buffer(
    policy: str,
    buffer_size: int,
    pinned_ids,
    rng: np.random.Generator,
) -> BufferPool:
    if policy == "random":
        return POLICIES["random"](buffer_size, pinned_ids, rng=rng)
    try:
        cls = POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; choices: {sorted(POLICIES)}"
        ) from None
    return cls(buffer_size, pinned_ids)


def _run_queries(
    buffer: BufferPool,
    stabber,
    workload,
    rng: np.random.Generator,
    count: int,
    trace: QueryTrace | None = None,
) -> None:
    """Run ``count`` queries through the buffer.

    All accounting lives in ``buffer.stats`` (snapshot/reset at batch
    boundaries by the caller) — this function deliberately returns
    nothing, so there is exactly one source of truth for hit/miss
    counts.

    ``stabber`` answers point-stabbing queries in CSR form (one per
    component for mixtures); node ids arrive ascending (level-major),
    i.e. top-down, matching a recursive traversal's request order.
    When ``trace`` is given, each query's touched ids and miss set are
    recorded in the ring buffer (slower: only used when tracing).

    Spans are emitted per *chunk* (this function runs once per
    ``_CHUNK`` queries), never per query or per request, so the
    disabled-tracer cost is three no-op context managers per 4096
    queries.
    """
    if isinstance(workload, MixedWorkload):
        with span("simulate.stab", queries=count, mixed=True):
            rows = _mixed_rows(stabber, workload, rng, count)
    else:
        with span("simulate.sample", queries=count):
            points = workload.sample_points(count, rng)
        with span("simulate.stab", queries=count):
            rows = stabber.stab(points).iter_rows()
    with span("simulate.buffer_loop", queries=count):
        request = buffer.request
        if trace is not None:
            for ids in rows:
                touched = [int(i) for i in ids]
                missed = [i for i in touched if not request(i)]
                trace.record(touched, missed)
            return
        for ids in rows:
            for node_id in ids:
                request(int(node_id))


def _mixed_rows(
    stabbers,
    workload: MixedWorkload,
    rng: np.random.Generator,
    count: int,
) -> list[np.ndarray]:
    """Per-query id lists for a mixture: each query is drawn from one
    component and stabbed against that component's transformed MBRs,
    with the original query order preserved for the buffer."""
    assignments = workload.sample_assignments(count, rng)
    rows: list[np.ndarray] = [_EMPTY_IDS] * count
    for c, component in enumerate(workload.workloads):
        idx = np.nonzero(assignments == c)[0]
        if idx.size == 0:
            continue
        points = component.sample_points(idx.size, rng)
        sparse = stabbers[c].stab(points)
        for j, q in enumerate(idx):
            rows[q] = sparse.row(j)
    return rows


_EMPTY_IDS = np.empty(0, dtype=np.int64)
"""Shared empty row for mixture components with no queries."""
