"""Small self-contained statistics helpers for the simulator.

Only what the batch-means machinery needs: the regularised incomplete
beta function (via the Lentz continued fraction of Numerical Recipes),
the Student-t CDF built on it, and the t quantile via bisection.  Kept
dependency-free so the core library needs nothing beyond numpy.
"""

from __future__ import annotations

import math

__all__ = ["regularized_incomplete_beta", "student_t_cdf", "student_t_quantile"]

_MAX_ITER = 300
_EPS = 3.0e-14
_TINY = 1.0e-300


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < _TINY:
        d = _TINY
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < _TINY:
            d = _TINY
        c = 1.0 + aa / c
        if abs(c) < _TINY:
            c = _TINY
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            return h
    raise ArithmeticError("incomplete beta continued fraction did not converge")


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)`` for ``a, b > 0`` and ``x`` in ``[0, 1]``."""
    if a <= 0 or b <= 0:
        raise ValueError("a and b must be positive")
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must be in [0, 1]")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: float) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


def student_t_quantile(p: float, df: float) -> float:
    """Inverse CDF of Student's t (bisection; |result| < 1e8)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    if p == 0.5:
        return 0.0
    lo, hi = -1.0, 1.0
    while student_t_cdf(lo, df) > p:
        lo *= 2.0
        if lo < -1e8:
            break
    while student_t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e8:
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)
