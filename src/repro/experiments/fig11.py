"""Figure 11 — when does pinning pay off?

Left panel: disk accesses versus buffer size on a Hilbert-packed Long
Beach tree with 25 keys per node, for pinning 0–3 levels.  Pinning 0,
1 or 2 levels is indistinguishable; pinning 3 levels helps only over a
small range of buffer sizes (and is infeasible below the ~91 pages the
top three levels occupy).

Right panel: percentage improvement of pinning 2 and 3 levels versus
no pinning, as the region query side ``QX`` grows from 0 (point
queries) to 0.15, on the 250,000-point tree with a 500-page buffer.
Larger queries drag in ever more leaf pages, which dwarfs the pinned
top levels and erodes the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..buffer import PinningError
from ..model import buffer_model
from ..queries import UniformPointWorkload, UniformRegionWorkload
from ..simulation import simulate_sweep
from .common import (
    Table,
    get_description,
    sim_batches,
    sim_queries_per_batch,
    sim_workers,
)

__all__ = ["Fig11Result", "run"]

META = {
    "name": "fig11",
    "title": "When pinning pays off: buffer-size and level sweeps",
    "source": "Fig. 11",
}
"""Experiment metadata for the runner registry (rule RL004)."""

DEFAULT_BUFFER_SIZES = (50, 75, 100, 150, 200, 300, 500, 750, 1000, 1500, 2000)
DEFAULT_QUERY_SIDES = (0.0, 0.01, 0.025, 0.05, 0.075, 0.1, 0.125, 0.15)
CAPACITY = 25
RIGHT_PANEL_POINTS = 250_000
RIGHT_PANEL_BUFFER = 500


@dataclass(frozen=True)
class Fig11Result:
    """Both panels of Fig. 11."""

    buffer_sizes: tuple[int, ...]
    left_curves: dict[int, tuple[float | None, ...]]
    """Pinned levels -> disk accesses per buffer size (None = infeasible)."""
    query_sides: tuple[float, ...]
    right_curves: dict[int, tuple[float, ...]]
    """Pinned levels -> % improvement vs no pinning, per query side."""

    def to_text(self) -> str:
        left = Table(
            ["buffer"] + [f"pin {p}" for p in sorted(self.left_curves)]
        )
        for i, size in enumerate(self.buffer_sizes):
            cells = [
                self.left_curves[p][i] if self.left_curves[p][i] is not None else "n/a"
                for p in sorted(self.left_curves)
            ]
            left.add(size, *cells)
        right = Table(
            ["QX"] + [f"pin {p} (%)" for p in sorted(self.right_curves)]
        )
        for i, side in enumerate(self.query_sides):
            right.add(side, *[self.right_curves[p][i] for p in sorted(self.right_curves)])
        return (
            left.to_text(
                "Fig. 11 (left): disk accesses vs buffer size by pinned levels "
                f"(Long Beach, HS, node size {CAPACITY}, point queries)"
            )
            + "\n\n"
            + right.to_text(
                "Fig. 11 (right): % improvement from pinning vs query side QX "
                f"({RIGHT_PANEL_POINTS} points, buffer {RIGHT_PANEL_BUFFER})"
            )
        )


def run(
    buffer_sizes=DEFAULT_BUFFER_SIZES,
    query_sides=DEFAULT_QUERY_SIDES,
    loader: str = "hs",
    simulated: bool = False,
    n_batches: int | None = None,
    batch_size: int | None = None,
) -> Fig11Result:
    """Reproduce Fig. 11 (pinning benefit vs buffer size and query size).

    ``simulated=True`` measures the left panel with one stack-distance
    sweep per pinning level (:func:`~repro.simulation.simulate_sweep`),
    restricted to the buffer sizes that can hold the pinned pages —
    infeasible cells stay ``None``, exactly as in the model.  The right
    panel (a query-side sweep at one buffer size) stays analytical.
    """
    point = UniformPointWorkload()
    if simulated:
        n_batches = n_batches if n_batches is not None else sim_batches()
        batch_size = (
            batch_size if batch_size is not None else sim_queries_per_batch()
        )

    # Left panel: Long Beach, node size 25, pinning 0-3 levels.
    tiger_desc = get_description("tiger", None, CAPACITY, loader)
    left: dict[int, list[float | None]] = {p: [] for p in (0, 1, 2, 3)}
    if simulated:
        for p in left:
            pinned_pages = tiger_desc.pages_in_top_levels(p)
            feasible = [b for b in buffer_sizes if b >= pinned_pages]
            results = (
                simulate_sweep(
                    tiger_desc,
                    point,
                    feasible,
                    pinned_levels=p,
                    n_batches=n_batches,
                    batch_size=batch_size,
                    workers=sim_workers(),
                )
                if feasible
                else ()
            )
            by_size = {
                b: r.disk_accesses.mean for b, r in zip(feasible, results)
            }
            left[p] = [by_size.get(b) for b in buffer_sizes]
    else:
        for b in buffer_sizes:
            for p in left:
                try:
                    result = buffer_model(
                        tiger_desc, point, b, pinned_levels=p
                    )
                except PinningError:
                    left[p].append(None)
                else:
                    left[p].append(result.disk_accesses)

    # Right panel: synthetic points, sweep the query side.
    deep_desc = get_description("point", RIGHT_PANEL_POINTS, CAPACITY, loader)
    right: dict[int, list[float]] = {2: [], 3: []}
    for side in query_sides:
        workload = (
            point if side == 0.0 else UniformRegionWorkload((side, side))
        )
        base = buffer_model(
            deep_desc, workload, RIGHT_PANEL_BUFFER, pinned_levels=0
        ).disk_accesses
        for p in right:
            pinned = buffer_model(
                deep_desc, workload, RIGHT_PANEL_BUFFER, pinned_levels=p
            ).disk_accesses
            right[p].append(
                100.0 * (base - pinned) / base if base > 0 else 0.0
            )

    return Fig11Result(
        buffer_sizes=tuple(buffer_sizes),
        left_curves={p: tuple(v) for p, v in left.items()},
        query_sides=tuple(query_sides),
        right_curves={p: tuple(v) for p, v in right.items()},
    )
