"""Table 1 — validation of the buffer model against simulation.

The paper compares predicted and simulated disk accesses per uniform
point query on R-trees of 1,668 nodes built by its packing algorithms,
for six buffer sizes, and reports agreement within 2%.  We rebuild the
setup from synthetic region data: 165,000 rectangles at node capacity
100 pack into exactly 1650 + 17 + 1 = 1,668 nodes.

The paper's batches of 10⁶ queries are scaled down by default (see
``repro.experiments.common``); the confidence intervals are reported so
the agreement can be judged against the measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import buffer_model
from ..queries import UniformPointWorkload
from ..simulation import simulate_sweep
from .common import Table, get_description, sim_batches, sim_queries_per_batch

__all__ = ["Table1Row", "Table1Result", "run"]

META = {
    "name": "table1",
    "title": "Buffer-model validation against simulation",
    "source": "Table 1",
}
"""Experiment metadata for the runner registry (rule RL004)."""

DEFAULT_BUFFER_SIZES = (10, 50, 100, 200, 300, 500)
DEFAULT_LOADERS = ("nx", "hs", "str")
DATA_SIZE = 165_000
CAPACITY = 100


@dataclass(frozen=True)
class Table1Row:
    """One (loader, buffer size) validation cell."""

    loader: str
    buffer_size: int
    model: float
    simulated: float
    ci_half_width: float
    percent_difference: float
    """100 · (model − simulated) / simulated, as the paper reports."""


@dataclass(frozen=True)
class Table1Result:
    """All validation rows plus the tree sizes used."""

    rows: tuple[Table1Row, ...]
    total_nodes: dict[str, int]

    @property
    def max_abs_percent_difference(self) -> float:
        """Worst-case |model − sim| / sim over all rows."""
        return max(abs(r.percent_difference) for r in self.rows)

    def to_text(self) -> str:
        table = Table(
            ["loader", "buffer", "model", "simulation", "ci±", "diff %"]
        )
        for r in self.rows:
            table.add(
                r.loader,
                r.buffer_size,
                r.model,
                r.simulated,
                r.ci_half_width,
                r.percent_difference,
            )
        sizes = ", ".join(f"{k}={v}" for k, v in self.total_nodes.items())
        return table.to_text(
            "Table 1: model vs simulation, disk accesses per point query "
            f"(tree nodes: {sizes})"
        )


def run(
    buffer_sizes=DEFAULT_BUFFER_SIZES,
    loaders=DEFAULT_LOADERS,
    n_batches: int | None = None,
    batch_size: int | None = None,
) -> Table1Result:
    """Reproduce Table 1 (model vs simulation validation)."""
    n_batches = n_batches if n_batches is not None else sim_batches()
    batch_size = batch_size if batch_size is not None else sim_queries_per_batch()
    workload = UniformPointWorkload()

    rows: list[Table1Row] = []
    total_nodes: dict[str, int] = {}
    for loader in loaders:
        desc = get_description("region", DATA_SIZE, CAPACITY, loader)
        total_nodes[loader] = desc.total_nodes
        # One stack-distance pass simulates every buffer size at once
        # (bit-exact vs the old per-size loop; see simulate_sweep).
        measurements = simulate_sweep(
            desc,
            workload,
            buffer_sizes,
            n_batches=n_batches,
            batch_size=batch_size,
        )
        for buffer_size, measured in zip(buffer_sizes, measurements):
            predicted = buffer_model(desc, workload, buffer_size)
            sim_mean = measured.disk_accesses.mean
            diff = (
                100.0 * (predicted.disk_accesses - sim_mean) / sim_mean
                if sim_mean > 0
                else 0.0
            )
            rows.append(
                Table1Row(
                    loader=loader,
                    buffer_size=buffer_size,
                    model=predicted.disk_accesses,
                    simulated=sim_mean,
                    ci_half_width=measured.disk_accesses.half_width,
                    percent_difference=diff,
                )
            )
    return Table1Result(rows=tuple(rows), total_nodes=total_nodes)
