"""Figure 9 — disk accesses versus data set size (synthetic region data).

Three panels for NX and HS trees over growing data sets (the paper
does not state the query size; we default to point queries, where the
phenomenon is cleanest — pass ``region_side`` for region queries):

* no buffer (nodes visited — the old metric): the well-structured (HS)
  curve is nearly flat, wrongly suggesting a 300,000-rectangle tree
  costs no more to query than a 25,000-rectangle one;
* buffer = 10 and buffer = 300 (disk accesses — the new metric): the
  cost of larger trees becomes evident, which matters for, e.g., query
  optimisers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import buffer_model, expected_node_accesses
from ..queries import UniformPointWorkload, UniformRegionWorkload
from ..simulation import simulate_sweep
from .common import (
    Table,
    get_description,
    sim_batches,
    sim_queries_per_batch,
    sim_workers,
)

__all__ = ["Fig9Result", "run"]

META = {
    "name": "fig9",
    "title": "Disk accesses vs. data set size (synthetic region data)",
    "source": "Fig. 9",
}
"""Experiment metadata for the runner registry (rule RL004)."""

DEFAULT_SIZES = (10_000, 25_000, 50_000, 100_000, 150_000, 200_000, 300_000)
DEFAULT_LOADERS = ("nx", "hs")
DEFAULT_BUFFERS = (10, 300)
CAPACITY = 100
REGION_SIDE = 0.0
"""Query side length; 0 means point queries (see module docstring)."""


@dataclass(frozen=True)
class Fig9Result:
    """Node-access and disk-access curves versus data size."""

    sizes: tuple[int, ...]
    node_accesses: dict[str, tuple[float, ...]]
    """Loader -> bufferless nodes visited, one value per data size."""
    disk_accesses: dict[tuple[str, int], tuple[float, ...]]
    """(loader, buffer size) -> disk accesses, one value per data size."""

    def growth(self, curve: tuple[float, ...]) -> float:
        """Cost ratio of the largest data set to the smallest."""
        return curve[-1] / curve[0] if curve[0] > 0 else float("inf")

    def to_text(self) -> str:
        out = []
        table = Table(["rectangles"] + list(self.node_accesses))
        for i, size in enumerate(self.sizes):
            table.add(size, *[self.node_accesses[k][i] for k in self.node_accesses])
        out.append(table.to_text("Fig. 9 (top left): nodes visited, no buffer"))
        buffers = sorted({b for _, b in self.disk_accesses})
        for buffer_size in buffers:
            keys = [k for k in self.disk_accesses if k[1] == buffer_size]
            table = Table(["rectangles"] + [k[0] for k in keys])
            for i, size in enumerate(self.sizes):
                table.add(size, *[self.disk_accesses[k][i] for k in keys])
            out.append(
                table.to_text(
                    f"Fig. 9: disk accesses, buffer size = {buffer_size}"
                )
            )
        return "\n\n".join(out)


def run(
    sizes=DEFAULT_SIZES,
    loaders=DEFAULT_LOADERS,
    buffers=DEFAULT_BUFFERS,
    region_side: float = REGION_SIDE,
    simulated: bool = False,
    n_batches: int | None = None,
    batch_size: int | None = None,
) -> Fig9Result:
    """Reproduce Fig. 9 (cost vs data size, with and without buffer).

    ``simulated=True`` replaces the analytical disk-access curves with
    measurements from one stack-distance sweep per (data size, loader)
    — all buffer sizes share a single replayed query stream
    (:func:`~repro.simulation.simulate_sweep`).
    """
    if region_side > 0.0:
        workload = UniformRegionWorkload((region_side, region_side))
    else:
        workload = UniformPointWorkload()
    if simulated:
        n_batches = n_batches if n_batches is not None else sim_batches()
        batch_size = (
            batch_size if batch_size is not None else sim_queries_per_batch()
        )
    node_accesses: dict[str, list[float]] = {k: [] for k in loaders}
    disk: dict[tuple[str, int], list[float]] = {
        (loader, b): [] for loader in loaders for b in buffers
    }
    for size in sizes:
        for loader in loaders:
            desc = get_description("region", size, CAPACITY, loader)
            node_accesses[loader].append(expected_node_accesses(desc, workload))
            if simulated:
                results = simulate_sweep(
                    desc,
                    workload,
                    buffers,
                    n_batches=n_batches,
                    batch_size=batch_size,
                    workers=sim_workers(),
                )
                for b, measured in zip(buffers, results):
                    disk[(loader, b)].append(measured.disk_accesses.mean)
            else:
                for b in buffers:
                    disk[(loader, b)].append(
                        buffer_model(desc, workload, b).disk_accesses
                    )
    return Fig9Result(
        sizes=tuple(sizes),
        node_accesses={k: tuple(v) for k, v in node_accesses.items()},
        disk_accesses={k: tuple(v) for k, v in disk.items()},
    )
