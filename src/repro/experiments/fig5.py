"""Figure 5 — the CFD data set.

The paper's figure is a scatter plot of the mesh nodes: dense around
the wing elements (with blank ovals where the wing bodies are) and
sparse in the far field.  This experiment characterises our CFD-like
substitute the same way: an ASCII density plot plus the skew statistics
the later experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Rect
from .common import get_dataset

__all__ = ["Fig5Result", "run"]

META = {
    "name": "fig5",
    "title": "CFD-like data set density characterisation",
    "source": "Fig. 5",
}
"""Experiment metadata for the runner registry (rule RL004)."""

_GRID = 48


@dataclass(frozen=True)
class Fig5Result:
    """Density characterisation of the CFD-like point set."""

    n_points: int
    center_window: Rect
    """A window around the wing system (the figure's right panel)."""
    center_fraction: float
    """Fraction of all points inside the center window."""
    center_area_fraction: float
    """Area of that window as a fraction of the data space."""
    occupancy: np.ndarray
    """Point counts on a coarse grid over the unit square."""
    empty_cell_fraction: float
    """Fraction of grid cells with no points at all."""
    gini: float
    """Gini coefficient of the per-cell counts (skew summary)."""

    def to_text(self) -> str:
        plot = _ascii_density(self.occupancy)
        return (
            f"Fig. 5: CFD-like data set ({self.n_points} points)\n"
            f"  {self.center_fraction:.1%} of points fall in "
            f"{self.center_area_fraction:.1%} of the area (center window)\n"
            f"  empty grid cells: {self.empty_cell_fraction:.1%}   "
            f"cell-count Gini: {self.gini:.3f}\n" + plot
        )


def run(n: int | None = None) -> Fig5Result:
    """Characterise the CFD-like data set (Fig. 5 substitute)."""
    data = get_dataset("cfd", n)
    points = data.centers()

    # Window around the wing system, in normalised coordinates.
    lo = np.quantile(points, 0.25, axis=0)
    hi = np.quantile(points, 0.75, axis=0)
    window = Rect(tuple(lo), tuple(hi))
    inside = np.all((points >= lo) & (points <= hi), axis=1)

    cells = np.clip((points * _GRID).astype(int), 0, _GRID - 1)
    occupancy = np.zeros((_GRID, _GRID), dtype=np.int64)
    np.add.at(occupancy, (cells[:, 1], cells[:, 0]), 1)

    counts = np.sort(occupancy.ravel())
    cum = np.cumsum(counts, dtype=np.float64)
    # Gini via the Lorenz-curve identity.
    n_cells = counts.size
    gini = float(
        (n_cells + 1 - 2 * (cum / cum[-1]).sum()) / n_cells
    )

    return Fig5Result(
        n_points=len(points),
        center_window=window,
        center_fraction=float(inside.mean()),
        center_area_fraction=window.area,
        occupancy=occupancy,
        empty_cell_fraction=float((occupancy == 0).mean()),
        gini=gini,
    )


def _ascii_density(occupancy: np.ndarray) -> str:
    """Render the density grid with a log-scaled character ramp."""
    ramp = " .:-=+*#%@"
    with np.errstate(divide="ignore"):
        levels = np.log1p(occupancy)
    top = levels.max() or 1.0
    scaled = (levels / top * (len(ramp) - 1)).astype(int)
    # Row 0 of the grid is y=0; print top row first.
    lines = []
    for row in scaled[::-1]:
        lines.append("  |" + "".join(ramp[v] for v in row) + "|")
    return "\n".join(lines)
