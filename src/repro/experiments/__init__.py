"""The paper's evaluation: one module per table/figure (see DESIGN.md)."""

from __future__ import annotations

from . import fig5, fig6, fig7, fig8, fig9, fig10, fig11, table1, table2
from .common import Table, get_dataset, get_description
from .runner import EXPERIMENTS, main

__all__ = [
    "EXPERIMENTS",
    "Table",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "get_dataset",
    "get_description",
    "main",
    "table1",
    "table2",
]
