"""Figure 6 — sensitivity to buffer size on the Long Beach data.

Disk accesses per query versus buffer size for trees built by TAT, NX
and HS (node capacity 100; 532/6/1 pages), under uniform point queries
(left panel) and 1%-area region queries, i.e. 0.1 × 0.1 (right panel).

The headline qualitative result: for region queries the TAT and NX
curves *cross* — TAT needs fewer disk accesses than NX at small buffers
but NX wins once the buffer exceeds a couple of hundred pages — so a
bufferless comparison ranks the algorithms incorrectly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import buffer_model_sweep, expected_node_accesses
from ..queries import UniformPointWorkload, UniformRegionWorkload
from ..simulation import simulate_sweep
from .common import (
    Table,
    get_description,
    sim_batches,
    sim_queries_per_batch,
    sim_workers,
)

__all__ = ["Fig6Result", "run"]

META = {
    "name": "fig6",
    "title": "Disk accesses vs. buffer size on the Long Beach data",
    "source": "Fig. 6",
}
"""Experiment metadata for the runner registry (rule RL004)."""

DEFAULT_BUFFER_SIZES = (2, 5, 10, 20, 50, 100, 150, 200, 300, 400, 500)
DEFAULT_LOADERS = ("tat", "nx", "hs")
CAPACITY = 100
REGION_SIDE = 0.1
"""1% region queries: a 0.1 × 0.1 query covers 1% of the unit square."""


@dataclass(frozen=True)
class Fig6Result:
    """Disk-access curves for both panels of Fig. 6."""

    buffer_sizes: tuple[int, ...]
    point_curves: dict[str, tuple[float, ...]]
    """Loader -> disk accesses per point query, one per buffer size."""
    region_curves: dict[str, tuple[float, ...]]
    """Loader -> disk accesses per 1% region query."""
    point_node_accesses: dict[str, float]
    """Bufferless expected node accesses (the old metric), point queries."""
    region_node_accesses: dict[str, float]
    """Bufferless expected node accesses, region queries."""

    def crossover_buffer(
        self, a: str, b: str, region: bool = True
    ) -> int | None:
        """Smallest buffer size at which loader ``b`` beats loader ``a``.

        Returns None if ``b`` never becomes strictly better over the
        swept buffer sizes.  For the paper's TAT/NX crossover use
        ``crossover_buffer("tat", "nx")`` (≈200 in the paper).
        """
        curves = self.region_curves if region else self.point_curves
        for size, cost_a, cost_b in zip(
            self.buffer_sizes, curves[a], curves[b]
        ):
            if cost_b < cost_a:
                return size
        return None

    def to_text(self) -> str:
        out = []
        for label, curves, bufferless in (
            ("point queries", self.point_curves, self.point_node_accesses),
            (
                f"{REGION_SIDE}x{REGION_SIDE} region queries",
                self.region_curves,
                self.region_node_accesses,
            ),
        ):
            table = Table(["buffer"] + list(curves))
            table.add("(no buffer)", *[bufferless[k] for k in curves])
            for i, size in enumerate(self.buffer_sizes):
                table.add(size, *[curves[k][i] for k in curves])
            out.append(
                table.to_text(f"Fig. 6: disk accesses vs buffer size — {label}")
            )
        if "tat" in self.region_curves and "nx" in self.region_curves:
            cross = self.crossover_buffer("tat", "nx", region=True)
            out.append(
                "TAT/NX region-query crossover at buffer size: "
                + (str(cross) if cross is not None else "none observed")
            )
        return "\n\n".join(out)


def run(
    buffer_sizes=DEFAULT_BUFFER_SIZES,
    loaders=DEFAULT_LOADERS,
    region_side: float = REGION_SIDE,
    simulated: bool = False,
    n_batches: int | None = None,
    batch_size: int | None = None,
) -> Fig6Result:
    """Reproduce Fig. 6.

    By default the curves come from the analytical buffer model.  With
    ``simulated=True`` every curve is measured instead, via one
    stack-distance sweep per (loader, workload) — all buffer sizes in
    a single pass over one query stream
    (:func:`~repro.simulation.simulate_sweep`); budgets default to the
    ``REPRO_SIM_*`` environment overrides.
    """
    point = UniformPointWorkload()
    region = UniformRegionWorkload((region_side, region_side))
    if simulated:
        n_batches = n_batches if n_batches is not None else sim_batches()
        batch_size = (
            batch_size if batch_size is not None else sim_queries_per_batch()
        )

    point_curves: dict[str, tuple[float, ...]] = {}
    region_curves: dict[str, tuple[float, ...]] = {}
    point_nodes: dict[str, float] = {}
    region_nodes: dict[str, float] = {}
    for loader in loaders:
        desc = get_description("tiger", None, CAPACITY, loader)
        point_nodes[loader] = expected_node_accesses(desc, point)
        region_nodes[loader] = expected_node_accesses(desc, region)
        if simulated:
            point_curves[loader] = tuple(
                r.disk_accesses.mean
                for r in simulate_sweep(
                    desc,
                    point,
                    buffer_sizes,
                    n_batches=n_batches,
                    batch_size=batch_size,
                    workers=sim_workers(),
                )
            )
            region_curves[loader] = tuple(
                r.disk_accesses.mean
                for r in simulate_sweep(
                    desc,
                    region,
                    buffer_sizes,
                    n_batches=n_batches,
                    batch_size=batch_size,
                    workers=sim_workers(),
                )
            )
        else:
            point_curves[loader] = tuple(
                r.disk_accesses
                for r in buffer_model_sweep(desc, point, buffer_sizes)
            )
            region_curves[loader] = tuple(
                r.disk_accesses
                for r in buffer_model_sweep(desc, region, buffer_sizes)
            )
    return Fig6Result(
        buffer_sizes=tuple(buffer_sizes),
        point_curves=point_curves,
        region_curves=region_curves,
        point_node_accesses=point_nodes,
        region_node_accesses=region_nodes,
    )
