"""Figure 8 — uniform vs data-driven queries on the CFD data.

The CFD set is extreme: nearly all the data crowds around the wing,
and a few huge MBRs cover the empty rest of the space.  Uniform
queries mostly touch only those few big nodes, which cache perfectly —
the paper measures as little as 0.06 disk accesses per uniform query
at a buffer of 100 pages, and buffer-speedup ratios "in excess of 20".
Data-driven queries, being concentrated where the data (and hence many
small nodes) are, pay more and benefit less from extra buffer.
"""

from __future__ import annotations

from .uniform_vs_datadriven import (
    DEFAULT_BUFFER_SIZES,
    UniformVsDataDrivenResult,
    run_comparison,
)

__all__ = ["run"]

META = {
    "name": "fig8",
    "title": "Uniform vs. data-driven queries on the CFD data",
    "source": "Fig. 8",
}
"""Experiment metadata for the runner registry (rule RL004)."""


def run(buffer_sizes=DEFAULT_BUFFER_SIZES) -> UniformVsDataDrivenResult:
    """Reproduce Fig. 8 (CFD data)."""
    return run_comparison("cfd", "Fig. 8", buffer_sizes=buffer_sizes)
