"""Table 2 — number of nodes per level of the deep pinning-study trees.

"We created synthetic point data sets with 40,000 to 250,000 points and
used nodes of size 25.  This resulted in R-trees with 4 levels" —
Table 2 lists the node counts per level.  With ceil-division packing
the counts are fully determined by the data size: e.g. 250,000 points
give 10000/400/16/1 (leaf to root), so pinning the top three levels
pins 417 pages, the number quoted in §5.5.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import Table, get_description

__all__ = ["Table2Result", "run"]

META = {
    "name": "table2",
    "title": "Nodes per level of the deep pinning-study trees",
    "source": "Table 2",
}
"""Experiment metadata for the runner registry (rule RL004)."""

DEFAULT_SIZES = (40_000, 80_000, 120_000, 160_000, 200_000, 250_000)
CAPACITY = 25


@dataclass(frozen=True)
class Table2Result:
    """Node counts per level (root first) for each data size."""

    capacity: int
    counts: dict[int, tuple[int, ...]]

    def pinned_pages(self, size: int, levels: int) -> int:
        """Pages pinned when pinning the top ``levels`` levels."""
        return sum(self.counts[size][:levels])

    def to_text(self) -> str:
        height = max(len(c) for c in self.counts.values())
        headers = ["points"] + [f"level {i}" for i in range(height)] + ["total"]
        table = Table(headers)
        for size, levels in sorted(self.counts.items()):
            padded = list(levels) + [0] * (height - len(levels))
            table.add(size, *padded, sum(levels))
        return table.to_text(
            f"Table 2: nodes per level (synthetic points, node size {self.capacity})"
        )


def run(sizes=DEFAULT_SIZES, loader: str = "hs") -> Table2Result:
    """Reproduce Table 2 (tree shapes for the pinning study)."""
    counts = {
        size: get_description("point", size, CAPACITY, loader).node_counts
        for size in sizes
    }
    return Table2Result(capacity=CAPACITY, counts=counts)
