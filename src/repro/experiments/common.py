"""Shared infrastructure for the paper's experiments.

Data sets and tree descriptions are deterministic and cached per
process, so a bench run builds each tree (including the slow TAT
trees) exactly once.  Simulation budgets honour environment variables
so the validation experiments can be scaled up toward the paper's
20 × 10⁶ queries when runtime allows:

* ``REPRO_SIM_BATCHES``  (default 20, as in the paper)
* ``REPRO_SIM_QUERIES``  (queries per batch, default 20,000)
* ``REPRO_SIM_WORKERS``  (default 0: in-process sweeps; ``>= 1``
  shards ``simulate_sweep`` across that many worker processes —
  results are bit-identical either way, see ``docs/PARALLELISM.md``)
* ``REPRO_DATASET_MMAP`` (a directory: cache generated data sets as
  memory-mapped ``.npy`` files there and serve them zero-copy, so
  sweep worker processes share one page-cache copy per data set)
* ``REPRO_PROBE_BATCHES`` / ``REPRO_PROBE_QUERIES`` (defaults 5 /
  2,000: the smoke-sized budget every ``--metrics-out`` probe runs
  with — one definition here instead of one per probe entry point)
* ``REPRO_SERVE_SHARDS`` (default 1: buffer shards K for the serving
  probes; K=1 reproduces the batch simulator bit-exactly, see
  ``docs/SERVING.md``)
* ``REPRO_SERVE_WORKERS`` (default 0: in-process serving; ``>= 1``
  runs the serving probe with that many buffer shards, each in its
  own fork worker process — overrides ``REPRO_SERVE_SHARDS``, counters
  bit-identical either way, see ``docs/SERVING.md``)
* ``REPRO_SERVE_TELEMETRY`` (a path: stream live serving telemetry
  there as ``repro-telemetry/1`` JSONL — the env twin of
  ``runner --telemetry-out``; empty/unset disables the sink)
* ``REPRO_SERVE_TELEMETRY_INTERVAL_MS`` (default 100: the sink's
  sampling period)
* ``REPRO_SERVE_SLO_P99_MS`` / ``REPRO_SERVE_SLO_HIT_FLOOR`` /
  ``REPRO_SERVE_SLO_BUDGET`` (defaults 50 / 0.0 / 0.01: the SLO
  monitor's p99 target, hit-ratio floor and error budget for
  telemetry-enabled probes)
* ``REPRO_SERVE_SLO_FAST_TICKS`` / ``REPRO_SERVE_SLO_SLOW_TICKS``
  (defaults 5 / 60: the multiwindow alert's fast and slow trailing
  windows, in ticks — the monitor alerts only when both burn)
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Sequence

from ..datasets import (
    cfd_like,
    open_mmap,
    save_mmap,
    synthetic_point,
    synthetic_region,
    tiger_like,
)
from ..geometry import RectArray
from ..packing import load_description
from ..rtree import TreeDescription

__all__ = [
    "DATASET_SEEDS",
    "Table",
    "get_dataset",
    "get_description",
    "probe_budget",
    "serve_shards",
    "serve_slo",
    "serve_telemetry",
    "serve_telemetry_interval_s",
    "serve_workers",
    "sim_batches",
    "sim_queries_per_batch",
    "sim_workers",
]

DATASET_SEEDS = {"tiger": 1998, "cfd": 737, "region": 11, "point": 13}
"""Fixed seeds: every experiment sees the same data sets."""


def sim_batches() -> int:
    """Number of batch-means batches for simulations."""
    return int(os.environ.get("REPRO_SIM_BATCHES", "20"))


def sim_queries_per_batch() -> int:
    """Queries per simulation batch."""
    return int(os.environ.get("REPRO_SIM_QUERIES", "20000"))


def sim_workers() -> int:
    """Worker processes for sweep simulations (0 = in-process)."""
    return int(os.environ.get("REPRO_SIM_WORKERS", "0"))


def probe_budget() -> tuple[int, int]:
    """``(n_batches, batch_size)`` for ``--metrics-out`` probes.

    The one definition of the smoke-sized probe budget: every probe
    entry point (:mod:`repro.experiments.probes`) resolves its default
    budget here instead of re-deriving it, so scaling probes up means
    setting ``REPRO_PROBE_BATCHES`` / ``REPRO_PROBE_QUERIES`` once.
    """
    n_batches = int(os.environ.get("REPRO_PROBE_BATCHES", "5"))
    batch_size = int(os.environ.get("REPRO_PROBE_QUERIES", "2000"))
    if n_batches < 2:
        raise ValueError("REPRO_PROBE_BATCHES must be >= 2 (batch means)")
    if batch_size < 1:
        raise ValueError("REPRO_PROBE_QUERIES must be positive")
    return n_batches, batch_size


def serve_shards() -> int:
    """Buffer shards K for serving probes (default 1 = paper-exact)."""
    shards = int(os.environ.get("REPRO_SERVE_SHARDS", "1"))
    if shards < 1:
        raise ValueError("REPRO_SERVE_SHARDS must be >= 1")
    return shards


def serve_workers() -> int:
    """Process workers for serving probes (default 0 = in-process).

    ``K >= 1`` serves through ``K`` buffer shards, each owned by a
    long-lived fork worker process (``QueryService(...,
    worker_processes=True)``) — this *sets* the shard count, so it
    overrides ``REPRO_SERVE_SHARDS`` when both are given.  Buffer
    counters are bit-identical to the in-process sharded pool at the
    same K (see ``docs/SERVING.md``); platforms without the ``fork``
    start method silently fall back in-process.
    """
    workers = int(os.environ.get("REPRO_SERVE_WORKERS", "0"))
    if workers < 0:
        raise ValueError("REPRO_SERVE_WORKERS must be >= 0")
    return workers


def serve_telemetry() -> str | None:
    """Telemetry stream path for serving probes (None = disabled).

    The environment twin of ``runner --telemetry-out``; an explicit
    CLI flag wins over the variable.
    """
    path = os.environ.get("REPRO_SERVE_TELEMETRY", "").strip()
    return path or None


def serve_telemetry_interval_s() -> float:
    """Telemetry sampling period in seconds (default 0.1 = 100 ms)."""
    interval_ms = float(
        os.environ.get("REPRO_SERVE_TELEMETRY_INTERVAL_MS", "100")
    )
    if interval_ms <= 0:
        raise ValueError("REPRO_SERVE_TELEMETRY_INTERVAL_MS must be positive")
    return interval_ms / 1000.0


def serve_slo() -> tuple[float, float, float, int, int]:
    """``(p99_target_us, hit_ratio_floor, budget, fast, slow)`` for the SLO.

    Defaults: 50 ms p99 (generous for smoke-sized probes on shared CI
    hosts), a 0.0 hit-ratio floor (never burns — raise it per run when
    the Eq. 5/6 prediction for the configuration is known), a 1%
    error budget, and 5-tick fast / 60-tick slow alert windows (the
    monitor pages only when both burn above 1.0).
    """
    p99_ms = float(os.environ.get("REPRO_SERVE_SLO_P99_MS", "50"))
    hit_floor = float(os.environ.get("REPRO_SERVE_SLO_HIT_FLOOR", "0.0"))
    budget = float(os.environ.get("REPRO_SERVE_SLO_BUDGET", "0.01"))
    fast = int(os.environ.get("REPRO_SERVE_SLO_FAST_TICKS", "5"))
    slow = int(os.environ.get("REPRO_SERVE_SLO_SLOW_TICKS", "60"))
    if p99_ms <= 0:
        raise ValueError("REPRO_SERVE_SLO_P99_MS must be positive")
    if not 0.0 <= hit_floor <= 1.0:
        raise ValueError("REPRO_SERVE_SLO_HIT_FLOOR must be in [0, 1]")
    if not 0.0 < budget <= 1.0:
        raise ValueError("REPRO_SERVE_SLO_BUDGET must be in (0, 1]")
    if fast < 1:
        raise ValueError("REPRO_SERVE_SLO_FAST_TICKS must be >= 1")
    if slow < fast:
        raise ValueError(
            "REPRO_SERVE_SLO_SLOW_TICKS must be >= REPRO_SERVE_SLO_FAST_TICKS"
        )
    return p99_ms * 1000.0, hit_floor, budget, fast, slow


def _generate_dataset(name: str, n: int | None) -> RectArray:
    seed = DATASET_SEEDS.get(name)
    if name == "tiger":
        return tiger_like(rng=seed) if n is None else tiger_like(n, rng=seed)
    if name == "cfd":
        return cfd_like(rng=seed) if n is None else cfd_like(n, rng=seed)
    if name == "region":
        if n is None:
            raise ValueError("synthetic region data needs an explicit size")
        return synthetic_region(n, rng=seed)
    if name == "point":
        if n is None:
            raise ValueError("synthetic point data needs an explicit size")
        return synthetic_point(n, rng=seed)
    raise ValueError(f"unknown dataset {name!r}")


@lru_cache(maxsize=None)
def get_dataset(name: str, n: int | None = None) -> RectArray:
    """A cached, deterministic data set by name.

    ``name`` is one of ``tiger``, ``cfd``, ``region``, ``point``;
    ``n`` overrides the default size (mandatory for the synthetic
    families).  With ``REPRO_DATASET_MMAP`` set to a directory the
    data set is written there once (keyed by name, size and seed) and
    served as a zero-copy memory-mapped view — byte-identical to the
    generated array, but shared across processes via the page cache.
    """
    cache_dir = os.environ.get("REPRO_DATASET_MMAP", "")
    if not cache_dir:
        return _generate_dataset(name, n)
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    seed = DATASET_SEEDS.get(name)
    path = directory / f"{name}-{'def' if n is None else n}-s{seed}.npy"
    if not path.exists():
        save_mmap(path, _generate_dataset(name, n))
    return open_mmap(path)


@lru_cache(maxsize=None)
def get_description(
    dataset: str, n: int | None, capacity: int, loader: str
) -> TreeDescription:
    """Cached tree description for (dataset, size, capacity, loader)."""
    data = get_dataset(dataset, n)
    return load_description(loader, data, capacity)


class Table:
    """A minimal fixed-width text table for experiment output."""

    def __init__(self, headers: Sequence[str]) -> None:
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add(self, *cells: object) -> None:
        """Append a row; floats are rendered with 4 significant digits."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_render(c) for c in cells])

    def to_text(self, title: str | None = None) -> str:
        """Render the table with aligned columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if title:
            lines.append(title)
        lines.append("  ".join(h.rjust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
