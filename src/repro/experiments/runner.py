"""Command-line front end: ``repro-experiments <name> [...]``.

Runs any of the paper's tables/figures and prints the regenerated
rows/series.  ``repro-experiments all`` runs everything (Table 1 is
the slow one — it simulates; its budget is controlled by the
``REPRO_SIM_BATCHES`` / ``REPRO_SIM_QUERIES`` environment variables).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from . import fig5, fig6, fig7, fig8, fig9, fig10, fig11, table1, table2

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS: dict[str, Callable[[], object]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
}
"""Experiment names to zero-argument runners (paper defaults)."""


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "names",
        nargs="+",
        metavar="experiment",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    failed: list[str] = []
    for name in names:
        start = time.perf_counter()
        try:
            result = EXPERIMENTS[name]()
        except Exception as exc:
            elapsed = time.perf_counter() - start
            print(
                f"[{name} FAILED after {elapsed:.1f}s: "
                f"{type(exc).__name__}: {exc}]",
                file=sys.stderr,
            )
            failed.append(name)
            continue
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
    if failed:
        print(
            f"{len(failed)} of {len(names)} experiment(s) failed: "
            f"{', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
