"""Command-line front end: ``repro-experiments <name> [...]``.

Runs any of the paper's tables/figures and prints the regenerated
rows/series.  ``repro-experiments all`` runs everything (Table 1 is
the slow one — it simulates; its budget is controlled by the
``REPRO_SIM_BATCHES`` / ``REPRO_SIM_QUERIES`` environment variables).

``--metrics-out PATH`` additionally writes one ``repro-metrics`` JSON
document per experiment — its result data, wall-clock timing, and an
instrumented probe simulation's per-level buffer breakdown and query
trace (see ``docs/OBSERVABILITY.md`` for the schema).

``--trace-out PATH`` installs a process-wide span tracer for the whole
run: one root span per experiment, nested phase spans from the
simulator, model, accel and packing layers, exported as Chrome
trace-event JSON (drop the file on https://ui.perfetto.dev) plus a
folded flamegraph text file at ``PATH`` + ``.folded`` (or
``--trace-folded``).  ``--profile`` layers ``tracemalloc`` on top:
spans gain ``mem_delta_kb`` tags and the export embeds a
top-allocation-sites report under ``"profile"``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable

from ..obs import (
    MetricsRegistry,
    Profiler,
    Tracer,
    experiment_document,
    metrics_report,
    serving_section,
    simulation_section,
    span,
    sweep_section,
    use_tracer,
    write_chrome_trace,
    write_folded,
    write_report,
)
from . import fig5, fig6, fig7, fig8, fig9, fig10, fig11, table1, table2
from .probes import (
    METRICS_PROBES,
    SERVE_PROBES,
    SWEEP_PROBES,
    run_probe,
    run_serve_probe,
    run_sweep_probe,
)

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS: dict[str, Callable[[], object]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
}
"""Experiment names to zero-argument runners (paper defaults)."""

METAS: dict[str, dict[str, str]] = {
    "table1": table1.META,
    "table2": table2.META,
    "fig5": fig5.META,
    "fig6": fig6.META,
    "fig7": fig7.META,
    "fig8": fig8.META,
    "fig9": fig9.META,
    "fig10": fig10.META,
    "fig11": fig11.META,
}
"""Experiment names to their module ``META`` blocks (RL004)."""


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "names",
        nargs="+",
        metavar="experiment",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write a repro-metrics JSON report (one document per "
            "experiment: results, timings, per-level buffer stats from "
            "an instrumented probe simulation)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "trace the run and write Chrome trace-event JSON "
            "(Perfetto-loadable; a folded flamegraph lands next to it)"
        ),
    )
    parser.add_argument(
        "--trace-folded",
        metavar="PATH",
        default=None,
        help=(
            "where to write the folded flamegraph text "
            "(default: TRACE_OUT + '.folded')"
        ),
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help=(
            "additionally run each experiment's open-loop serving "
            "probe (Poisson load through the query service; shard "
            "count from REPRO_SERVE_SHARDS, or REPRO_SERVE_WORKERS=K "
            "for K process-per-shard fork workers — bit-identical "
            "counters, true multi-core concurrency) and export latency "
            "percentiles + throughput in the document's 'serving' "
            "section (requires --metrics-out)"
        ),
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        default=None,
        help=(
            "with --serve: stream live serving telemetry "
            "(repro-telemetry/1 JSONL, one line per 100 ms tick: "
            "per-shard hit-ratio deltas, queue depth, windowed "
            "percentiles, SLO burn) to PATH; with several experiments "
            "the experiment name is inserted before the suffix; "
            "defaults to REPRO_SERVE_TELEMETRY; render with "
            "tools/serve_report.py"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "profile allocations with tracemalloc: spans gain "
            "mem_delta_kb tags and the trace export embeds a "
            "top-allocation-sites report (slower; implies tracing)"
        ),
    )
    args = parser.parse_args(argv)
    if args.serve and args.metrics_out is None:
        parser.error("--serve requires --metrics-out (it only adds a "
                     "'serving' section to the metrics report)")
    if args.telemetry_out is not None and not args.serve:
        parser.error("--telemetry-out requires --serve (telemetry "
                     "samples the serving probe)")

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    tracer: Tracer | None = None
    profiler: Profiler | None = None
    previous_tracer: Tracer | None = None
    if args.trace_out is not None or args.profile:
        tracer = Tracer()
        previous_tracer = use_tracer(tracer)
        if args.profile:
            profiler = Profiler()
            profiler.start()
            profiler.attach(tracer)

    try:
        failed: list[str] = []
        documents: list[dict[str, object]] = []
        for name in names:
            start = time.perf_counter()
            try:
                with span("experiment", experiment=name):
                    result = EXPERIMENTS[name]()
            except Exception as exc:
                elapsed = time.perf_counter() - start
                print(
                    f"[{name} FAILED after {elapsed:.1f}s: "
                    f"{type(exc).__name__}: {exc}]",
                    file=sys.stderr,
                )
                failed.append(name)
                continue
            elapsed = time.perf_counter() - start
            print(result.to_text())
            print(f"[{name} completed in {elapsed:.1f}s]")
            print()
            if args.metrics_out is not None:
                documents.append(
                    _collect_metrics(
                        name,
                        result,
                        elapsed,
                        args.trace_out,
                        serve=args.serve,
                        telemetry_out=_telemetry_path(
                            args.telemetry_out, name, len(names)
                        ),
                    )
                )
    finally:
        if tracer is not None:
            use_tracer(previous_tracer)

    if args.metrics_out is not None:
        write_report(args.metrics_out, metrics_report(documents))
        print(
            f"[metrics for {len(documents)} experiment(s) written to "
            f"{args.metrics_out}]"
        )

    if tracer is not None:
        profile_report = profiler.report() if profiler is not None else None
        if args.trace_out is not None:
            write_chrome_trace(
                args.trace_out, tracer.finished(), profile=profile_report
            )
            folded_path = args.trace_folded or args.trace_out + ".folded"
            write_folded(folded_path, tracer.finished())
            print(
                f"[trace with {len(tracer)} span(s) written to "
                f"{args.trace_out}; folded flamegraph in {folded_path}]"
            )
        if profiler is not None:
            _print_profile(profile_report)
            profiler.stop()

    if failed:
        print(
            f"{len(failed)} of {len(names)} experiment(s) failed: "
            f"{', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _print_profile(report: dict[str, object] | None) -> None:
    """Render the top-allocation-sites table on stdout."""
    if not report:
        return
    print(
        f"[profile: current {report['current_kb']:.0f} KiB, "
        f"peak {report['peak_kb']:.0f} KiB]"
    )
    for site in report["top_allocations"]:
        print(f"  {site['kb']:>12.1f} KiB  {site['blocks']:>8d} blocks  "
              f"{site['site']}")


def _telemetry_path(
    telemetry_out: str | None, name: str, n_experiments: int
) -> str | None:
    """Per-experiment telemetry path: insert the experiment name.

    One experiment writes to the path verbatim; several would
    otherwise overwrite each other's streams, so ``telemetry.jsonl``
    becomes ``telemetry-fig6.jsonl`` and so on.
    """
    if telemetry_out is None or n_experiments == 1:
        return telemetry_out
    path = Path(telemetry_out)
    return str(path.with_name(f"{path.stem}-{name}{path.suffix}"))


def _collect_metrics(
    name: str,
    result: object,
    wall_seconds: float,
    trace_out: str | None = None,
    serve: bool = False,
    telemetry_out: str | None = None,
) -> dict[str, object]:
    """Build one metrics document, running the experiment's probe."""
    registry = MetricsRegistry()
    simulation = None
    spec = METRICS_PROBES.get(name)
    if spec is not None:
        with span("experiment.probe", experiment=name):
            with registry.timer("probe.wall"):
                sim_result, probe = run_probe(spec, registry)
        simulation = simulation_section(sim_result, probe)
    sweep = None
    sweep_spec = SWEEP_PROBES.get(name)
    if sweep_spec is not None:
        with span("experiment.sweep_probe", experiment=name):
            with registry.timer("sweep_probe.wall"):
                sweep_results, sweep_probe = run_sweep_probe(
                    sweep_spec, registry
                )
        sweep = sweep_section(sweep_results, sweep_probe)
    serving = None
    serve_spec = SERVE_PROBES.get(name) if serve else None
    if serve_spec is not None:
        with span("experiment.serve_probe", experiment=name):
            with registry.timer("serve_probe.wall"):
                load_report, serve_probe, telemetry_ptr = run_serve_probe(
                    serve_spec, registry, telemetry_out=telemetry_out
                )
        serving = serving_section(
            load_report, serve_probe, telemetry=telemetry_ptr
        )
    return experiment_document(
        name=name,
        meta=METAS.get(name, {}),
        result=result,
        wall_seconds=wall_seconds,
        simulation=simulation,
        sweep=sweep,
        serving=serving,
        registry=registry,
        trace=trace_out,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
