"""Command-line front end: ``repro-experiments <name> [...]``.

Runs any of the paper's tables/figures and prints the regenerated
rows/series.  ``repro-experiments all`` runs everything (Table 1 is
the slow one — it simulates; its budget is controlled by the
``REPRO_SIM_BATCHES`` / ``REPRO_SIM_QUERIES`` environment variables).

``--metrics-out PATH`` additionally writes one ``repro-metrics`` JSON
document per experiment — its result data, wall-clock timing, and an
instrumented probe simulation's per-level buffer breakdown and query
trace (see ``docs/OBSERVABILITY.md`` for the schema).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from ..obs import (
    MetricsRegistry,
    experiment_document,
    metrics_report,
    simulation_section,
    write_report,
)
from . import fig5, fig6, fig7, fig8, fig9, fig10, fig11, table1, table2
from .probes import METRICS_PROBES, run_probe

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS: dict[str, Callable[[], object]] = {
    "table1": table1.run,
    "table2": table2.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
}
"""Experiment names to zero-argument runners (paper defaults)."""

METAS: dict[str, dict[str, str]] = {
    "table1": table1.META,
    "table2": table2.META,
    "fig5": fig5.META,
    "fig6": fig6.META,
    "fig7": fig7.META,
    "fig8": fig8.META,
    "fig9": fig9.META,
    "fig10": fig10.META,
    "fig11": fig11.META,
}
"""Experiment names to their module ``META`` blocks (RL004)."""


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-experiments`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "names",
        nargs="+",
        metavar="experiment",
        help=f"one or more of: {', '.join(EXPERIMENTS)}, or 'all'",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write a repro-metrics JSON report (one document per "
            "experiment: results, timings, per-level buffer stats from "
            "an instrumented probe simulation)"
        ),
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    failed: list[str] = []
    documents: list[dict[str, object]] = []
    for name in names:
        start = time.perf_counter()
        try:
            result = EXPERIMENTS[name]()
        except Exception as exc:
            elapsed = time.perf_counter() - start
            print(
                f"[{name} FAILED after {elapsed:.1f}s: "
                f"{type(exc).__name__}: {exc}]",
                file=sys.stderr,
            )
            failed.append(name)
            continue
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
        if args.metrics_out is not None:
            documents.append(_collect_metrics(name, result, elapsed))

    if args.metrics_out is not None:
        write_report(args.metrics_out, metrics_report(documents))
        print(
            f"[metrics for {len(documents)} experiment(s) written to "
            f"{args.metrics_out}]"
        )

    if failed:
        print(
            f"{len(failed)} of {len(names)} experiment(s) failed: "
            f"{', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _collect_metrics(
    name: str, result: object, wall_seconds: float
) -> dict[str, object]:
    """Build one metrics document, running the experiment's probe."""
    registry = MetricsRegistry()
    simulation = None
    spec = METRICS_PROBES.get(name)
    if spec is not None:
        with registry.timer("probe.wall"):
            sim_result, probe = run_probe(spec, registry)
        simulation = simulation_section(sim_result, probe)
    return experiment_document(
        name=name,
        meta=METAS.get(name, {}),
        result=result,
        wall_seconds=wall_seconds,
        simulation=simulation,
        registry=registry,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
