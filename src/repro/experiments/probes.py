"""Instrumented probe simulations backing ``--metrics-out``.

Most experiments evaluate the *analytical* buffer model, which has no
buffer pool and therefore no per-level counters to export.  A *probe*
is a small instrumented simulation run alongside an experiment with a
representative configuration — same data set family, node capacity
and query model as the experiment, smoke-sized batch budget — whose
per-level hit/miss/eviction breakdown, per-batch counters, and query
trace populate the ``simulation`` section of the experiment's metrics
document (see ``docs/OBSERVABILITY.md``).

Probes deliberately use the fast bulk loaders (HS) rather than TAT so
that ``--metrics-out`` adds seconds, not minutes, to a run; the tree
descriptions are shared with the experiments through the
:func:`~repro.experiments.common.get_description` cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..geometry import RectArray
from ..model import buffer_model
from ..obs import MetricsRegistry, SLOMonitor, TelemetrySink
from ..queries import (
    DataDrivenWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)
from ..serving import LoadGenerator, LoadReport, QueryService
from ..simulation import SimulationResult, simulate, simulate_sweep
from .common import (
    get_dataset,
    get_description,
    probe_budget,
    serve_shards,
    serve_slo,
    serve_telemetry,
    serve_telemetry_interval_s,
    serve_workers,
    sim_workers,
)

__all__ = [
    "METRICS_PROBES",
    "ProbeSpec",
    "SERVE_PROBES",
    "ServeProbeSpec",
    "SWEEP_PROBES",
    "SweepProbeSpec",
    "run_probe",
    "run_serve_probe",
    "run_sweep_probe",
]

WorkloadFactory = Callable[[RectArray], object]


def _resolve_budget(
    n_batches: int | None, batch_size: int | None
) -> tuple[int, int]:
    """Fill unset probe-budget halves from the shared env knobs."""
    default_batches, default_size = probe_budget()
    return (
        default_batches if n_batches is None else n_batches,
        default_size if batch_size is None else batch_size,
    )


def _point(data: RectArray) -> object:
    return UniformPointWorkload()


def _region_1pct(data: RectArray) -> object:
    return UniformRegionWorkload((0.1, 0.1))


def _data_driven_point(data: RectArray) -> object:
    return DataDrivenWorkload.from_rects(data)


_WORKLOAD_FACTORIES: dict[str, WorkloadFactory] = {
    "uniform-point": _point,
    "uniform-region-1pct": _region_1pct,
    "data-driven-point": _data_driven_point,
}


@dataclass(frozen=True)
class ProbeSpec:
    """Configuration of one experiment's metrics probe."""

    dataset: str
    """Data set family (``tiger`` / ``cfd`` / ``region`` / ``point``)."""
    n: int | None
    """Data set size (``None`` for the family's default)."""
    capacity: int
    """R-tree node capacity (entries per page)."""
    loader: str
    """Loading algorithm for the probed tree (a fast bulk loader)."""
    workload: str
    """Workload key: ``uniform-point``, ``uniform-region-1pct`` or
    ``data-driven-point``."""
    buffer_size: int
    """Buffer capacity in pages."""
    pinned_levels: int = 0
    """Top tree levels pinned in the buffer (§3.3)."""

    def as_dict(self) -> dict[str, Any]:
        """The spec as the document's ``simulation.probe`` mapping."""
        return {
            "dataset": self.dataset,
            "n": self.n,
            "capacity": self.capacity,
            "loader": self.loader,
            "workload": self.workload,
            "buffer_size": self.buffer_size,
            "pinned_levels": self.pinned_levels,
        }


METRICS_PROBES: dict[str, ProbeSpec] = {
    "table1": ProbeSpec("region", 165_000, 100, "hs", "uniform-point", 100),
    "table2": ProbeSpec("point", 40_000, 25, "hs", "uniform-point", 100),
    "fig5": ProbeSpec("cfd", None, 100, "hs", "data-driven-point", 100),
    "fig6": ProbeSpec("tiger", None, 100, "hs", "uniform-region-1pct", 100),
    "fig7": ProbeSpec("tiger", None, 100, "hs", "data-driven-point", 100),
    "fig8": ProbeSpec("cfd", None, 100, "hs", "data-driven-point", 100),
    "fig9": ProbeSpec("region", 25_000, 100, "hs", "uniform-point", 300),
    "fig10": ProbeSpec("point", 80_000, 25, "hs", "uniform-point", 500, 3),
    "fig11": ProbeSpec("tiger", None, 25, "hs", "uniform-point", 500, 3),
}
"""One probe per registered experiment, mirroring its data set,
node capacity and query model (fast loaders only)."""


@dataclass(frozen=True)
class SweepProbeSpec:
    """Configuration of one experiment's buffer-size *sweep* probe.

    Same shape as :class:`ProbeSpec`, but with a tuple of buffer sizes
    simulated in one stack-distance pass
    (:func:`~repro.simulation.simulate_sweep`).  The fixed
    ``warmup_queries`` keeps every capacity's measurement window
    identical, so the exported per-capacity miss totals are exactly
    monotone non-increasing (the LRU inclusion property) — the export
    validator enforces this.
    """

    dataset: str
    n: int | None
    capacity: int
    loader: str
    workload: str
    buffer_sizes: tuple[int, ...]
    pinned_levels: int = 0
    warmup_queries: int = 4096

    def as_dict(self) -> dict[str, Any]:
        """The spec as the document's ``sweep.probe`` mapping."""
        return {
            "dataset": self.dataset,
            "n": self.n,
            "capacity": self.capacity,
            "loader": self.loader,
            "workload": self.workload,
            "buffer_sizes": list(self.buffer_sizes),
            "pinned_levels": self.pinned_levels,
            "warmup_queries": self.warmup_queries,
        }


SWEEP_PROBES: dict[str, SweepProbeSpec] = {
    "table1": SweepProbeSpec(
        "region", 165_000, 100, "hs", "uniform-point", (10, 50, 100, 300)
    ),
    "fig6": SweepProbeSpec(
        "tiger", None, 100, "hs", "uniform-region-1pct", (2, 20, 100, 500)
    ),
    "fig9": SweepProbeSpec(
        "region", 25_000, 100, "hs", "uniform-point", (10, 100, 300)
    ),
    "fig11": SweepProbeSpec(
        "tiger", None, 25, "hs", "uniform-point", (100, 200, 500, 1000), 2
    ),
}
"""One sweep probe per buffer-size-sweep experiment: the experiment's
data set and query model, a handful of its swept buffer sizes, all
simulated in a single stack-distance pass."""


def run_probe(
    spec: ProbeSpec,
    registry: MetricsRegistry,
    *,
    n_batches: int | None = None,
    batch_size: int | None = None,
    trace_last: int = 8,
) -> tuple[SimulationResult, dict[str, Any]]:
    """Run one instrumented probe simulation.

    Returns the :class:`~repro.simulation.SimulationResult` (with
    ``level_stats``, ``batch_stats`` and ``trace`` populated) and the
    probe-configuration mapping destined for the document's
    ``simulation.probe`` field.  Deterministic: the simulator's
    default seed and the cached data sets pin every random stream.
    The default budget is :func:`~repro.experiments.common.
    probe_budget` (``REPRO_PROBE_BATCHES`` / ``REPRO_PROBE_QUERIES``).
    """
    n_batches, batch_size = _resolve_budget(n_batches, batch_size)
    try:
        factory = _WORKLOAD_FACTORIES[spec.workload]
    except KeyError:
        raise ValueError(
            f"unknown probe workload {spec.workload!r}; "
            f"choices: {sorted(_WORKLOAD_FACTORIES)}"
        ) from None
    data = get_dataset(spec.dataset, spec.n)
    desc = get_description(spec.dataset, spec.n, spec.capacity, spec.loader)
    workload = factory(data)
    result = simulate(
        desc,
        workload,
        spec.buffer_size,
        pinned_levels=spec.pinned_levels,
        n_batches=n_batches,
        batch_size=batch_size,
        registry=registry,
        trace_last=trace_last,
    )
    probe = spec.as_dict()
    probe["n_batches"] = n_batches
    probe["batch_size"] = batch_size
    return result, probe


def run_sweep_probe(
    spec: SweepProbeSpec,
    registry: MetricsRegistry | None = None,
    *,
    n_batches: int | None = None,
    batch_size: int | None = None,
    workers: int | None = None,
) -> tuple[tuple[SimulationResult, ...], dict[str, Any]]:
    """Run one multi-capacity sweep probe in a single offline pass.

    Returns the per-capacity results (ordered like
    ``spec.buffer_sizes``) and the probe-configuration mapping for the
    document's ``sweep.probe`` field.  Deterministic: the sweep's
    default seed and the cached data sets pin every random stream,
    and the worker count (``None`` honours ``REPRO_SIM_WORKERS``)
    never changes a single byte of the results.  The default budget is
    :func:`~repro.experiments.common.probe_budget`.
    """
    n_batches, batch_size = _resolve_budget(n_batches, batch_size)
    try:
        factory = _WORKLOAD_FACTORIES[spec.workload]
    except KeyError:
        raise ValueError(
            f"unknown probe workload {spec.workload!r}; "
            f"choices: {sorted(_WORKLOAD_FACTORIES)}"
        ) from None
    data = get_dataset(spec.dataset, spec.n)
    desc = get_description(spec.dataset, spec.n, spec.capacity, spec.loader)
    workload = factory(data)
    results = simulate_sweep(
        desc,
        workload,
        spec.buffer_sizes,
        pinned_levels=spec.pinned_levels,
        n_batches=n_batches,
        batch_size=batch_size,
        warmup_queries=spec.warmup_queries,
        registry=registry,
        workers=sim_workers() if workers is None else workers,
    )
    probe = spec.as_dict()
    probe["n_batches"] = n_batches
    probe["batch_size"] = batch_size
    return results, probe


@dataclass(frozen=True)
class ServeProbeSpec:
    """Configuration of one experiment's *serving* probe.

    An open-loop load test through :class:`~repro.serving.
    QueryService`: a seeded Poisson (or uniform) arrival schedule at
    ``rate_qps`` plays ``n_queries`` queries against the experiment's
    tree/workload/buffer configuration, and the resulting latency
    percentiles, throughput and shard-reconciled buffer counters
    populate the document's ``serving`` section.  Unlike the batch
    probes, wall-clock quantities here are real measurements on the
    host — only the arrival schedule, the query points and the buffer
    counters are deterministic.
    """

    dataset: str
    n: int | None
    capacity: int
    loader: str
    workload: str
    buffer_size: int
    pinned_levels: int = 0
    rate_qps: float = 5000.0
    n_queries: int = 4000
    max_batch: int = 1024
    max_wait_us: float = 500.0
    arrivals: str = "poisson"
    zipf_keys: int = 0
    """> 0: draw queries Zipf(1.1)-keyed over this many of the data
    set's rectangle centres ("millions of users" skew) instead of the
    workload sampler."""

    def as_dict(self) -> dict[str, Any]:
        """The spec as the document's ``serving.probe`` mapping."""
        return {
            "dataset": self.dataset,
            "n": self.n,
            "capacity": self.capacity,
            "loader": self.loader,
            "workload": self.workload,
            "buffer_size": self.buffer_size,
            "pinned_levels": self.pinned_levels,
            "rate_qps": self.rate_qps,
            "n_queries": self.n_queries,
            "max_batch": self.max_batch,
            "max_wait_us": self.max_wait_us,
            "arrivals": self.arrivals,
            "zipf_keys": self.zipf_keys,
        }


SERVE_PROBES: dict[str, ServeProbeSpec] = {
    "fig6": ServeProbeSpec(
        "tiger", None, 100, "hs", "uniform-region-1pct", 100
    ),
    "fig9": ServeProbeSpec(
        "region", 25_000, 100, "hs", "uniform-point", 300
    ),
    "fig10": ServeProbeSpec(
        "point", 80_000, 25, "hs", "uniform-point", 500, 3,
        zipf_keys=10_000,
    ),
}
"""Serving probes for the buffer-sensitive experiments: fig6/fig9
replay their batch probes' configurations as live traffic; fig10 adds
the Zipfian-keyed hot-set skew over pinned levels."""


def run_serve_probe(
    spec: ServeProbeSpec,
    registry: MetricsRegistry | None = None,
    *,
    shards: int | None = None,
    workers: int = 1,
    telemetry_out: str | None = None,
) -> tuple[LoadReport, dict[str, Any], dict[str, Any] | None]:
    """Run one open-loop serving probe.

    Builds a :class:`~repro.serving.QueryService` over the
    experiment's cached tree, starts it, plays the spec's seeded
    arrival schedule through a :class:`~repro.serving.LoadGenerator`,
    and returns the :class:`~repro.serving.LoadReport`, the
    probe-configuration mapping for the document's ``serving.probe``
    field, and the telemetry pointer block for the section's
    ``telemetry`` field (None when telemetry is off).  ``shards=None``
    honours ``REPRO_SERVE_SHARDS`` (default 1 — the paper-exact single
    buffer); ``telemetry_out=None`` honours ``REPRO_SERVE_TELEMETRY``.

    ``REPRO_SERVE_WORKERS=K`` (K >= 1) moves the buffer into the
    process-per-shard topology: the probe serves through K shards,
    each owned by a fork worker process (overriding
    ``REPRO_SERVE_SHARDS`` — the worker count *is* the shard count).
    Counters are bit-identical to the in-process pool at the same K;
    the probe dict and the telemetry header record
    ``worker_processes`` so runs are never compared across topologies
    silently.

    With telemetry on, a :class:`~repro.obs.TelemetrySink` samples the
    service every ``REPRO_SERVE_TELEMETRY_INTERVAL_MS`` during the
    run; the stream header carries the probe configuration and the
    Eq. 5/6 model-predicted hit ratio for the same tree/workload/
    buffer, so every tick is directly comparable to the paper's curve
    (``tools/serve_report.py`` renders exactly that comparison).
    """
    try:
        factory = _WORKLOAD_FACTORIES[spec.workload]
    except KeyError:
        raise ValueError(
            f"unknown probe workload {spec.workload!r}; "
            f"choices: {sorted(_WORKLOAD_FACTORIES)}"
        ) from None
    worker_procs = serve_workers()
    if worker_procs > 0:
        # The process topology is one worker per shard, so the worker
        # count sets K — an explicit REPRO_SERVE_SHARDS is overridden.
        shards = worker_procs
    elif shards is None:
        shards = serve_shards()
    data = get_dataset(spec.dataset, spec.n)
    desc = get_description(spec.dataset, spec.n, spec.capacity, spec.loader)
    workload = factory(data)
    service = QueryService(
        desc,
        workload,
        spec.buffer_size,
        shards=shards,
        max_batch=spec.max_batch,
        max_wait_us=spec.max_wait_us,
        pinned_levels=spec.pinned_levels,
        worker_processes=worker_procs > 0,
        expected_queries=spec.n_queries,
    )
    key_points = None
    if spec.zipf_keys > 0:
        # Popularity ranks over the first zipf_keys data-rectangle
        # centres: deterministic, in the workload's stab space (point
        # workloads stab the unit square directly).
        key_points = data.centers()[: spec.zipf_keys]
    generator = LoadGenerator(
        service,
        rate_qps=spec.rate_qps,
        n_queries=spec.n_queries,
        arrivals=spec.arrivals,
        key_points=key_points,
    )
    if telemetry_out is None:
        telemetry_out = serve_telemetry()
    sink = None
    telemetry_ptr = None
    if telemetry_out is not None:
        # The Eq. 5/6 prediction for this exact configuration rides in
        # the stream header: the experiments layer owns the model, the
        # sink just records the number (obs stays a leaf package).
        prediction = buffer_model(
            desc, workload, spec.buffer_size, spec.pinned_levels
        )
        p99_target_us, hit_floor, budget, fast, slow = serve_slo()
        sink = TelemetrySink(
            service,
            interval_s=serve_telemetry_interval_s(),
            slo=SLOMonitor(
                p99_target_us=p99_target_us,
                hit_ratio_floor=hit_floor,
                budget=budget,
                fast_window=fast,
                slow_window=slow,
            ),
            path=telemetry_out,
            config={
                **spec.as_dict(),
                "shards": shards,
                "workers": workers,
                "worker_processes": service.worker_processes,
            },
            model={
                "hit_ratio": prediction.hit_ratio,
                "disk_accesses": prediction.disk_accesses,
                "node_accesses": prediction.node_accesses,
                "n_star": prediction.n_star,
            },
        )
        service.telemetry = sink
    service.start(workers=workers)
    try:
        if sink is not None:
            sink.start()
        report = generator.run()
    finally:
        if sink is not None:
            # The generator has drained, so the close-time final tick
            # carries cumulative counters equal to aggregate_stats() —
            # the reconciliation the export validator enforces.  The
            # sink must close before the pool: the final tick samples
            # shard stats, which process workers serve over IPC.
            sink.close()
        service.close()
    if sink is not None:
        telemetry_ptr = sink.pointer()
    if registry is not None:
        registry.counter("serving.queries").inc(report.queries)
        registry.counter("serving.batches").inc(report.batches)
        registry.counter("serving.misses").inc(
            report.buffer_aggregate["misses"]
        )
        registry.gauge("serving.shards").set(report.shards)
        registry.gauge("serving.throughput_qps").set(report.throughput_qps)
        registry.gauge("serving.p99_us").set(
            report.latency_summary_us["p99"]
        )
        if telemetry_ptr is not None:
            registry.gauge("serving.telemetry_ticks").set(
                telemetry_ptr["ticks"]
            )
    probe = spec.as_dict()
    probe["shards"] = shards
    probe["workers"] = workers
    return report, probe, telemetry_ptr
