"""Instrumented probe simulations backing ``--metrics-out``.

Most experiments evaluate the *analytical* buffer model, which has no
buffer pool and therefore no per-level counters to export.  A *probe*
is a small instrumented simulation run alongside an experiment with a
representative configuration — same data set family, node capacity
and query model as the experiment, smoke-sized batch budget — whose
per-level hit/miss/eviction breakdown, per-batch counters, and query
trace populate the ``simulation`` section of the experiment's metrics
document (see ``docs/OBSERVABILITY.md``).

Probes deliberately use the fast bulk loaders (HS) rather than TAT so
that ``--metrics-out`` adds seconds, not minutes, to a run; the tree
descriptions are shared with the experiments through the
:func:`~repro.experiments.common.get_description` cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..geometry import RectArray
from ..obs import MetricsRegistry
from ..queries import (
    DataDrivenWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)
from ..simulation import SimulationResult, simulate, simulate_sweep
from .common import get_dataset, get_description, sim_workers

__all__ = [
    "METRICS_PROBES",
    "ProbeSpec",
    "SWEEP_PROBES",
    "SweepProbeSpec",
    "run_probe",
    "run_sweep_probe",
]

WorkloadFactory = Callable[[RectArray], object]


def _point(data: RectArray) -> object:
    return UniformPointWorkload()


def _region_1pct(data: RectArray) -> object:
    return UniformRegionWorkload((0.1, 0.1))


def _data_driven_point(data: RectArray) -> object:
    return DataDrivenWorkload.from_rects(data)


_WORKLOAD_FACTORIES: dict[str, WorkloadFactory] = {
    "uniform-point": _point,
    "uniform-region-1pct": _region_1pct,
    "data-driven-point": _data_driven_point,
}


@dataclass(frozen=True)
class ProbeSpec:
    """Configuration of one experiment's metrics probe."""

    dataset: str
    """Data set family (``tiger`` / ``cfd`` / ``region`` / ``point``)."""
    n: int | None
    """Data set size (``None`` for the family's default)."""
    capacity: int
    """R-tree node capacity (entries per page)."""
    loader: str
    """Loading algorithm for the probed tree (a fast bulk loader)."""
    workload: str
    """Workload key: ``uniform-point``, ``uniform-region-1pct`` or
    ``data-driven-point``."""
    buffer_size: int
    """Buffer capacity in pages."""
    pinned_levels: int = 0
    """Top tree levels pinned in the buffer (§3.3)."""

    def as_dict(self) -> dict[str, Any]:
        """The spec as the document's ``simulation.probe`` mapping."""
        return {
            "dataset": self.dataset,
            "n": self.n,
            "capacity": self.capacity,
            "loader": self.loader,
            "workload": self.workload,
            "buffer_size": self.buffer_size,
            "pinned_levels": self.pinned_levels,
        }


METRICS_PROBES: dict[str, ProbeSpec] = {
    "table1": ProbeSpec("region", 165_000, 100, "hs", "uniform-point", 100),
    "table2": ProbeSpec("point", 40_000, 25, "hs", "uniform-point", 100),
    "fig5": ProbeSpec("cfd", None, 100, "hs", "data-driven-point", 100),
    "fig6": ProbeSpec("tiger", None, 100, "hs", "uniform-region-1pct", 100),
    "fig7": ProbeSpec("tiger", None, 100, "hs", "data-driven-point", 100),
    "fig8": ProbeSpec("cfd", None, 100, "hs", "data-driven-point", 100),
    "fig9": ProbeSpec("region", 25_000, 100, "hs", "uniform-point", 300),
    "fig10": ProbeSpec("point", 80_000, 25, "hs", "uniform-point", 500, 3),
    "fig11": ProbeSpec("tiger", None, 25, "hs", "uniform-point", 500, 3),
}
"""One probe per registered experiment, mirroring its data set,
node capacity and query model (fast loaders only)."""


@dataclass(frozen=True)
class SweepProbeSpec:
    """Configuration of one experiment's buffer-size *sweep* probe.

    Same shape as :class:`ProbeSpec`, but with a tuple of buffer sizes
    simulated in one stack-distance pass
    (:func:`~repro.simulation.simulate_sweep`).  The fixed
    ``warmup_queries`` keeps every capacity's measurement window
    identical, so the exported per-capacity miss totals are exactly
    monotone non-increasing (the LRU inclusion property) — the export
    validator enforces this.
    """

    dataset: str
    n: int | None
    capacity: int
    loader: str
    workload: str
    buffer_sizes: tuple[int, ...]
    pinned_levels: int = 0
    warmup_queries: int = 4096

    def as_dict(self) -> dict[str, Any]:
        """The spec as the document's ``sweep.probe`` mapping."""
        return {
            "dataset": self.dataset,
            "n": self.n,
            "capacity": self.capacity,
            "loader": self.loader,
            "workload": self.workload,
            "buffer_sizes": list(self.buffer_sizes),
            "pinned_levels": self.pinned_levels,
            "warmup_queries": self.warmup_queries,
        }


SWEEP_PROBES: dict[str, SweepProbeSpec] = {
    "table1": SweepProbeSpec(
        "region", 165_000, 100, "hs", "uniform-point", (10, 50, 100, 300)
    ),
    "fig6": SweepProbeSpec(
        "tiger", None, 100, "hs", "uniform-region-1pct", (2, 20, 100, 500)
    ),
    "fig9": SweepProbeSpec(
        "region", 25_000, 100, "hs", "uniform-point", (10, 100, 300)
    ),
    "fig11": SweepProbeSpec(
        "tiger", None, 25, "hs", "uniform-point", (100, 200, 500, 1000), 2
    ),
}
"""One sweep probe per buffer-size-sweep experiment: the experiment's
data set and query model, a handful of its swept buffer sizes, all
simulated in a single stack-distance pass."""


def run_probe(
    spec: ProbeSpec,
    registry: MetricsRegistry,
    *,
    n_batches: int = 5,
    batch_size: int = 2000,
    trace_last: int = 8,
) -> tuple[SimulationResult, dict[str, Any]]:
    """Run one instrumented probe simulation.

    Returns the :class:`~repro.simulation.SimulationResult` (with
    ``level_stats``, ``batch_stats`` and ``trace`` populated) and the
    probe-configuration mapping destined for the document's
    ``simulation.probe`` field.  Deterministic: the simulator's
    default seed and the cached data sets pin every random stream.
    """
    try:
        factory = _WORKLOAD_FACTORIES[spec.workload]
    except KeyError:
        raise ValueError(
            f"unknown probe workload {spec.workload!r}; "
            f"choices: {sorted(_WORKLOAD_FACTORIES)}"
        ) from None
    data = get_dataset(spec.dataset, spec.n)
    desc = get_description(spec.dataset, spec.n, spec.capacity, spec.loader)
    workload = factory(data)
    result = simulate(
        desc,
        workload,
        spec.buffer_size,
        pinned_levels=spec.pinned_levels,
        n_batches=n_batches,
        batch_size=batch_size,
        registry=registry,
        trace_last=trace_last,
    )
    probe = spec.as_dict()
    probe["n_batches"] = n_batches
    probe["batch_size"] = batch_size
    return result, probe


def run_sweep_probe(
    spec: SweepProbeSpec,
    registry: MetricsRegistry | None = None,
    *,
    n_batches: int = 5,
    batch_size: int = 2000,
    workers: int | None = None,
) -> tuple[tuple[SimulationResult, ...], dict[str, Any]]:
    """Run one multi-capacity sweep probe in a single offline pass.

    Returns the per-capacity results (ordered like
    ``spec.buffer_sizes``) and the probe-configuration mapping for the
    document's ``sweep.probe`` field.  Deterministic: the sweep's
    default seed and the cached data sets pin every random stream,
    and the worker count (``None`` honours ``REPRO_SIM_WORKERS``)
    never changes a single byte of the results.
    """
    try:
        factory = _WORKLOAD_FACTORIES[spec.workload]
    except KeyError:
        raise ValueError(
            f"unknown probe workload {spec.workload!r}; "
            f"choices: {sorted(_WORKLOAD_FACTORIES)}"
        ) from None
    data = get_dataset(spec.dataset, spec.n)
    desc = get_description(spec.dataset, spec.n, spec.capacity, spec.loader)
    workload = factory(data)
    results = simulate_sweep(
        desc,
        workload,
        spec.buffer_sizes,
        pinned_levels=spec.pinned_levels,
        n_batches=n_batches,
        batch_size=batch_size,
        warmup_queries=spec.warmup_queries,
        registry=registry,
        workers=sim_workers() if workers is None else workers,
    )
    probe = spec.as_dict()
    probe["n_batches"] = n_batches
    probe["batch_size"] = batch_size
    return results, probe
