"""Figure 7 — uniform vs data-driven queries on the Long Beach data.

The Long Beach set "has large portions of empty space": uniform
queries often land there and are pruned at the root, so they need
*fewer* disk accesses than data-driven queries, which always land on
data.  Adding buffer also helps uniform queries more (the paper quotes
speedups of 3.91× vs 2.86× when growing the buffer from 10 to 500):
under uniform access, node access probabilities are MBR areas, so some
nodes are "hot" and cache well, whereas data-driven access spreads
almost evenly over the leaves.
"""

from __future__ import annotations

from .uniform_vs_datadriven import (
    DEFAULT_BUFFER_SIZES,
    UniformVsDataDrivenResult,
    run_comparison,
)

__all__ = ["run"]

META = {
    "name": "fig7",
    "title": "Uniform vs. data-driven queries on the Long Beach data",
    "source": "Fig. 7",
}
"""Experiment metadata for the runner registry (rule RL004)."""


def run(buffer_sizes=DEFAULT_BUFFER_SIZES) -> UniformVsDataDrivenResult:
    """Reproduce Fig. 7 (Long Beach data)."""
    return run_comparison("tiger", "Fig. 7", buffer_sizes=buffer_sizes)
