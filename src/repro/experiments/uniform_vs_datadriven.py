"""Shared machinery for Figs. 7 and 8 — uniform vs data-driven queries.

Both figures plot, for one data set:

* left panel: disk accesses per point query versus buffer size, under
  the uniform query model and the data-driven query model;
* right panel: the speedup ratio
  ``disk accesses at buffer=10 / disk accesses at buffer=N``,
  showing how much each query model benefits from added buffer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..model import buffer_model_sweep
from ..queries import DataDrivenWorkload, UniformPointWorkload
from .common import Table, get_dataset, get_description

__all__ = ["UniformVsDataDrivenResult", "run_comparison"]

DEFAULT_BUFFER_SIZES = (10, 25, 50, 100, 200, 300, 400, 500)
CAPACITY = 25
"""Node capacity for Figs. 7/8.  The paper does not state it for these
figures, but its quoted speedups (3.91x / 2.86x on Long Beach when
growing the buffer from 10 to 500) only make sense on a tree much
larger than 500 pages — i.e. the 25-entry node size also used for the
pinning study — and our reproduction matches those anchors at 25."""


@dataclass(frozen=True)
class UniformVsDataDrivenResult:
    """Disk-access curves and buffer-speedup ratios for one data set."""

    dataset: str
    figure: str
    buffer_sizes: tuple[int, ...]
    uniform: tuple[float, ...]
    data_driven: tuple[float, ...]

    def speedup(self, curve: tuple[float, ...]) -> tuple[float, ...]:
        """``ED(B=first) / ED(B=N)`` for each swept buffer size."""
        base = curve[0]
        return tuple(
            base / value if value > 0 else math.inf for value in curve
        )

    @property
    def uniform_speedup(self) -> tuple[float, ...]:
        """Buffer benefit under uniform queries (the paper's top curve)."""
        return self.speedup(self.uniform)

    @property
    def data_driven_speedup(self) -> tuple[float, ...]:
        """Buffer benefit under data-driven queries (bottom curve)."""
        return self.speedup(self.data_driven)

    def to_text(self) -> str:
        table = Table(
            ["buffer", "uniform", "data-driven", "speedup(unif)", "speedup(dd)"]
        )
        for i, size in enumerate(self.buffer_sizes):
            table.add(
                size,
                self.uniform[i],
                self.data_driven[i],
                self.uniform_speedup[i],
                self.data_driven_speedup[i],
            )
        return table.to_text(
            f"{self.figure}: uniform vs data-driven point queries "
            f"({self.dataset} data, capacity {CAPACITY})"
        )


def run_comparison(
    dataset: str,
    figure: str,
    buffer_sizes=DEFAULT_BUFFER_SIZES,
    loader: str = "hs",
) -> UniformVsDataDrivenResult:
    """Run the Fig. 7 / Fig. 8 comparison on the named data set."""
    data = get_dataset(dataset, None)
    desc = get_description(dataset, None, CAPACITY, loader)
    uniform = UniformPointWorkload()
    data_driven = DataDrivenWorkload.from_rects(data)

    uniform_curve = tuple(
        r.disk_accesses for r in buffer_model_sweep(desc, uniform, buffer_sizes)
    )
    dd_curve = tuple(
        r.disk_accesses
        for r in buffer_model_sweep(desc, data_driven, buffer_sizes)
    )
    return UniformVsDataDrivenResult(
        dataset=dataset,
        figure=figure,
        buffer_sizes=tuple(buffer_sizes),
        uniform=uniform_curve,
        data_driven=dd_curve,
    )
