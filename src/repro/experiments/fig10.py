"""Figure 10 — effect of pinning versus data size (HS trees).

Point queries on the 4-level synthetic point trees of Table 2 (node
size 25), for buffers of 500, 1,000 and 2,000 pages.  Pinning zero,
one, or two levels performs identically (LRU already keeps those few
pages resident); pinning three levels helps substantially once the
pinned page count is at least about half the buffer — the paper quotes
53% fewer disk accesses at 250,000 points with a 500-page buffer, but
only 4% at 80,000 points.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..buffer import PinningError
from ..model import buffer_model
from ..queries import UniformPointWorkload
from .common import Table, get_description
from .table2 import DEFAULT_SIZES

__all__ = ["Fig10Result", "run"]

META = {
    "name": "fig10",
    "title": "Effect of pinning vs. data size (HS trees)",
    "source": "Fig. 10",
}
"""Experiment metadata for the runner registry (rule RL004)."""

DEFAULT_BUFFERS = (500, 1000, 2000)
DEFAULT_PIN_LEVELS = (0, 1, 2, 3)
CAPACITY = 25


@dataclass(frozen=True)
class Fig10Result:
    """Disk accesses per point query for every (buffer, pin, size) cell."""

    sizes: tuple[int, ...]
    buffers: tuple[int, ...]
    pin_levels: tuple[int, ...]
    disk_accesses: dict[tuple[int, int], tuple[float | None, ...]]
    """(buffer, pinned levels) -> per-size curve (None = pin infeasible)."""

    def improvement(self, buffer_size: int, size: int, levels: int = 3) -> float:
        """Fractional saving of pinning ``levels`` levels vs no pinning."""
        i = self.sizes.index(size)
        base = self.disk_accesses[(buffer_size, 0)][i]
        pinned = self.disk_accesses[(buffer_size, levels)][i]
        if base is None or pinned is None or base == 0:
            return 0.0
        return (base - pinned) / base

    def to_text(self) -> str:
        out = []
        for buffer_size in self.buffers:
            table = Table(
                ["points"] + [f"pin {p}" for p in self.pin_levels] + ["save(3) %"]
            )
            for i, size in enumerate(self.sizes):
                cells = [
                    self.disk_accesses[(buffer_size, p)][i]
                    for p in self.pin_levels
                ]
                rendered = [c if c is not None else "n/a" for c in cells]
                table.add(
                    size,
                    *rendered,
                    100.0 * self.improvement(buffer_size, size),
                )
            out.append(
                table.to_text(
                    f"Fig. 10: disk accesses vs data size, buffer = {buffer_size} "
                    f"(HS, node size {CAPACITY}, point queries)"
                )
            )
        return "\n\n".join(out)


def run(
    sizes=DEFAULT_SIZES,
    buffers=DEFAULT_BUFFERS,
    pin_levels=DEFAULT_PIN_LEVELS,
    loader: str = "hs",
) -> Fig10Result:
    """Reproduce Fig. 10 (pinning benefit vs data size)."""
    workload = UniformPointWorkload()
    curves: dict[tuple[int, int], list[float | None]] = {
        (b, p): [] for b in buffers for p in pin_levels
    }
    for size in sizes:
        desc = get_description("point", size, CAPACITY, loader)
        for b in buffers:
            for p in pin_levels:
                try:
                    result = buffer_model(desc, workload, b, pinned_levels=p)
                except PinningError:
                    curves[(b, p)].append(None)
                else:
                    curves[(b, p)].append(result.disk_accesses)
    return Fig10Result(
        sizes=tuple(sizes),
        buffers=tuple(buffers),
        pin_levels=tuple(pin_levels),
        disk_accesses={k: tuple(v) for k, v in curves.items()},
    )
