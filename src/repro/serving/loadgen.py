"""Open-loop load generation: seeded arrivals against a service.

*Open-loop* means arrivals are scheduled in advance from a seeded
process (Poisson or uniform) and queries are injected at their
scheduled times regardless of how fast the service drains — the
generator never waits for a response before sending the next query.
That is the honest way to measure a service under offered load: a
closed loop would throttle itself to the service's pace and hide
queueing delay entirely (the coordinated-omission trap).  Latency is
therefore measured from the *scheduled* arrival, so time the submit
loop itself falls behind is charged to the queries, not forgotten.

Query popularity comes from one of two seeded sources:

* the workload's own ``sample_points`` (the paper's query models), or
* a **Zipfian-keyed** draw over a fixed set of key points: key at
  popularity rank ``r`` is chosen with probability proportional to
  ``r ** -s`` — the classic many-users skew where a small hot set
  dominates, which is exactly the regime where buffering decides
  performance (the paper's thesis, §1).

Everything is deterministic given ``seed`` except wall-clock
durations and latencies, which are real measurements on this host.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.spans import span
from .service import QueryService

__all__ = ["LoadGenerator", "LoadReport", "zipfian_weights"]


def zipfian_weights(n_keys: int, s: float = 1.1) -> np.ndarray:
    """Zipf popularity over ``n_keys`` ranks: ``P(r) ∝ r ** -s``.

    Rank 1 is the hottest key.  Returns a probability vector summing
    to 1 (float64, deterministic).
    """
    if n_keys < 1:
        raise ValueError("need at least one key")
    if s < 0:
        raise ValueError("Zipf exponent must be non-negative")
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


@dataclass(frozen=True)
class LoadReport:
    """One completed open-loop run, ready for the metrics export.

    ``repro.obs.export.serving_section`` reads these fields verbatim;
    latency values are microseconds.
    """

    queries: int
    """Queries submitted and served (equals the latency count)."""
    wall_seconds: float
    """First submission to last batch completion."""
    throughput_qps: float
    """``queries / wall_seconds`` — achieved, not offered."""
    offered_rate_qps: float
    """The arrival process's configured rate."""
    batches: int
    """Micro-batches the service closed during the run."""
    shards: int
    """The service pool's shard count K."""
    latency_summary_us: dict[str, float]
    """count / mean / max / p50 / p95 / p99 (microseconds)."""
    latency_histogram_us: dict[str, list[float]]
    """Log-spaced ``bounds_us`` + ``counts`` (sums to ``queries``)."""
    buffer_aggregate: dict[str, int]
    """Pool counters summed over shards for the measured window."""
    buffer_per_shard: tuple[dict[str, int], ...] = field(default=())
    """Per-shard rows: ``shard_id``, ``capacity``, and the counters;
    counter-wise they sum to the aggregate, capacities to
    ``buffer_capacity`` (both checked by the export validator)."""
    buffer_capacity: int = 0
    """Total pool capacity in pages (the shard capacities sum)."""


class LoadGenerator:
    """Plays a seeded open-loop arrival schedule against a service.

    Parameters
    ----------
    service:
        A started :class:`~repro.serving.QueryService` (the generator
        checks and refuses to run against a stopped one).
    rate_qps:
        Offered arrival rate.
    n_queries:
        Total queries to play.
    seed:
        Seeds both the arrival process and the query draw.
    arrivals:
        ``"poisson"`` (exponential gaps — the open-loop classic) or
        ``"uniform"`` (constant gaps).
    key_points:
        Optional ``(n_keys, d)`` array of stab-space points to draw
        queries from with Zipfian popularity (rows are popularity
        order: row 0 hottest).  ``None`` draws from the service
        workload's ``sample_points`` instead.
    zipf_s:
        Zipf exponent for ``key_points`` draws (default 1.1).
    """

    def __init__(
        self,
        service: QueryService,
        *,
        rate_qps: float,
        n_queries: int,
        seed: int = 0,
        arrivals: str = "poisson",
        key_points: np.ndarray | None = None,
        zipf_s: float = 1.1,
    ) -> None:
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        if n_queries < 1:
            raise ValueError("need at least one query")
        if arrivals not in ("poisson", "uniform"):
            raise ValueError(
                f"unknown arrival process {arrivals!r}; "
                "choices: poisson, uniform"
            )
        self.service = service
        self.rate_qps = float(rate_qps)
        self.n_queries = int(n_queries)
        self.seed = int(seed)
        self.arrivals = arrivals
        self.key_points = (
            None
            if key_points is None
            else np.asarray(key_points, dtype=np.float64)
        )
        self.zipf_s = float(zipf_s)

    # ------------------------------------------------------------------
    # Seeded draws (deterministic, no wall clock involved)
    # ------------------------------------------------------------------
    def schedule_offsets_ns(self) -> np.ndarray:
        """Arrival offsets from t0, nanoseconds, int64, sorted."""
        rng = np.random.default_rng(self.seed)
        if self.arrivals == "poisson":
            gaps = rng.exponential(1.0 / self.rate_qps, self.n_queries)
        else:
            gaps = np.full(self.n_queries, 1.0 / self.rate_qps)
        return np.cumsum(gaps * 1e9).astype(np.int64)

    def query_points(self) -> np.ndarray:
        """The run's query points, in submission order.

        Drawn from an independent stream (``seed + 1``) so the arrival
        schedule and the query content can be varied separately.
        """
        rng = np.random.default_rng(self.seed + 1)
        if self.key_points is None:
            return self.service.workload.sample_points(self.n_queries, rng)
        picks = rng.choice(
            len(self.key_points),
            size=self.n_queries,
            p=zipfian_weights(len(self.key_points), self.zipf_s),
        )
        return self.key_points[picks]

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self) -> LoadReport:
        """Play the schedule, drain, and report.

        Resets the service's counters and latency samples first (the
        buffer's *contents* survive — warm it beforehand if steady
        state is wanted), so the report covers exactly this run.
        """
        service = self.service
        if not service.running:
            raise RuntimeError(
                "service must be started before the load generator runs"
            )
        offsets = self.schedule_offsets_ns()
        points = self.query_points()
        service.reset_measurement()

        submit = service.submit
        sleep = time.sleep
        now_ns = time.perf_counter_ns
        with span(
            "loadgen.run",
            queries=self.n_queries,
            rate_qps=self.rate_qps,
            arrivals=self.arrivals,
        ):
            t0 = now_ns()
            scheduled = t0 + offsets
            for i in range(self.n_queries):
                lag = scheduled[i] - now_ns()
                if lag > 0:
                    sleep(lag / 1e9)
                submit(points[i], arrival_ns=int(scheduled[i]))
            service.drain()
            wall_seconds = (now_ns() - t0) / 1e9

        pool = service.pool
        return LoadReport(
            queries=service.queries_served,
            wall_seconds=wall_seconds,
            throughput_qps=service.queries_served / wall_seconds,
            offered_rate_qps=self.rate_qps,
            batches=service.batches_served,
            shards=pool.n_shards,
            latency_summary_us=service.latency.summary_us(),
            latency_histogram_us=service.latency.histogram_us(),
            buffer_aggregate=pool.aggregate_stats().as_dict(),
            buffer_per_shard=tuple(
                {"shard_id": s, "capacity": int(capacity), **stats.as_dict()}
                for s, (capacity, stats) in enumerate(
                    zip(pool.shard_capacities(), pool.shard_stats())
                )
            ),
            buffer_capacity=int(pool.capacity),
        )
