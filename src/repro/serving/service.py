"""The query service: admission queue → micro-batch → stab → buffer.

One service instance owns the three pieces the batch simulator keeps
implicit: the stabber(s) built over the workload's transformed MBRs
(shared code: :func:`repro.simulation.build_stabbers`), a
:class:`~repro.buffer.ShardedBufferPool`, and a
:class:`~repro.obs.LatencyRecorder`.

Two entry points share one serving core (:meth:`QueryService.process`
→ ``_serve_batch``):

* **Synchronous**: ``process(points)`` slices a point array into
  micro-batches of ``max_batch`` and serves them in order on the
  calling thread.  Deterministic — this is the path the bit-exactness
  tests and benchmarks drive.
* **Asynchronous**: ``start()`` spawns dispatcher threads; ``submit()``
  appends to the admission queue; a dispatcher closes a micro-batch at
  the earlier of ``max_batch`` pending queries or ``max_wait_us``
  after the *oldest* pending query arrived, then serves it.  ``drain``
  blocks until the queue and all in-flight batches are empty; ``stop``
  flushes what remains and joins the threads.

Queries are *points* in the workload's transformed space — exactly
what the simulator feeds its stabbers; region queries arrive already
reduced to point stabs by the workload transform (the paper's §3
reduction).  Within a micro-batch pages are requested in query order,
each query's pages ascending (level-major = top-down), identical to
``simulate()``'s ``_run_queries`` — the order half of the K=1
exactness argument (``docs/SERVING.md``).

Mixed workloads are refused: a mixture decides each query's component
at sampling time, so a bare point does not identify which component's
transformed MBRs to stab.  Serve each component through its own
service instead.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..buffer import BufferStats, ShardedBufferPool
from ..obs import LatencyRecorder
from ..obs.spans import span
from ..queries.mixed import MixedWorkload
from ..rtree import TreeDescription
from ..simulation import build_stabbers
from ..simulation.shard import fork_available
from .workers import ProcessShardedBufferPool

__all__ = ["QueryService"]


class QueryService:
    """A long-lived concurrent point-query service over one tree.

    Parameters
    ----------
    desc:
        Per-level node MBRs (level-major node ids are the page ids).
    workload:
        A non-mixed workload from :mod:`repro.queries`; its
        ``transformed_rects`` defines the stab space and its
        ``sample_points`` is what load generators draw from.
    buffer_size:
        Total buffer capacity in pages, split across ``shards``.
    shards:
        Number of buffer shards (K).  K=1 is the paper's single
        buffer, bit-exactly.
    policy:
        Replacement policy per shard (``lru``/``fifo``/``clock``/
        ``random``).
    max_batch:
        Micro-batch size trigger; ``0`` disables batching (every
        query served alone — the bit-exactness reference mode).
    max_wait_us:
        Deadline trigger: an async micro-batch closes at most this
        long after its oldest query arrived, full or not.
    pinned_levels:
        Top tree levels preloaded and pinned (§3.3), as in
        ``simulate()``.
    worker_processes:
        When True, run each shard's pool in its own long-lived fork
        worker process (:class:`~repro.serving.workers.
        ProcessShardedBufferPool`) so shards execute concurrently on
        multi-core hosts.  Bit-exact against the in-process pool for
        any shard count; silently falls back to in-process where the
        ``fork`` start method is unavailable (same gate as the sharded
        sweep).  The effective mode is readable back from
        :attr:`worker_processes`.
    accel:
        Stabber backend (``auto``/``grid``/``dense``), bit-exact.
    expected_queries:
        Work hint forwarded to ``make_stabber`` (grid promotion for
        large runs; never changes results).
    latency:
        Optional shared :class:`~repro.obs.LatencyRecorder`; one is
        created when omitted.
    telemetry:
        Optional duck-typed telemetry sink (see
        :class:`repro.obs.TelemetrySink`); when set, every served
        micro-batch calls ``telemetry.observe_batch(latencies_ns)``
        (None when the caller passed no arrivals).  Same None-default
        discipline as ``BufferPool.request``'s stats sink: one branch
        on the hot path, zero cost when absent.  Also settable as a
        plain attribute after construction.
    """

    def __init__(
        self,
        desc: TreeDescription,
        workload,
        buffer_size: int,
        *,
        shards: int = 1,
        policy: str = "lru",
        max_batch: int = 4096,
        max_wait_us: float = 500.0,
        pinned_levels: int = 0,
        worker_processes: bool = False,
        accel: str = "auto",
        expected_queries: int = 0,
        latency: LatencyRecorder | None = None,
        telemetry=None,
    ) -> None:
        if isinstance(workload, MixedWorkload):
            raise ValueError(
                "QueryService serves one stab space; a MixedWorkload "
                "chooses a component per query at sampling time — run "
                "one service per component instead"
            )
        if max_batch < 0:
            raise ValueError("max_batch must be >= 0 (0 disables batching)")
        if max_wait_us < 0:
            raise ValueError("max_wait_us must be >= 0")
        if not 0 <= pinned_levels <= desc.height:
            raise ValueError(f"pinned_levels must be in [0, {desc.height}]")
        self.desc = desc
        self.workload = workload
        self.max_batch = int(max_batch)
        self.max_wait_us = float(max_wait_us)
        self._batch_limit = max(1, self.max_batch)
        self._wait_ns = int(max_wait_us * 1_000.0)

        self._stabber, self.backend = build_stabbers(
            desc, workload, accel=accel, n_points=expected_queries
        )
        pinned_ids = range(desc.level_offsets[pinned_levels])
        self.worker_processes = bool(worker_processes) and fork_available()
        if self.worker_processes:
            self.pool = ProcessShardedBufferPool(
                buffer_size, shards, policy=policy, pinned=pinned_ids
            )
        else:
            self.pool = ShardedBufferPool(
                buffer_size, shards, policy=policy, pinned=pinned_ids
            )
        self.latency = latency if latency is not None else LatencyRecorder()
        self.telemetry = telemetry

        self._totals_lock = threading.Lock()
        self._queries = 0
        self._batches = 0

        self._cond = threading.Condition()
        self._pending: deque[tuple[np.ndarray, int]] = deque()
        self._inflight = 0
        self._running = False
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    # The serving core (shared by both entry points)
    # ------------------------------------------------------------------
    def _serve_batch(
        self, points: np.ndarray, arrivals_ns: np.ndarray | None
    ) -> None:
        """Stab one micro-batch and request every touched page.

        Pages are requested in query order, ascending within a query —
        the simulator's exact order — so with K=1 the buffer walks the
        identical state sequence as ``simulate()`` on the same stream.
        """
        with span("serve.batch", queries=len(points)):
            sparse = self._stabber.stab(points)
            # The CSR ids are the batch's pages in query order,
            # ascending within each query — handing the flat array to
            # the pool is the same stream the per-row loop produced,
            # and lets a process-worker pool ship one frame per shard.
            self.pool.request_batch(sparse.ids)
            latencies_ns = None
            if arrivals_ns is not None:
                done = time.perf_counter_ns()
                latencies_ns = done - arrivals_ns
                self.latency.record_many_ns(latencies_ns)
        with self._totals_lock:
            self._queries += len(points)
            self._batches += 1
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.observe_batch(latencies_ns)

    def process(
        self,
        points: np.ndarray,
        arrivals_ns: np.ndarray | None = None,
    ) -> int:
        """Serve ``points`` synchronously, in order, in micro-batches.

        ``arrivals_ns`` (optional, ``perf_counter_ns`` timebase, one
        per point) enables per-query latency recording: each query's
        latency is its micro-batch completion minus its arrival.
        Returns the number of queries served.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be an (n, d) array")
        if arrivals_ns is not None and len(arrivals_ns) != len(points):
            raise ValueError("need one arrival timestamp per point")
        step = self._batch_limit
        for start in range(0, len(points), step):
            chunk_arrivals = (
                None
                if arrivals_ns is None
                else np.asarray(
                    arrivals_ns[start : start + step], dtype=np.int64
                )
            )
            self._serve_batch(points[start : start + step], chunk_arrivals)
        return len(points)

    # ------------------------------------------------------------------
    # Async admission
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        with self._cond:
            return self._running

    def start(self, workers: int = 1) -> None:
        """Spawn ``workers`` dispatcher threads consuming the queue."""
        if workers < 1:
            raise ValueError("need at least one worker")
        with self._cond:
            if self._running:
                raise RuntimeError("service already started")
            self._running = True
        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"serve-dispatch-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, point: np.ndarray, arrival_ns: int | None = None) -> None:
        """Enqueue one query; returns immediately.

        ``arrival_ns`` defaults to now; an open-loop load generator
        passes the *scheduled* arrival instead, so queueing delay from
        a lagging submit loop is charged to latency, not hidden.
        """
        point = np.asarray(point, dtype=np.float64)
        if arrival_ns is None:
            arrival_ns = time.perf_counter_ns()
        with self._cond:
            if not self._running:
                raise RuntimeError("service not started")
            self._pending.append((point, int(arrival_ns)))
            self._cond.notify_all()

    def drain(self) -> None:
        """Block until the queue and all in-flight batches are empty."""
        with self._cond:
            while self._pending or self._inflight:
                self._cond.wait()

    def stop(self) -> None:
        """Flush remaining queries, then join the dispatcher threads."""
        with self._cond:
            self._running = False
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []

    def close(self) -> None:
        """Stop dispatchers and release pool resources (idempotent).

        The full-lifecycle teardown: :meth:`stop` flushes and joins
        the dispatcher threads (if running), then a closeable pool —
        the process-worker topology — has its shard workers reaped.
        The in-process pool has nothing to release; for it this is
        exactly :meth:`stop`.
        """
        if self.running:
            self.stop()
        pool_close = getattr(self.pool, "close", None)
        if pool_close is not None:
            pool_close()

    def __enter__(self) -> QueryService:
        if not self.running:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _dispatch_loop(self) -> None:
        """One dispatcher: wait → close a micro-batch → serve it.

        A batch closes at the earlier of ``max_batch`` pending queries
        or ``max_wait_us`` after the oldest pending query arrived.
        After :meth:`stop`, whatever is queued is flushed without
        waiting on the deadline.
        """
        while True:
            with self._cond:
                while not self._pending and self._running:
                    self._cond.wait()
                if not self._pending:
                    if not self._running:
                        return
                    continue
                if self._running and len(self._pending) < self._batch_limit:
                    deadline = self._pending[0][1] + self._wait_ns
                    while (
                        self._running
                        and self._pending
                        and len(self._pending) < self._batch_limit
                    ):
                        now = time.perf_counter_ns()
                        if now >= deadline:
                            break
                        self._cond.wait((deadline - now) / 1e9)
                    if not self._pending:
                        # Another dispatcher took the whole queue while
                        # we slept on the deadline.
                        continue
                take = min(self._batch_limit, len(self._pending))
                batch = [self._pending.popleft() for _ in range(take)]
                self._inflight += 1
            try:
                points = np.stack([point for point, _ in batch])
                arrivals = np.asarray(
                    [arrival for _, arrival in batch], dtype=np.int64
                )
                self._serve_batch(points, arrivals)
            finally:
                with self._cond:
                    self._inflight -= 1
                    self._cond.notify_all()

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def queries_served(self) -> int:
        with self._totals_lock:
            return self._queries

    @property
    def batches_served(self) -> int:
        with self._totals_lock:
            return self._batches

    @property
    def queue_depth(self) -> int:
        """Queries waiting in the admission queue right now.

        A telemetry gauge: the sink samples it each tick.  Always 0
        for purely synchronous (``process``) use.
        """
        with self._cond:
            return len(self._pending)

    def aggregate_stats(self) -> BufferStats:
        """The pool's summed counters (see
        :meth:`~repro.buffer.ShardedBufferPool.aggregate_stats`)."""
        return self.pool.aggregate_stats()

    def reset_measurement(self) -> None:
        """Zero counters and latency samples; keep buffer contents.

        The serving analogue of the simulator's warm-up/measurement
        boundary: warm the buffer with any traffic, reset, then
        measure — resident pages survive, accounting starts clean.
        """
        if self.running:
            self.drain()
        self.pool.reset_stats()
        with self._totals_lock:
            self._queries = 0
            self._batches = 0
        self.latency.reset()
