"""Process-per-shard serving workers: shards that really run in parallel.

`QueryService`'s in-process :class:`~repro.buffer.ShardedBufferPool`
removes *lock* contention between micro-batches, but every shard still
executes on one GIL — K shards buy zero throughput on a multi-core
host.  This module moves each shard into a long-lived fork worker
process that owns the shard's policy pool outright, turning the
page-request loop — the serving hot path the GIL serializes — into K
truly concurrent loops.

Topology
--------

The parent (the :class:`ProcessShardedBufferPool`) plans the capacity
and pin split with the *same*
:func:`~repro.buffer.sharded.plan_shard_split` the in-process pool
uses, then forks one worker per shard.  Each worker builds its pool
via :func:`~repro.buffer.sharded.build_shard_pool` — structurally
identical to in-process shard ``s``, including the ``random`` policy's
``rng + s`` seeding — and sits in a request loop on its pipe.

IPC framing
-----------

Everything on the hot path is fixed-dtype numpy over
``Connection.send_bytes`` — no pickling per request:

* parent → worker: a 16-byte ``<qq`` header ``(opcode, count)``
  followed by ``count`` int64 page ids (the shard's hash-filtered
  subsequence of the micro-batch, in stream order).
* worker → parent: one 40-byte frame of five int64s —
  ``(pid, start_ns, cpu_ns, end_ns, value)``.  The timing triple uses
  the fork-shared ``CLOCK_MONOTONIC`` epoch, so the parent replays it
  as a ``serve.shard`` span (same recipe as the sharded sweep's
  ``stackdist.shard`` spans).

Stats snapshots ride shared memory instead of the pipe: the parent
owns one :class:`~repro.simulation.shard.SharedArray` of
``4 * K`` int64 slots and hands each worker a pid-addressed
:class:`~repro.simulation.shard.WriteGrant` over its own four —
``REPRO_SANITIZE=1`` patches ``WriteGrant.writable`` to reject any
other process mapping the slice.  A stats request is a bare opcode;
the worker publishes ``(requests, hits, misses, evictions)`` into its
slots and acks, and the parent reads its owner view after the ack —
the ack *is* the happens-before edge.

Exactness
---------

The contract mirrors the sharded sweep's (docs/PARALLELISM.md):
``aggregate_stats()`` and ``shard_stats()`` are bit-exact against the
in-process :class:`~repro.buffer.ShardedBufferPool` for any worker
count, because a policy pool's state depends only on the subsequence
of requests it sees, in order — and the parent partitions each batch
by the *identical* hash (``page % K == hash(page) % K`` for the
non-negative int page ids the stabbers emit) while preserving stream
order within every shard.  K=1 therefore stays bit-exact against
``simulate()`` through the same argument as the in-process pool.

Lifecycle
---------

Workers are daemonic fork children reaped by :meth:`close` (STOP
opcode → join → terminate stragglers → dispose the stats segment,
owner-only per RL012).  A worker death or pipe breakage surfaces as
:class:`ServiceError` — never a hang: every await polls the pipe with
the worker's liveness and an overall deadline.
"""

from __future__ import annotations

import multiprocessing
import os
import struct
import threading
import time
from collections.abc import Iterable

import numpy as np

from ..buffer.base import BufferStats, PageId
from ..buffer.sharded import build_shard_pool, plan_shard_split
from ..obs.spans import current_tracer
from ..simulation.shard import (
    SharedArray,
    _report_end,
    _report_start,
    fork_available,
)

__all__ = ["ProcessShardedBufferPool", "ServiceError"]


class ServiceError(RuntimeError):
    """A serving worker died, timed out, or was used after close."""


# One request/reply vocabulary.  REQUEST carries the page payload;
# STATS/RESET/LEN/FULL/STOP are bare opcodes; CONTAINS carries one id.
_OP_REQUEST = 1
_OP_STATS = 2
_OP_RESET = 3
_OP_LEN = 4
_OP_CONTAINS = 5
_OP_FULL = 6
_OP_STOP = 7

_HEADER = struct.Struct("<qq")
_STATS_FIELDS = 4  # requests, hits, misses, evictions
_REPLY_FIELDS = 5  # pid, start_ns, cpu_ns, end_ns, value


def _frame(opcode: int, payload: np.ndarray | None = None) -> bytes:
    """One parent → worker frame: ``<qq`` header + int64 payload."""
    if payload is None or payload.size == 0:
        return _HEADER.pack(opcode, 0)
    payload = np.ascontiguousarray(payload, dtype=np.int64)
    return _HEADER.pack(opcode, payload.size) + payload.tobytes()


def _reply(conn, report: dict, value: int) -> None:
    """One worker → parent frame: timing triple + int64 result."""
    done = _report_end(report)
    frame = np.array(
        [done["pid"], done["start_ns"], done["cpu_ns"], done["end_ns"],
         int(value)],
        dtype=np.int64,
    )
    conn.send_bytes(frame.tobytes())


def _worker_main(
    conn,
    shard: int,
    shard_capacity: int,
    pins: list[PageId],
    policy: str,
    rng: int,
) -> None:
    """One shard worker: build the pool, then serve opcodes until STOP.

    The first message is the pid-addressed stats grant (pickled — the
    parent learns the pid only after ``start()``); the ready ack that
    follows doubles as the startup handshake, so construction errors
    surface in the parent as a dead worker, not a hang.
    """
    grant = conn.recv()
    stats_w = grant.writable()
    pool = build_shard_pool(shard_capacity, pins, policy, shard=shard, rng=rng)
    _reply(conn, _report_start(), 0)
    while True:
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):  # parent gone: die quietly
            return
        report = _report_start()
        opcode, count = _HEADER.unpack_from(frame)
        payload = np.frombuffer(
            frame, dtype=np.int64, offset=_HEADER.size, count=count
        )
        if opcode == _OP_REQUEST:
            hits = 0
            request = pool.request
            for page in payload:
                if request(int(page)):
                    hits += 1
            value = hits
        elif opcode == _OP_STATS:
            stats = pool.stats
            stats_w[0] = stats.requests
            stats_w[1] = stats.hits
            stats_w[2] = stats.misses
            stats_w[3] = stats.evictions
            value = 0
        elif opcode == _OP_RESET:
            pool.stats.reset()
            value = 0
        elif opcode == _OP_LEN:
            value = len(pool)
        elif opcode == _OP_CONTAINS:
            value = 1 if int(payload[0]) in pool else 0
        elif opcode == _OP_FULL:
            value = 1 if pool.is_full() else 0
        else:  # _OP_STOP (or anything unrecognized): ack and exit
            _reply(conn, report, 0)
            return
        _reply(conn, report, value)


class ProcessShardedBufferPool:
    """``K`` shard pools in ``K`` fork worker processes, one ``request()``.

    Duck-type compatible with
    :class:`~repro.buffer.ShardedBufferPool` — the service, the load
    generator, and the telemetry sink consume either without knowing
    which they hold — plus a :meth:`close` that reaps the workers.
    All cross-worker operations (a batch, a stats sweep, a reset) run
    as one transaction under the pool lock: send to every involved
    worker first, then collect every reply, so K workers execute their
    slices concurrently while concurrent *callers* (dispatcher
    threads, the telemetry ticker) serialize at batch granularity.
    """

    def __init__(
        self,
        capacity: int,
        shards: int = 1,
        *,
        policy: str = "lru",
        pinned: Iterable[PageId] = (),
        rng: int = 0,
        timeout_s: float = 60.0,
    ) -> None:
        if not fork_available():
            raise ServiceError(
                "process workers need the fork start method; use the "
                "in-process ShardedBufferPool on this platform"
            )
        pinned_set, shard_capacities, per_shard_pins = plan_shard_split(
            capacity, shards, policy, pinned
        )
        self.capacity = int(capacity)
        self.n_shards = int(shards)
        self.policy = policy
        self.pinned = pinned_set
        self._shard_capacities = tuple(shard_capacities)
        self._timeout_s = float(timeout_s)
        self._lock = threading.Lock()
        self._closed = False
        self._broken: str | None = None
        self._stats_seg: SharedArray | None = None
        self._conns: list = []
        self._procs: list = []
        ctx = multiprocessing.get_context("fork")
        try:
            self._stats_seg = SharedArray.create(
                _STATS_FIELDS * self.n_shards, np.int64
            )
            for s in range(self.n_shards):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        s,
                        shard_capacities[s],
                        per_shard_pins[s],
                        policy,
                        int(rng),
                    ),
                    name=f"serve-shard-{s}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
                grant = self._stats_seg.grant(
                    s * _STATS_FIELDS, (s + 1) * _STATS_FIELDS, pid=proc.pid
                )
                parent_conn.send(grant)
            for s in range(self.n_shards):  # startup handshake
                self._await(s)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._broken is not None:
            raise ServiceError(self._broken)
        if self._closed:
            raise ServiceError("pool is closed")

    def _fail(self, message: str) -> None:
        self._broken = message
        raise ServiceError(message)

    def _send(self, s: int, opcode: int, payload=None) -> None:
        try:
            self._conns[s].send_bytes(_frame(opcode, payload))
        except (OSError, ValueError):
            self._fail(
                f"shard worker {s} (pid {self._procs[s].pid}) is gone: "
                "pipe closed mid-send"
            )

    def _await(self, s: int) -> np.ndarray:
        """Collect one reply frame from worker ``s`` — or raise, never hang.

        Polls the pipe against the worker's liveness and an overall
        deadline; a SIGKILLed worker surfaces as :class:`ServiceError`
        within one poll interval.
        """
        conn, proc = self._conns[s], self._procs[s]
        deadline = time.monotonic() + self._timeout_s
        while not conn.poll(0.05):
            if not proc.is_alive():
                self._fail(
                    f"shard worker {s} (pid {proc.pid}) died with exit "
                    f"code {proc.exitcode}"
                )
            if time.monotonic() > deadline:
                self._fail(
                    f"shard worker {s} (pid {proc.pid}) timed out after "
                    f"{self._timeout_s:.0f}s"
                )
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            self._fail(f"shard worker {s} (pid {proc.pid}) closed its pipe")
        return np.frombuffer(frame, dtype=np.int64, count=_REPLY_FIELDS)

    @staticmethod
    def _replay(replies: list[tuple[int, int, np.ndarray]]) -> None:
        """Replay worker request rounds as ``serve.shard`` spans."""
        tracer = current_tracer()
        if tracer is None:
            return
        for shard, pages, reply in replies:
            tracer.record_completed(
                "serve.shard",
                start_ns=int(reply[1]),
                end_ns=int(reply[3]),
                cpu_ns=int(reply[2]),
                worker=int(reply[0]),
                shard=shard,
                pages=pages,
                pid=int(reply[0]),
            )

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def shard_of(self, page: PageId) -> int:
        """The home shard of ``page`` — identical to the in-process pool."""
        return hash(page) % self.n_shards

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def request_batch(self, pages) -> int:
        """Access every page in ``pages`` in stream order; returns hits.

        Partitions the batch by home shard — ``pages % K`` is exactly
        ``hash(page) % K`` for the stabbers' non-negative int ids, and
        a boolean-mask take preserves stream order within each shard —
        ships each subsequence to its worker, and collects hit counts.
        All K workers chew their slices concurrently; this is the
        multi-core win the in-process pool cannot deliver.
        """
        pages = np.ascontiguousarray(pages, dtype=np.int64)
        replies: list[tuple[int, int, np.ndarray]] = []
        hits = 0
        with self._lock:
            self._check_open()
            shard_ids = pages % self.n_shards
            sent: list[tuple[int, int]] = []
            for s in range(self.n_shards):
                sub = pages[shard_ids == s]
                if sub.size == 0:
                    continue
                self._send(s, _OP_REQUEST, sub)
                sent.append((s, int(sub.size)))
            for s, count in sent:
                reply = self._await(s)
                hits += int(reply[4])
                replies.append((s, count, reply))
        self._replay(replies)
        return hits

    def request(self, page: PageId) -> bool:
        """Access one page through its home shard worker; True on a hit."""
        page = int(page)
        s = hash(page) % self.n_shards
        with self._lock:
            self._check_open()
            self._send(s, _OP_REQUEST, np.array([page], dtype=np.int64))
            return bool(self._await(s)[4])

    # ------------------------------------------------------------------
    # Accounting — the sum-reconciliation surface
    # ------------------------------------------------------------------
    def shard_stats(self) -> tuple[BufferStats, ...]:
        """Per-shard counter snapshots via the stats shared segment.

        One bare STATS opcode per worker; each worker publishes its
        four counters into its pid-addressed grant slots and acks.
        The whole sweep is one transaction under the pool lock, so the
        K snapshots are mutually consistent the same way the
        in-process pool's under-each-lock sweep is.
        """
        with self._lock:
            self._check_open()
            for s in range(self.n_shards):
                self._send(s, _OP_STATS)
            for s in range(self.n_shards):
                self._await(s)
            flat = self._stats_seg.array.copy()
        snapshots = []
        for s in range(self.n_shards):
            stats = BufferStats()
            base = s * _STATS_FIELDS
            stats.requests = int(flat[base + 0])
            stats.hits = int(flat[base + 1])
            stats.misses = int(flat[base + 2])
            stats.evictions = int(flat[base + 3])
            snapshots.append(stats)
        return tuple(snapshots)

    def aggregate_stats(self) -> BufferStats:
        """Counters summed over shards — the single-pool view."""
        totals = BufferStats()
        for snapshot in self.shard_stats():
            totals.requests += snapshot.requests
            totals.hits += snapshot.hits
            totals.misses += snapshot.misses
            totals.evictions += snapshot.evictions
        return totals

    def reset_stats(self) -> None:
        """Zero every shard's counters (one transaction)."""
        with self._lock:
            self._check_open()
            for s in range(self.n_shards):
                self._send(s, _OP_RESET)
            for s in range(self.n_shards):
                self._await(s)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def unpinned_capacity(self) -> int:
        """Pages available to replacement, summed over shards."""
        return self.capacity - len(self.pinned)

    def shard_capacities(self) -> tuple[int, ...]:
        """Each shard's total capacity (sums to ``capacity``)."""
        return self._shard_capacities

    def is_full(self) -> bool:
        """True once every shard's unpinned area is full."""
        with self._lock:
            self._check_open()
            for s in range(self.n_shards):
                self._send(s, _OP_FULL)
            return all(
                bool(self._await(s)[4]) for s in range(self.n_shards)
            )

    def __contains__(self, page: PageId) -> bool:
        page = int(page)
        s = hash(page) % self.n_shards
        with self._lock:
            self._check_open()
            self._send(s, _OP_CONTAINS, np.array([page], dtype=np.int64))
            return bool(self._await(s)[4])

    def __len__(self) -> int:
        """Resident pages over all shards, pinned included."""
        with self._lock:
            self._check_open()
            for s in range(self.n_shards):
                self._send(s, _OP_LEN)
            return sum(
                int(self._await(s)[4]) for s in range(self.n_shards)
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Reap every worker and dispose the stats segment (idempotent).

        STOP the live workers, join with a timeout, terminate
        stragglers, then unlink the shared segment — creator-only,
        the RL012 ownership the sanitizer enforces.  Safe to call on a
        broken pool: dead workers are skipped, resources still freed.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for s, (conn, proc) in enumerate(zip(self._conns, self._procs)):
                if proc.is_alive():
                    try:
                        conn.send_bytes(_frame(_OP_STOP))
                    except (OSError, ValueError):
                        pass
            for conn, proc in zip(self._conns, self._procs):
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5.0)
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
            if (
                self._stats_seg is not None
                and os.getpid() == self._stats_seg.created_pid
            ):
                self._stats_seg.release_grants()
                self._stats_seg.dispose()
                self._stats_seg = None

    def __enter__(self) -> "ProcessShardedBufferPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProcessShardedBufferPool(capacity={self.capacity}, "
            f"shards={self.n_shards}, policy={self.policy!r})"
        )
