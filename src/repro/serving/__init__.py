"""Online serving: micro-batched admission over a sharded buffer.

The paper's simulator is batch-mode: one thread replays a complete
query stream through one LRU and reports expected disk accesses (ED).
This package turns that core into a long-lived concurrent service —
the ROADMAP's north-star shape — without changing what is measured:

* :class:`QueryService` — an admission queue that coalesces incoming
  point queries into micro-batches (closed by size ``max_batch`` or
  deadline ``max_wait_us``), stabs each batch through the same
  vectorized :mod:`repro.accel` kernels the simulator uses, and
  requests the touched pages from a
  :class:`~repro.buffer.ShardedBufferPool`;
* :class:`LoadGenerator` / :class:`LoadReport` — an open-loop load
  generator (Poisson or uniform arrivals, optionally Zipfian-keyed
  query popularity) that plays seeded traffic against a service and
  reports throughput plus p50/p95/p99 latency through the
  ``repro-metrics`` ``serving`` section;
* :class:`ProcessShardedBufferPool` — the multi-core topology: each
  buffer shard lives in its own long-lived fork worker process
  (``QueryService(..., worker_processes=True)``), bit-exact against
  the in-process sharded pool for any worker count, with failures
  surfacing as :class:`ServiceError` instead of hangs — see
  ``repro.serving.workers``.

The correctness anchor: with one shard and batching disabled, a
service replaying the simulator's exact query stream produces the
simulator's disk-access counts bit-exactly (same stab kernels, same
page-request order, same LRU) — see ``docs/SERVING.md`` for the full
argument and ``tests/serving/`` for the enforcement.
"""

from __future__ import annotations

from .loadgen import LoadGenerator, LoadReport, zipfian_weights
from .service import QueryService
from .workers import ProcessShardedBufferPool, ServiceError

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "ProcessShardedBufferPool",
    "QueryService",
    "ServiceError",
    "zipfian_weights",
]
