"""The R*-tree of Beckmann, Kriegel, Schneider & Seeger (SIGMOD 1990).

Reference [1] of the paper.  The buffer model is explicitly pitched as
a way "to evaluate the quality of any R-tree update operation", so this
module provides the strongest classic insertion policy as an extension:

* **ChooseSubtree** picks the child with the least *overlap*
  enlargement when the children are leaves (ties: least area
  enlargement, then least area), and the least area enlargement
  otherwise;
* **R\\* split** chooses the split axis by minimum total margin over
  all candidate distributions, then the distribution on that axis with
  minimum overlap (ties: minimum total area);
* **forced reinsertion**: the first time a node at a given level
  overflows during one data insertion, the 30% of its entries whose
  centres lie furthest from the node centre are removed and reinserted
  (closest first) instead of splitting.

The split function is registered in
:data:`repro.rtree.split.SPLIT_FUNCTIONS` under ``"rstar"`` so it can
also be used stand-alone with the plain Guttman insertion of
:class:`~repro.rtree.RTree`.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from ..geometry import Rect
from ..obs.spans import span
from .node import Entry, Node
from .split import SPLIT_FUNCTIONS, _validate_split_input
from .tree import RTree

__all__ = ["RStarTree", "rstar_split", "rstar_tree"]

DEFAULT_REINSERT_FRACTION = 0.3
"""p = 30% of M+1 entries are reinserted on first overflow (R* paper)."""


# ----------------------------------------------------------------------
# The R* split (usable as a plain split function too)
# ----------------------------------------------------------------------
def rstar_split(
    entries: Sequence[Entry], min_fill: int
) -> tuple[list[int], list[int]]:
    """Topological R* split: margin-minimal axis, overlap-minimal cut."""
    _validate_split_input(entries, min_fill)
    rects = [e.rect for e in entries]
    total = len(rects)
    dim = rects[0].dim
    # Group-1 sizes run from min_fill to total - min_fill, so there are
    # total - 2*min_fill + 1 distributions per sort order (the R* paper
    # counts M - 2m + 2 with total = M + 1 entries).
    n_dist = total - 2 * min_fill + 1

    best_axis = 0
    best_margin_sum = math.inf
    for axis in range(dim):
        margin_sum = 0.0
        for order in _axis_orders(rects, axis):
            prefix, suffix = _prefix_suffix_mbrs(rects, order)
            for k in range(n_dist):
                split_at = min_fill + k
                margin_sum += (
                    prefix[split_at - 1].margin + suffix[split_at].margin
                )
        if margin_sum < best_margin_sum:
            best_margin_sum = margin_sum
            best_axis = axis

    best_groups: tuple[list[int], list[int]] | None = None
    best_overlap = math.inf
    best_area = math.inf
    for order in _axis_orders(rects, best_axis):
        prefix, suffix = _prefix_suffix_mbrs(rects, order)
        for k in range(n_dist):
            split_at = min_fill + k
            bb1 = prefix[split_at - 1]
            bb2 = suffix[split_at]
            inter = bb1.intersection(bb2)
            overlap = inter.area if inter is not None else 0.0
            area = bb1.area + bb2.area
            if overlap < best_overlap or (
                overlap == best_overlap and area < best_area
            ):
                best_overlap = overlap
                best_area = area
                best_groups = (order[:split_at], order[split_at:])
    assert best_groups is not None
    return best_groups


def _axis_orders(rects: list[Rect], axis: int) -> tuple[list[int], list[int]]:
    """Index orders sorted by lower and by upper value on ``axis``."""
    by_lower = sorted(range(len(rects)), key=lambda i: rects[i].lo[axis])
    by_upper = sorted(range(len(rects)), key=lambda i: rects[i].hi[axis])
    return by_lower, by_upper


def _prefix_suffix_mbrs(
    rects: list[Rect], order: list[int]
) -> tuple[list[Rect], list[Rect]]:
    """MBRs of every prefix and suffix of ``rects`` in ``order``."""
    n = len(order)
    prefix: list[Rect] = [rects[order[0]]]
    for i in range(1, n):
        prefix.append(prefix[-1].union(rects[order[i]]))
    suffix: list[Rect] = [None] * n  # type: ignore[list-item]
    suffix[n - 1] = rects[order[n - 1]]
    for i in range(n - 2, -1, -1):
        suffix[i] = suffix[i + 1].union(rects[order[i]])
    return prefix, suffix


SPLIT_FUNCTIONS["rstar"] = rstar_split


# ----------------------------------------------------------------------
# The R*-tree proper
# ----------------------------------------------------------------------
class RStarTree(RTree):
    """An R-tree with the R* insertion policy.

    Search and deletion are inherited from :class:`RTree`; insertion
    uses R* ChooseSubtree, the R* split, and forced reinsertion.
    """

    def __init__(
        self,
        max_entries: int = 50,
        min_entries: int | None = None,
        reinsert_fraction: float = DEFAULT_REINSERT_FRACTION,
    ) -> None:
        super().__init__(max_entries, min_entries, split=rstar_split)
        if not 0.0 <= reinsert_fraction < 0.5:
            raise ValueError("reinsert_fraction must be in [0, 0.5)")
        self.reinsert_count = int(reinsert_fraction * (max_entries + 1))
        # Reinserting may not push a node below min fill.
        self.reinsert_count = min(
            self.reinsert_count, max_entries + 1 - self.min_entries
        )
        self._treated_heights: set[int] = set()
        self._pending: list[tuple[list[Entry], int]] = []

    # ------------------------------------------------------------------
    # Insertion machinery
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: Entry, target_depth: int) -> None:
        """One data-rectangle insertion, including forced reinserts.

        ``_treated_heights`` tracks node heights (1 = leaf) where
        OverflowTreatment already ran during this operation, as the R*
        paper prescribes; heights are stable across the root splits
        that may happen mid-operation, unlike depths.
        """
        self._treated_heights = set()
        self._pending = []
        self._do_insert(entry, target_depth)
        while self._pending:
            batch, subtree_height = self._pending.pop(0)
            for pending_entry in batch:
                depth = self._height - 1 - subtree_height
                if depth < 0:
                    # The tree shrank below the entry's level (cannot
                    # happen on pure inserts; guards future use).
                    depth = self._height - 1
                self._do_insert(pending_entry, depth)

    def _do_insert(self, entry: Entry, target_depth: int) -> None:
        # Subtree height of the entry being placed: 0 for data entries,
        # more for internal entries reinserted mid-operation.  Node
        # heights during this descent are derived from it.
        self._entry_height = self._height - 1 - target_depth
        sibling, _ = self._insert_rec(self._root, entry, target_depth)
        if sibling is not None:
            old_root = self._root
            self._root = Node(
                is_leaf=False,
                entries=[
                    Entry(old_root.mbr(), child=old_root),
                    Entry(sibling.mbr(), child=sibling),
                ],
            )
            self._height += 1

    def _insert_rec(
        self, node: Node, entry: Entry, depth: int
    ) -> tuple[Node | None, bool]:
        """Returns (split sibling, whether a forced reinsert shrank the
        subtree) — the latter forces exact MBR recomputation upward."""
        if depth == 0:
            node.entries.append(entry)
            if len(node.entries) > self.max_entries:
                return self._overflow_treatment(node, depth)
            return None, False

        slot = self._choose_subtree_rstar(node, entry.rect, depth)
        sibling, shrank = self._insert_rec(slot.child, entry, depth - 1)
        if shrank or sibling is not None:
            slot.rect = slot.child.mbr()
        else:
            slot.rect = slot.rect.union(entry.rect)
        if sibling is not None:
            node.entries.append(Entry(sibling.mbr(), child=sibling))
            if len(node.entries) > self.max_entries:
                own_sibling, own_shrank = self._overflow_treatment(node, depth)
                return own_sibling, shrank or own_shrank
        return None, shrank

    def _overflow_treatment(
        self, node: Node, depth: int
    ) -> tuple[Node | None, bool]:
        """Forced reinsert on the first overflow per height, else split."""
        height = self._node_height(depth)
        is_root = node is self._root
        if (
            not is_root
            and self.reinsert_count > 0
            and height not in self._treated_heights
        ):
            self._treated_heights.add(height)
            removed = self._pick_reinsert_victims(node)
            self._pending.append((removed, height - 1))
            return None, True
        return self._split_node(node), False

    def _node_height(self, depth_remaining: int) -> int:
        """Height (1 = leaf) of the node ``depth_remaining`` levels
        above the target level of the entry being inserted."""
        return self._entry_height + 1 + depth_remaining

    def _pick_reinsert_victims(self, node: Node) -> list[Entry]:
        """Remove the entries furthest from the node centre.

        Returns them sorted closest-first ("close reinsert"), the
        variant the R* paper found best.
        """
        center = node.mbr().center
        ranked = sorted(
            range(len(node.entries)),
            key=lambda i: _center_distance2(node.entries[i].rect, center),
            reverse=True,
        )
        victims = sorted(ranked[: self.reinsert_count], reverse=True)
        removed = [node.entries.pop(i) for i in victims]
        removed.sort(key=lambda e: _center_distance2(e.rect, center))
        return removed

    # ------------------------------------------------------------------
    # ChooseSubtree
    # ------------------------------------------------------------------
    def _choose_subtree_rstar(self, node: Node, rect: Rect, depth: int) -> Entry:
        if depth == 1:
            # Children are leaves: minimise overlap enlargement.
            return self._least_overlap_enlargement(node, rect)
        return self._choose_subtree(node, rect)  # Guttman criterion

    def _least_overlap_enlargement(self, node: Node, rect: Rect) -> Entry:
        # O(n^2) per insert and the hottest R* path: work on raw corner
        # tuples, as the Guttman hot paths do.
        entries = node.entries
        los = [e.rect.lo for e in entries]
        his = [e.rect.hi for e in entries]
        r_lo, r_hi = rect.lo, rect.hi

        # Shortcut: an entry that already contains the rectangle has
        # zero overlap delta and zero enlargement — the minimum
        # possible key — so only the area tie-break matters among such
        # entries, and the quadratic scan can be skipped entirely.
        containing: Entry | None = None
        containing_area = math.inf
        for i, e in enumerate(entries):
            if all(
                a <= c and d <= b
                for a, b, c, d in zip(los[i], his[i], r_lo, r_hi)
            ):
                area = _area_of(los[i], his[i])
                if area < containing_area:
                    containing_area = area
                    containing = e
        if containing is not None:
            return containing

        best: Entry | None = None
        best_key: tuple[float, float, float] | None = None
        for i, e in enumerate(entries):
            e_lo, e_hi = los[i], his[i]
            u_lo = tuple(min(a, c) for a, c in zip(e_lo, r_lo))
            u_hi = tuple(max(b, d) for b, d in zip(e_hi, r_hi))
            area = _area_of(e_lo, e_hi)
            enlarged_area = _area_of(u_lo, u_hi)
            overlap_delta = 0.0
            for j in range(len(entries)):
                if j == i:
                    continue
                o_lo, o_hi = los[j], his[j]
                overlap_delta += _intersection_area(
                    u_lo, u_hi, o_lo, o_hi
                ) - _intersection_area(e_lo, e_hi, o_lo, o_hi)
            key = (overlap_delta, enlarged_area - area, area)
            if best_key is None or key < best_key:
                best_key = key
                best = e
        assert best is not None
        return best


def _center_distance2(rect: Rect, center: tuple[float, ...]) -> float:
    return sum((a - b) ** 2 for a, b in zip(rect.center, center))


def _area_of(lo: tuple[float, ...], hi: tuple[float, ...]) -> float:
    result = 1.0
    for a, b in zip(lo, hi):
        result *= b - a
    return result


def _intersection_area(
    lo1: tuple[float, ...],
    hi1: tuple[float, ...],
    lo2: tuple[float, ...],
    hi2: tuple[float, ...],
) -> float:
    result = 1.0
    for a, b, c, d in zip(lo1, hi1, lo2, hi2):
        side = min(b, d) - max(a, c)
        if side <= 0.0:
            return 0.0
        result *= side
    return result


def rstar_tree(
    data,
    capacity: int,
    items: Sequence[Any] | None = None,
    min_entries: int | None = None,
) -> RStarTree:
    """Load an R*-tree one tuple at a time (the R* analogue of TAT)."""
    rects = list(data)
    if not rects:
        raise ValueError("cannot load an empty data set")
    if items is not None and len(items) != len(rects):
        raise ValueError("items must align one-to-one with data rectangles")
    with span("rtree.rstar_build", capacity=capacity, n_rects=len(rects)):
        tree = RStarTree(max_entries=capacity, min_entries=min_entries)
        for i, rect in enumerate(rects):
            tree.insert(rect, items[i] if items is not None else i)
    return tree
