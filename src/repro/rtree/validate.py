"""Structural invariant checking for R-trees.

Used pervasively in the test suite (including the hypothesis-driven
random operation sequences) to assert that every tree produced by
insertion, deletion, or bulk loading is a well-formed R-tree.
"""

from __future__ import annotations

from ..geometry import mbr_of
from .node import Node
from .tree import RTree

__all__ = ["InvariantViolation", "check_tree"]


class InvariantViolation(AssertionError):
    """An R-tree structural invariant does not hold."""


def check_tree(tree: RTree) -> None:
    """Verify all structural invariants of ``tree``.

    Checks, for every node:

    * leaves all sit at the same depth;
    * entry counts are within ``[min_entries, max_entries]`` for
      non-root nodes, and the root has >= 2 entries when internal;
    * every internal entry's rectangle equals its child's actual MBR;
    * the number of stored items equals ``len(tree)``.

    Raises :class:`InvariantViolation` on the first failure.
    """
    root = tree.root
    if len(tree) == 0:
        if not root.is_leaf or root.entries:
            raise InvariantViolation("empty tree must be a bare leaf root")
        return

    leaf_depths: set[int] = set()
    item_count = 0

    def visit(node: Node, depth: int, is_root: bool) -> None:
        nonlocal item_count
        n = len(node.entries)
        if n > tree.max_entries:
            raise InvariantViolation(
                f"node at depth {depth} has {n} > max {tree.max_entries} entries"
            )
        if is_root:
            if not node.is_leaf and n < 2:
                raise InvariantViolation("internal root must have >= 2 entries")
            if node.is_leaf and n < 1:
                raise InvariantViolation("non-empty tree has an empty leaf root")
        elif n < tree.min_entries:
            raise InvariantViolation(
                f"node at depth {depth} has {n} < min {tree.min_entries} entries"
            )

        if node.is_leaf:
            leaf_depths.add(depth)
            for e in node.entries:
                if e.child is not None:
                    raise InvariantViolation("leaf entry has a child pointer")
                item_count += 1
        else:
            for e in node.entries:
                if e.child is None:
                    raise InvariantViolation("internal entry has no child")
                actual = mbr_of(c.rect for c in e.child.entries)
                if actual != e.rect:
                    raise InvariantViolation(
                        f"stale MBR at depth {depth}: stored {e.rect}, actual {actual}"
                    )
                visit(e.child, depth + 1, is_root=False)

    visit(root, 0, is_root=True)

    if len(leaf_depths) != 1:
        raise InvariantViolation(f"leaves at multiple depths: {sorted(leaf_depths)}")
    depth = leaf_depths.pop()
    if depth + 1 != tree.height:
        raise InvariantViolation(
            f"tree.height {tree.height} != actual height {depth + 1}"
        )
    if item_count != len(tree):
        raise InvariantViolation(
            f"stored items {item_count} != len(tree) {len(tree)}"
        )
