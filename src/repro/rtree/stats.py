"""Tree descriptions: the MBR-per-level view the model consumes.

The paper's methodology is hybrid: a loading algorithm builds a real
R-tree, then "we compute the minimum bounding rectangles of tree nodes
and use these as input to our buffer model".  :class:`TreeDescription`
is exactly that input — one :class:`~repro.geometry.RectArray` per tree
level, root first — so the analytic layer never needs to know how the
tree was built.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from ..geometry import GeometryError, Rect, RectArray

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .tree import RTree

__all__ = ["TreeDescription"]


@dataclass(frozen=True)
class TreeDescription:
    """Per-level node MBRs of an R-tree (level 0 = root).

    Global node ids are level-major: nodes of level 0 first, then level
    1, etc., and within a level in array order.  This matches the
    top-down order in which a traversal touches nodes and is the order
    the simulator presents accesses to the buffer.
    """

    levels: tuple[RectArray, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise GeometryError("a tree description needs at least one level")
        dim = self.levels[0].dim
        for i, level in enumerate(self.levels):
            if level.dim != dim:
                raise GeometryError(f"level {i} dimensionality mismatch")
            if len(level) == 0:
                raise GeometryError(f"level {i} is empty")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, tree: "RTree") -> "TreeDescription":
        """Extract the description from a live :class:`RTree`."""
        if len(tree) == 0:
            raise GeometryError("cannot describe an empty tree")
        levels = tuple(
            RectArray.from_rects(node.mbr() for node in level)
            for level in tree.nodes_by_level()
        )
        return cls(levels)

    @classmethod
    def from_level_rects(cls, levels: list[list[Rect]]) -> "TreeDescription":
        """Build from plain per-level rectangle lists (root first)."""
        return cls(tuple(RectArray.from_rects(level) for level in levels))

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of levels ``H + 1``."""
        return len(self.levels)

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed space."""
        return self.levels[0].dim

    @property
    def node_counts(self) -> tuple[int, ...]:
        """``M_i`` for each level, root first."""
        return tuple(len(level) for level in self.levels)

    @property
    def total_nodes(self) -> int:
        """``M`` — the total number of nodes (= pages) in the tree."""
        return sum(self.node_counts)

    # ------------------------------------------------------------------
    # Flattened view
    # ------------------------------------------------------------------
    @cached_property
    def all_rects(self) -> RectArray:
        """All node MBRs concatenated in level-major (global id) order."""
        return RectArray.concatenate(list(self.levels))

    @cached_property
    def level_offsets(self) -> tuple[int, ...]:
        """Global id of the first node of each level, plus a final sentinel."""
        offsets = [0]
        for level in self.levels:
            offsets.append(offsets[-1] + len(level))
        return tuple(offsets)

    @cached_property
    def node_levels(self) -> np.ndarray:
        """``(M,)`` array mapping each global node id to its level."""
        return np.repeat(
            np.arange(self.height), np.fromiter(self.node_counts, dtype=np.int64)
        )

    def level_of(self, node_id: int) -> int:
        """Level of a global node id."""
        if not 0 <= node_id < self.total_nodes:
            raise IndexError(f"node id {node_id} out of range")
        return int(self.node_levels[node_id])

    def drop_top_levels(self, count: int) -> "TreeDescription":
        """The description with the top ``count`` levels removed.

        Used by the pinning model: "omit the top levels from the
        model".  The result's first level usually has more than one
        node — descriptions are per-level MBR collections, not
        necessarily rooted trees.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count >= self.height:
            raise ValueError(f"cannot drop {count} of {self.height} levels")
        if count == 0:
            return self
        return TreeDescription(self.levels[count:])

    # ------------------------------------------------------------------
    # Aggregate geometry (the paper's A, L_x, L_y)
    # ------------------------------------------------------------------
    def total_area(self) -> float:
        """``A`` — the sum of all node MBR areas."""
        return self.all_rects.total_area()

    def total_extent(self, axis: int) -> float:
        """``L_axis`` — the sum of node MBR extents along one axis."""
        return self.all_rects.total_extent(axis)

    def pages_in_top_levels(self, count: int) -> int:
        """Number of pages occupied by the top ``count`` levels."""
        if not 0 <= count <= self.height:
            raise ValueError(f"count must be in [0, {self.height}]")
        return sum(self.node_counts[:count])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = "/".join(str(c) for c in self.node_counts)
        return f"TreeDescription(levels={counts}, dim={self.dim})"
