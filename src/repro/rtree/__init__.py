"""Dynamic R-tree, split heuristics, and tree descriptions."""

from __future__ import annotations

from .node import Entry, Node
from .split import SPLIT_FUNCTIONS, greene_split, linear_split, quadratic_split
from .stats import TreeDescription
from .tree import QueryResult, RTree
from .rstar import RStarTree, rstar_split
from .validate import InvariantViolation, check_tree

__all__ = [
    "Entry",
    "InvariantViolation",
    "Node",
    "QueryResult",
    "RStarTree",
    "RTree",
    "SPLIT_FUNCTIONS",
    "TreeDescription",
    "check_tree",
    "greene_split",
    "linear_split",
    "quadratic_split",
    "rstar_split",
]
