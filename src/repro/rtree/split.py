"""Node-splitting heuristics from Guttman's original R-tree paper.

The TAT loading algorithm of the paper inserts one tuple at a time
"using the quadratic split heuristic of Guttman [3]"; the linear split
is provided as well so the buffer model can be used to compare split
policies — one of the stated applications of the model ("the model can
be used to evaluate the quality of any R-tree update operation, such as
node splitting policies").

A split function receives the overflowing list of entries (``max + 1``
of them) and the minimum fill ``m`` and returns two disjoint index
groups, each of size at least ``m``, covering all entries.
"""

from __future__ import annotations

from typing import Callable, Sequence

# split functions operate on raw corner tuples; no Rect needed here
from .node import Entry

__all__ = [
    "SplitFunction",
    "greene_split",
    "linear_split",
    "quadratic_split",
    "SPLIT_FUNCTIONS",
]

SplitFunction = Callable[[Sequence[Entry], int], tuple[list[int], list[int]]]


def _validate_split_input(entries: Sequence[Entry], min_fill: int) -> None:
    if len(entries) < 2:
        raise ValueError("cannot split fewer than two entries")
    if min_fill < 1:
        raise ValueError("min_fill must be at least 1")
    if 2 * min_fill > len(entries):
        raise ValueError(
            f"min_fill {min_fill} too large for {len(entries)} entries"
        )


def quadratic_split(
    entries: Sequence[Entry], min_fill: int
) -> tuple[list[int], list[int]]:
    """Guttman's quadratic split.

    *PickSeeds* selects the pair of entries that would waste the most
    area if placed together; *PickNext* repeatedly assigns the entry
    with the greatest difference of enlargement between the two groups,
    breaking ties by smaller enlargement, then smaller area, then fewer
    entries — Guttman's tie-break chain.  Whenever one group must absorb
    all remaining entries to reach ``min_fill``, they are assigned
    wholesale.
    """
    _validate_split_input(entries, min_fill)
    # Work on raw corner tuples: splits are O(n²) in the node capacity
    # and allocating Rect objects in these loops dominates TAT loading.
    los = [e.rect.lo for e in entries]
    his = [e.rect.hi for e in entries]
    n = len(entries)
    areas = [_area(lo, hi) for lo, hi in zip(los, his)]

    # PickSeeds: maximise d = area(J) - area(E1) - area(E2).
    best_waste = -float("inf")
    seed_a, seed_b = 0, 1
    for i in range(n - 1):
        lo_i, hi_i, area_i = los[i], his[i], areas[i]
        for j in range(i + 1, n):
            waste = _union_area(lo_i, hi_i, los[j], his[j]) - area_i - areas[j]
            if waste > best_waste:
                best_waste = waste
                seed_a, seed_b = i, j

    group_a = [seed_a]
    group_b = [seed_b]
    cover_a_lo, cover_a_hi = los[seed_a], his[seed_a]
    cover_b_lo, cover_b_hi = los[seed_b], his[seed_b]
    area_a = areas[seed_a]
    area_b = areas[seed_b]
    remaining = [k for k in range(n) if k != seed_a and k != seed_b]

    while remaining:
        # If one group needs every remaining entry to reach min_fill,
        # assign them all to it.
        if len(group_a) + len(remaining) == min_fill:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_fill:
            group_b.extend(remaining)
            break

        # PickNext: entry with maximal |d1 - d2|.
        best_k = -1
        best_pos = -1
        best_diff = -1.0
        best_d = (0.0, 0.0)
        for pos, k in enumerate(remaining):
            d1 = _union_area(cover_a_lo, cover_a_hi, los[k], his[k]) - area_a
            d2 = _union_area(cover_b_lo, cover_b_hi, los[k], his[k]) - area_b
            diff = abs(d1 - d2)
            if diff > best_diff:
                best_diff = diff
                best_k = k
                best_pos = pos
                best_d = (d1, d2)
        remaining.pop(best_pos)

        d1, d2 = best_d
        if d1 < d2:
            choose_a = True
        elif d2 < d1:
            choose_a = False
        elif area_a != area_b:
            choose_a = area_a < area_b
        else:
            choose_a = len(group_a) <= len(group_b)

        if choose_a:
            group_a.append(best_k)
            cover_a_lo, cover_a_hi = _union(cover_a_lo, cover_a_hi, los[best_k], his[best_k])
            area_a = _area(cover_a_lo, cover_a_hi)
        else:
            group_b.append(best_k)
            cover_b_lo, cover_b_hi = _union(cover_b_lo, cover_b_hi, los[best_k], his[best_k])
            area_b = _area(cover_b_lo, cover_b_hi)

    return group_a, group_b


def _area(lo: tuple[float, ...], hi: tuple[float, ...]) -> float:
    result = 1.0
    for a, b in zip(lo, hi):
        result *= b - a
    return result


def _union_area(
    lo1: tuple[float, ...],
    hi1: tuple[float, ...],
    lo2: tuple[float, ...],
    hi2: tuple[float, ...],
) -> float:
    result = 1.0
    for a, b, c, d in zip(lo1, hi1, lo2, hi2):
        result *= max(b, d) - min(a, c)
    return result


def _union(
    lo1: tuple[float, ...],
    hi1: tuple[float, ...],
    lo2: tuple[float, ...],
    hi2: tuple[float, ...],
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    lo = tuple(min(a, c) for a, c in zip(lo1, lo2))
    hi = tuple(max(b, d) for b, d in zip(hi1, hi2))
    return lo, hi


def linear_split(
    entries: Sequence[Entry], min_fill: int
) -> tuple[list[int], list[int]]:
    """Guttman's linear split.

    *LinearPickSeeds* finds, on each axis, the pair with the greatest
    normalised separation (highest low side vs. lowest high side) and
    seeds the groups with the winning pair; the remaining entries are
    assigned in arbitrary (input) order to the group whose cover grows
    the least, with the same min-fill guarantee as the quadratic split.
    """
    _validate_split_input(entries, min_fill)
    rects = [e.rect for e in entries]
    n = len(rects)
    dim = rects[0].dim

    best_norm = -float("inf")
    seed_a, seed_b = 0, 1
    for axis in range(dim):
        lows = [r.lo[axis] for r in rects]
        highs = [r.hi[axis] for r in rects]
        width = max(highs) - min(lows)
        # Entry with the highest low side and entry with the lowest
        # high side form the most separated pair on this axis.
        i_high_low = max(range(n), key=lambda k: lows[k])
        i_low_high = min(range(n), key=lambda k: highs[k])
        if i_high_low == i_low_high:
            continue
        separation = lows[i_high_low] - highs[i_low_high]
        norm = separation / width if width > 0 else separation
        if norm > best_norm:
            best_norm = norm
            seed_a, seed_b = i_low_high, i_high_low

    group_a = [seed_a]
    group_b = [seed_b]
    cover_a = rects[seed_a]
    cover_b = rects[seed_b]
    remaining = [k for k in range(n) if k != seed_a and k != seed_b]

    for pos, k in enumerate(remaining):
        rest = len(remaining) - pos
        if len(group_a) + rest == min_fill:
            group_a.extend(remaining[pos:])
            break
        if len(group_b) + rest == min_fill:
            group_b.extend(remaining[pos:])
            break
        d1 = cover_a.union(rects[k]).area - cover_a.area
        d2 = cover_b.union(rects[k]).area - cover_b.area
        if d1 < d2 or (d1 == d2 and len(group_a) <= len(group_b)):
            group_a.append(k)
            cover_a = cover_a.union(rects[k])
        else:
            group_b.append(k)
            cover_b = cover_b.union(rects[k])

    return group_a, group_b


def greene_split(
    entries: Sequence[Entry], min_fill: int
) -> tuple[list[int], list[int]]:
    """Greene's split (ICDE 1989) — the classic third comparator.

    Choose the axis with the greatest *normalised separation* between
    the linear-pick-seeds pair, sort the entries by their lower value
    on that axis, and cut the sorted order in half.  The halves may
    violate a large ``min_fill``, so entries are rebalanced from the
    bigger half when needed (Greene's original splits at the midpoint
    with m = M/2, where no rebalance is ever required).
    """
    _validate_split_input(entries, min_fill)
    rects = [e.rect for e in entries]
    n = len(rects)
    dim = rects[0].dim

    best_axis = 0
    best_norm = -float("inf")
    for axis in range(dim):
        lows = [r.lo[axis] for r in rects]
        highs = [r.hi[axis] for r in rects]
        width = max(highs) - min(lows)
        i_high_low = max(range(n), key=lambda k: lows[k])
        i_low_high = min(range(n), key=lambda k: highs[k])
        if i_high_low == i_low_high:
            continue
        separation = lows[i_high_low] - highs[i_low_high]
        norm = separation / width if width > 0 else separation
        if norm > best_norm:
            best_norm = norm
            best_axis = axis

    order = sorted(range(n), key=lambda k: rects[k].lo[best_axis])
    half = max(min_fill, min(n - min_fill, (n + 1) // 2))
    return order[:half], order[half:]


SPLIT_FUNCTIONS: dict[str, SplitFunction] = {
    "quadratic": quadratic_split,
    "linear": linear_split,
    "greene": greene_split,
}
"""Registry used by loaders and the experiment harness.

``repro.rtree.rstar`` registers a fourth entry, ``"rstar"``, on import.
"""
