"""A dynamic R-tree with Guttman insertion and deletion.

This is the substrate behind the paper's TAT ("tuple-at-a-time")
loading algorithm: tuples are inserted one at a time with Guttman's
*ChooseLeaf* descent and (by default) the quadratic split heuristic.
Deletion implements Guttman's *CondenseTree* with reinsertion of
orphaned entries at their original level.

Levels are numbered as in the paper: 0 is the root, ``height - 1`` is
the leaf level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from ..geometry import GeometryError, Rect
from .node import Entry, Node
from .split import SPLIT_FUNCTIONS, SplitFunction

__all__ = ["RTree", "QueryResult"]


@dataclass
class QueryResult:
    """Outcome of a single intersection query with access accounting.

    ``node_accesses`` counts every node whose parent entry rectangle
    intersected the query (the root is always accessed), i.e. the
    bufferless cost metric the paper argues against using on its own.
    """

    items: list[Any]
    node_accesses: int
    accesses_per_level: list[int] = field(default_factory=list)


class RTree:
    """An R-tree over axis-parallel rectangles.

    Parameters
    ----------
    max_entries:
        Node capacity ``n`` — the paper assumes exactly one node per
        disk page.
    min_entries:
        Minimum fill ``m <= n/2`` for non-root nodes; defaults to
        ``max(1, round(0.4 * max_entries))``, the conventional 40%.
    split:
        Split heuristic name (``"quadratic"`` or ``"linear"``) or a
        custom split function.

    Examples
    --------
    >>> t = RTree(max_entries=4)
    >>> t.insert(Rect((0.1, 0.1), (0.2, 0.2)), "a")
    >>> t.search(Rect((0.0, 0.0), (0.5, 0.5)))
    ['a']
    """

    def __init__(
        self,
        max_entries: int = 50,
        min_entries: int | None = None,
        split: str | SplitFunction = "quadratic",
    ) -> None:
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        if min_entries is None:
            min_entries = max(1, round(0.4 * max_entries))
        if not 1 <= min_entries <= max_entries // 2:
            raise ValueError(
                f"min_entries must be in [1, {max_entries // 2}], got {min_entries}"
            )
        if isinstance(split, str):
            try:
                split_fn = SPLIT_FUNCTIONS[split]
            except KeyError:
                raise ValueError(
                    f"unknown split {split!r}; choices: {sorted(SPLIT_FUNCTIONS)}"
                ) from None
        else:
            split_fn = split
        self.max_entries = max_entries
        self.min_entries = min_entries
        self._split_fn = split_fn
        self._root: Node = Node(is_leaf=True)
        self._size = 0
        self._height = 1

    @classmethod
    def _from_prebuilt(
        cls,
        root: Node,
        height: int,
        size: int,
        max_entries: int,
        min_entries: int,
        split: str | SplitFunction = "quadratic",
    ) -> "RTree":
        """Wrap an externally constructed node structure (bulk loaders).

        The caller guarantees structural validity; packed trees use
        ``min_entries`` as loose as 1 because the last node of each
        level "may contain less than n rectangles" (paper §2.2).
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries, split=split)
        tree._root = root
        tree._height = height
        tree._size = size
        return tree

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (a single leaf root has height 1)."""
        return self._height

    @property
    def root(self) -> Node:
        """The root node (read access for stats/validation)."""
        return self._root

    def mbr(self) -> Rect:
        """MBR of the whole data set."""
        if self._size == 0:
            raise GeometryError("mbr() of an empty tree")
        return self._root.mbr()

    def nodes_by_level(self) -> list[list[Node]]:
        """All nodes, grouped by level (index 0 = root level)."""
        levels: list[list[Node]] = [[self._root]]
        while not levels[-1][0].is_leaf:
            nxt: list[Node] = []
            for node in levels[-1]:
                nxt.extend(e.child for e in node.entries)
            levels.append(nxt)
        return levels

    def node_count(self) -> int:
        """Total number of nodes ``M``."""
        return sum(len(level) for level in self.nodes_by_level())

    def items(self) -> Iterator[tuple[Rect, Any]]:
        """Iterate over all stored ``(rect, item)`` pairs."""

        def walk(node: Node) -> Iterator[tuple[Rect, Any]]:
            if node.is_leaf:
                for e in node.entries:
                    yield e.rect, e.item
            else:
                for e in node.entries:
                    yield from walk(e.child)

        yield from walk(self._root)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, rect: Rect, item: Any = None) -> None:
        """Insert ``rect`` with an optional payload ``item``."""
        self._insert_entry(Entry(rect, item=item), target_depth=self._height - 1)
        self._size += 1

    def _insert_entry(self, entry: Entry, target_depth: int) -> None:
        """Insert ``entry`` at ``target_depth`` levels below the root."""
        sibling = self._insert_rec(self._root, entry, target_depth)
        if sibling is not None:
            old_root = self._root
            self._root = Node(
                is_leaf=False,
                entries=[
                    Entry(old_root.mbr(), child=old_root),
                    Entry(sibling.mbr(), child=sibling),
                ],
            )
            self._height += 1

    def _insert_rec(self, node: Node, entry: Entry, depth: int) -> Node | None:
        if depth == 0:
            node.entries.append(entry)
            if len(node.entries) > self.max_entries:
                return self._split_node(node)
            return None

        slot = self._choose_subtree(node, entry.rect)
        sibling = self._insert_rec(slot.child, entry, depth - 1)
        if sibling is None:
            slot.rect = slot.rect.union(entry.rect)
        else:
            slot.rect = slot.child.mbr()
            node.entries.append(Entry(sibling.mbr(), child=sibling))
            if len(node.entries) > self.max_entries:
                return self._split_node(node)
        return None

    def _choose_subtree(self, node: Node, rect: Rect) -> Entry:
        """Guttman's ChooseLeaf step: least enlargement, then least area.

        Works on raw corner tuples — this is the insertion hot path and
        allocating intermediate :class:`Rect` objects here dominates
        TAT loading time otherwise.
        """
        r_lo, r_hi = rect.lo, rect.hi
        best: Entry | None = None
        best_enlargement = float("inf")
        best_area = float("inf")
        for e in node.entries:
            e_lo, e_hi = e.rect.lo, e.rect.hi
            area = 1.0
            union_area = 1.0
            for a, b, c, d in zip(e_lo, e_hi, r_lo, r_hi):
                area *= b - a
                union_area *= max(b, d) - min(a, c)
            enlargement = union_area - area
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best = e
                best_enlargement = enlargement
                best_area = area
        assert best is not None, "internal node with no entries"
        return best

    def _split_node(self, node: Node) -> Node:
        group_a, group_b = self._split_fn(node.entries, self.min_entries)
        entries = node.entries
        node.entries = [entries[i] for i in group_a]
        return Node(node.is_leaf, [entries[i] for i in group_b])

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, rect: Rect, item: Any = None) -> bool:
        """Delete one entry matching ``(rect, item)`` exactly.

        Returns True if an entry was found and removed.  Underflowing
        nodes are dissolved and their entries reinserted at the level
        they came from (Guttman's CondenseTree).
        """
        orphans: list[tuple[Node, int]] = []
        found = self._delete_rec(self._root, rect, item, self._height - 1, orphans)
        if not found:
            return False
        self._size -= 1

        # Shrink the root while it is an internal node with one child.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child
            self._height -= 1

        # Reinsert orphaned subtrees entry by entry at their old level.
        for orphan, subtree_height in orphans:
            for entry in orphan.entries:
                entry_subtree_height = subtree_height - 1
                target_depth = self._height - 1 - entry_subtree_height
                if target_depth < 0:
                    # The tree shrank below the orphan's level; demote
                    # by reinserting the underlying leaf entries.
                    for leaf_rect, leaf_item in _collect_leaf_entries(entry):
                        self._insert_entry(
                            Entry(leaf_rect, item=leaf_item),
                            target_depth=self._height - 1,
                        )
                else:
                    self._insert_entry(entry, target_depth=target_depth)
        return True

    def _delete_rec(
        self,
        node: Node,
        rect: Rect,
        item: Any,
        depth: int,
        orphans: list[tuple[Node, int]],
    ) -> bool:
        if depth == 0:
            for i, e in enumerate(node.entries):
                if e.rect == rect and e.item == item:
                    node.entries.pop(i)
                    return True
            return False

        for i, e in enumerate(node.entries):
            if not e.rect.contains_rect(rect):
                continue
            if not self._delete_rec(e.child, rect, item, depth - 1, orphans):
                continue
            if len(e.child.entries) < self.min_entries:
                node.entries.pop(i)
                orphans.append((e.child, depth))
            elif e.child.entries:
                e.rect = e.child.mbr()
            return True
        return False

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, rect: Rect) -> list[Any]:
        """Items whose rectangles intersect ``rect``."""
        return self.query(rect).items

    def search_point(self, point: tuple[float, ...]) -> list[Any]:
        """Items whose rectangles contain ``point`` (a point query)."""
        return self.query(Rect.from_point(point)).items

    def query(self, rect: Rect) -> QueryResult:
        """Intersection query with per-level node-access accounting."""
        items: list[Any] = []
        per_level = [0] * self._height
        if self._size == 0:
            return QueryResult(items=items, node_accesses=0, accesses_per_level=per_level)

        def visit(node: Node, level: int) -> None:
            per_level[level] += 1
            if node.is_leaf:
                for e in node.entries:
                    if e.rect.intersects(rect):
                        items.append(e.item)
            else:
                for e in node.entries:
                    if e.rect.intersects(rect):
                        visit(e.child, level + 1)

        visit(self._root, 0)
        return QueryResult(
            items=items,
            node_accesses=sum(per_level),
            accesses_per_level=per_level,
        )

    def accessed_node_mbrs(self, rect: Rect) -> list[tuple[int, Rect]]:
        """``(level, mbr)`` of every node a query on ``rect`` visits.

        Used in tests to confirm that a real traversal touches exactly
        the nodes whose MBRs intersect the query (modulo the root,
        which a traversal always touches) — the premise that lets the
        paper's model and simulator work from MBR lists alone.
        """
        out: list[tuple[int, Rect]] = []
        if self._size == 0:
            return out

        def visit(node: Node, level: int) -> None:
            out.append((level, node.mbr()))
            if node.is_leaf:
                return
            for e in node.entries:
                if e.rect.intersects(rect):
                    visit(e.child, level + 1)

        visit(self._root, 0)
        return out


def _collect_leaf_entries(entry: Entry) -> Iterator[tuple[Rect, Any]]:
    """All leaf-level ``(rect, item)`` pairs beneath an internal entry."""
    if entry.child is None:
        yield entry.rect, entry.item
        return
    stack = [entry.child]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            for e in node.entries:
                yield e.rect, e.item
        else:
            stack.extend(e.child for e in node.entries)
