"""R-tree node and entry structures.

An R-tree node stores up to ``max_entries`` entries.  Each entry pairs a
rectangle with either a child node (internal nodes) or an opaque item
(leaf nodes) — the ``(R, P)`` pairs of the paper's §2.1.  At the leaf
level ``R`` is the bounding box of an actual object; at internal nodes
``R`` is the MBR of everything stored in the subtree.
"""

from __future__ import annotations

from typing import Any

from ..geometry import GeometryError, Rect, mbr_of

__all__ = ["Entry", "Node"]


class Entry:
    """A single ``(rectangle, pointer)`` slot of an R-tree node."""

    __slots__ = ("rect", "child", "item")

    def __init__(
        self,
        rect: Rect,
        child: "Node | None" = None,
        item: Any = None,
    ) -> None:
        if child is not None and item is not None:
            raise ValueError("an entry points to a child node or an item, not both")
        self.rect = rect
        self.child = child
        self.item = item

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = "child" if self.child is not None else f"item={self.item!r}"
        return f"Entry({self.rect!r}, {target})"


class Node:
    """An R-tree node: a leaf holding items or an internal routing node."""

    __slots__ = ("is_leaf", "entries")

    def __init__(self, is_leaf: bool, entries: list[Entry] | None = None) -> None:
        self.is_leaf = is_leaf
        self.entries: list[Entry] = entries if entries is not None else []

    def __len__(self) -> int:
        return len(self.entries)

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries in this node."""
        if not self.entries:
            raise GeometryError("mbr() of an empty node")
        return mbr_of(e.rect for e in self.entries)

    def children(self) -> list["Node"]:
        """Child nodes (internal nodes only)."""
        if self.is_leaf:
            return []
        return [e.child for e in self.entries if e.child is not None]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else "internal"
        return f"Node({kind}, n={len(self.entries)})"
