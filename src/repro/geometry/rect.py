"""Axis-parallel d-dimensional rectangles.

The paper works with axis-parallel rectangles normalised to the unit
square ``U = [0, 1] x [0, 1]``.  Everything here generalises to d
dimensions, as the paper notes its model does ("Generalizations to
higher dimensions are straightforward").

A :class:`Rect` is an immutable pair of corner tuples ``lo`` and ``hi``
with ``lo[k] <= hi[k]`` for every axis ``k``.  Degenerate rectangles
(zero extent on one or more axes, e.g. points) are valid; they arise
naturally as the MBRs of point data and as point queries.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

__all__ = ["Rect", "GeometryError", "unit_rect", "mbr_of"]


class GeometryError(ValueError):
    """Raised for malformed geometric input (e.g. ``lo > hi``)."""


@dataclass(frozen=True, slots=True)
class Rect:
    """An immutable axis-parallel rectangle in d dimensions.

    Parameters
    ----------
    lo:
        Coordinates of the "bottom-left" corner (minimum on every axis).
    hi:
        Coordinates of the "top-right" corner (maximum on every axis).

    Examples
    --------
    >>> r = Rect((0.0, 0.0), (0.5, 0.25))
    >>> r.area
    0.125
    >>> r.contains_point((0.1, 0.1))
    True
    """

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    def __post_init__(self) -> None:
        lo = tuple(float(x) for x in self.lo)
        hi = tuple(float(x) for x in self.hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if len(lo) != len(hi):
            raise GeometryError(
                f"corner dimensionality mismatch: {len(lo)} != {len(hi)}"
            )
        if not lo:
            raise GeometryError("rectangles must have at least one dimension")
        for k, (a, b) in enumerate(zip(lo, hi)):
            if math.isnan(a) or math.isnan(b):
                raise GeometryError(f"NaN coordinate on axis {k}")
            if a > b:
                raise GeometryError(f"lo > hi on axis {k}: {a} > {b}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """A degenerate rectangle covering a single point."""
        p = tuple(float(x) for x in point)
        return cls(p, p)

    @classmethod
    def from_center(cls, center: Sequence[float], extents: Sequence[float]) -> "Rect":
        """Build a rectangle from its center and full side lengths."""
        if len(center) != len(extents):
            raise GeometryError("center/extents dimensionality mismatch")
        lo = tuple(c - e / 2.0 for c, e in zip(center, extents))
        hi = tuple(c + e / 2.0 for c, e in zip(center, extents))
        return cls(lo, hi)

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def extents(self) -> tuple[float, ...]:
        """Side length on each axis (``X_ij``/``Y_ij`` in the paper)."""
        return tuple(b - a for a, b in zip(self.lo, self.hi))

    @property
    def center(self) -> tuple[float, ...]:
        """Center point of the rectangle (``c_j`` in the paper)."""
        return tuple((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    @property
    def area(self) -> float:
        """d-dimensional volume (``A_ij``); area in 2-D."""
        result = 1.0
        for e in self.extents:
            result *= e
        return result

    @property
    def margin(self) -> float:
        """Sum of side lengths.

        In 2-D this is half the perimeter; the paper's ``L_x + L_y``
        terms are sums of per-axis extents, which this exposes per
        rectangle.
        """
        return sum(self.extents)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float]) -> bool:
        """True if ``point`` lies inside this rectangle (closed)."""
        if len(point) != self.dim:
            raise GeometryError("point dimensionality mismatch")
        return all(a <= p <= b for a, p, b in zip(self.lo, point, self.hi))

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        self._check_dim(other)
        return all(a <= c for a, c in zip(self.lo, other.lo)) and all(
            d <= b for d, b in zip(other.hi, self.hi)
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two (closed) rectangles share at least a point."""
        self._check_dim(other)
        return all(
            a <= d and c <= b
            for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi)
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping region, or ``None`` if disjoint."""
        self._check_dim(other)
        lo = tuple(max(a, c) for a, c in zip(self.lo, other.lo))
        hi = tuple(min(b, d) for b, d in zip(self.hi, other.hi))
        if any(a > b for a, b in zip(lo, hi)):
            return None
        return Rect(lo, hi)

    def union(self, other: "Rect") -> "Rect":
        """The minimum bounding rectangle of the two rectangles."""
        self._check_dim(other)
        lo = tuple(min(a, c) for a, c in zip(self.lo, other.lo))
        hi = tuple(max(b, d) for b, d in zip(self.hi, other.hi))
        return Rect(lo, hi)

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to include ``other`` (Guttman's criterion)."""
        return self.union(other).area - self.area

    def extended(self, amounts: Sequence[float]) -> "Rect":
        """Grow the *top-right* corner by ``amounts`` per axis.

        This is the Kamel–Faloutsos extension used for uniform region
        queries: a query of size ``(qx, qy)`` intersects ``R`` iff its
        top-right corner lies inside ``R`` extended by ``(qx, qy)``
        (Fig. 2 of the paper).
        """
        if len(amounts) != self.dim:
            raise GeometryError("amounts dimensionality mismatch")
        if any(q < 0 for q in amounts):
            raise GeometryError("extension amounts must be non-negative")
        hi = tuple(b + q for b, q in zip(self.hi, amounts))
        return Rect(self.lo, hi)

    def expanded_centered(self, amounts: Sequence[float]) -> "Rect":
        """Grow total side length by ``amounts`` keeping the center fixed.

        This is the data-driven expansion of §3.2 / Fig. 4: a query of
        size ``(qx, qy)`` centred at ``c`` intersects ``R`` iff ``c``
        lies inside ``R`` expanded by ``qx`` (resp. ``qy``) units on
        dimension x (resp. y) about its own center.
        """
        if len(amounts) != self.dim:
            raise GeometryError("amounts dimensionality mismatch")
        if any(q < 0 for q in amounts):
            raise GeometryError("expansion amounts must be non-negative")
        lo = tuple(a - q / 2.0 for a, q in zip(self.lo, amounts))
        hi = tuple(b + q / 2.0 for b, q in zip(self.hi, amounts))
        return Rect(lo, hi)

    def clipped(self, window: "Rect") -> "Rect | None":
        """Alias of :meth:`intersection`, named for the §3.1 clipping step."""
        return self.intersection(window)

    def translated(self, offsets: Sequence[float]) -> "Rect":
        """Shift the rectangle by ``offsets`` per axis."""
        if len(offsets) != self.dim:
            raise GeometryError("offsets dimensionality mismatch")
        lo = tuple(a + o for a, o in zip(self.lo, offsets))
        hi = tuple(b + o for b, o in zip(self.hi, offsets))
        return Rect(lo, hi)

    def scaled_into(self, window: "Rect") -> "Rect":
        """Map this rectangle from the unit cube into ``window``.

        Used by the data-set generators to denormalise shapes.
        """
        self._check_dim(window)
        lo = tuple(
            w_lo + a * (w_hi - w_lo)
            for a, w_lo, w_hi in zip(self.lo, window.lo, window.hi)
        )
        hi = tuple(
            w_lo + b * (w_hi - w_lo)
            for b, w_lo, w_hi in zip(self.hi, window.lo, window.hi)
        )
        return Rect(lo, hi)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_dim(self, other: "Rect") -> None:
        if self.dim != other.dim:
            raise GeometryError(
                f"dimensionality mismatch: {self.dim} != {other.dim}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo = ", ".join(f"{x:g}" for x in self.lo)
        hi = ", ".join(f"{x:g}" for x in self.hi)
        return f"Rect(({lo}), ({hi}))"


def unit_rect(dim: int = 2) -> Rect:
    """The unit cube ``U = [0, 1]^dim`` that all data is normalised into."""
    if dim < 1:
        raise GeometryError("dimension must be positive")
    return Rect((0.0,) * dim, (1.0,) * dim)


def mbr_of(rects: Iterable[Rect]) -> Rect:
    """Minimum bounding rectangle of a non-empty collection of rectangles."""
    it = iter(rects)
    try:
        acc = next(it)
    except StopIteration:
        raise GeometryError("mbr_of() requires at least one rectangle") from None
    for r in it:
        acc = acc.union(r)
    return acc
