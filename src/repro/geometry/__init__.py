"""Axis-parallel rectangle geometry (scalar and vectorised)."""

from __future__ import annotations

from .rect import GeometryError, Rect, mbr_of, unit_rect
from .rectarray import RectArray
from .tolerance import ABS_TOL, REL_TOL, isclose, near_zero

__all__ = [
    "ABS_TOL",
    "GeometryError",
    "REL_TOL",
    "Rect",
    "RectArray",
    "isclose",
    "mbr_of",
    "near_zero",
    "unit_rect",
]
