"""Axis-parallel rectangle geometry (scalar and vectorised)."""

from .rect import GeometryError, Rect, mbr_of, unit_rect
from .rectarray import RectArray

__all__ = ["GeometryError", "Rect", "RectArray", "mbr_of", "unit_rect"]
