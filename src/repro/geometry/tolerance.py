"""Tolerance helpers for floating-point comparisons.

The model's quantities — areas, access probabilities, expected disk
accesses — are sums of thousands of floating-point products, so exact
``==``/``!=`` against another float is either dead code or a
platform-dependent bug.  Rule RL001 of ``repro.analysis`` bans such
comparisons in the geometry and model packages; these helpers are the
sanctioned replacements.

``ABS_TOL`` is far below any physically meaningful quantity in the
reproduction (the smallest access probabilities the paper's setups
produce are ~1e-7; page counts are integers) yet far above accumulated
rounding noise for the ~1e6-term sums involved.
"""

from __future__ import annotations

import math

__all__ = ["ABS_TOL", "REL_TOL", "isclose", "near_zero"]

ABS_TOL = 1e-12
"""Default absolute tolerance for near-zero tests."""

REL_TOL = 1e-9
"""Default relative tolerance for closeness tests."""


def isclose(a: float, b: float, *, rel_tol: float = REL_TOL, abs_tol: float = ABS_TOL) -> bool:
    """Tolerant equality: true when ``a`` and ``b`` agree to tolerance.

    A thin wrapper over :func:`math.isclose` that bakes in the
    repository-wide defaults, so call sites stay short and consistent.
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def near_zero(x: float, *, abs_tol: float = ABS_TOL) -> bool:
    """True when ``x`` is indistinguishable from zero at tolerance.

    Use for guard clauses before division by model quantities that are
    exactly zero in degenerate regimes (e.g. ``EPT = 0`` when no node
    is ever accessed) but may carry rounding dust otherwise.
    """
    return abs(x) <= abs_tol
