"""Vectorised storage for large collections of rectangles.

The analytical model and the simulator both operate on *every* node MBR
of a tree for *every* query, so the hot paths are expressed over a
struct-of-arrays representation: ``lo`` and ``hi`` are ``(n, d)`` float
arrays.  :class:`RectArray` is deliberately minimal — it is a data
carrier plus the handful of bulk operations the model needs (areas,
extents, extension, clipping, containment tests).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from .rect import GeometryError, Rect

__all__ = ["RectArray"]

_DENSE_CHUNK_CELLS = 16_000_000
"""Point-chunk size (in boolean cells) for the dense containment
kernels; bounds peak memory of intermediates to tens of megabytes."""


class RectArray:
    """An immutable array of ``n`` axis-parallel rectangles in d dimensions.

    Parameters
    ----------
    lo, hi:
        Arrays of shape ``(n, d)`` with ``lo <= hi`` elementwise.

    The constructor copies and validates its input; all bulk operations
    return fresh arrays and never mutate ``self``.
    """

    __slots__ = ("lo", "hi", "_hash")

    def __init__(self, lo: np.ndarray, hi: np.ndarray) -> None:
        lo = np.array(lo, dtype=np.float64, copy=True)
        hi = np.array(hi, dtype=np.float64, copy=True)
        if lo.ndim != 2 or hi.ndim != 2:
            raise GeometryError("lo/hi must be 2-D arrays of shape (n, d)")
        if lo.shape != hi.shape:
            raise GeometryError(f"shape mismatch: {lo.shape} != {hi.shape}")
        if lo.shape[1] < 1:
            raise GeometryError("rectangles must have at least one dimension")
        if np.isnan(lo).any() or np.isnan(hi).any():
            raise GeometryError("NaN coordinates are not allowed")
        if (lo > hi).any():
            raise GeometryError("lo > hi for at least one rectangle")
        lo.setflags(write=False)
        hi.setflags(write=False)
        self.lo = lo
        self.hi = hi
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rects(cls, rects: Iterable[Rect]) -> "RectArray":
        """Build from an iterable of :class:`Rect` objects."""
        rects = list(rects)
        if not rects:
            raise GeometryError("RectArray.from_rects() requires >= 1 rectangle")
        dim = rects[0].dim
        if any(r.dim != dim for r in rects):
            raise GeometryError("mixed dimensionality in from_rects()")
        lo = np.array([r.lo for r in rects], dtype=np.float64)
        hi = np.array([r.hi for r in rects], dtype=np.float64)
        return cls(lo, hi)

    @classmethod
    def from_readonly(cls, lo: np.ndarray, hi: np.ndarray) -> "RectArray":
        """Wrap two already-read-only float64 views **without copying**.

        The zero-copy constructor behind memory-mapped data sets
        (:func:`repro.datasets.open_mmap`): the same validation as
        ``__init__`` runs — shape, NaN, ``lo <= hi`` — but the arrays
        are adopted as-is, so an ``(n, d)`` view of an ``np.load(...,
        mmap_mode="r")`` file becomes a :class:`RectArray` whose pages
        are shared through the OS page cache by every process that
        opens the same file.  Both inputs must already be
        non-writable float64 ``(n, d)`` arrays; anything else is
        rejected rather than silently copied, so the zero-copy
        promise can never quietly degrade.
        """
        for name, arr in (("lo", lo), ("hi", hi)):
            if not isinstance(arr, np.ndarray) or arr.dtype != np.float64:
                raise GeometryError(f"{name} must be a float64 ndarray")
            if arr.flags.writeable:
                raise GeometryError(
                    f"{name} must be read-only (setflags(write=False)) "
                    "for the zero-copy constructor"
                )
        if lo.ndim != 2 or hi.ndim != 2:
            raise GeometryError("lo/hi must be 2-D arrays of shape (n, d)")
        if lo.shape != hi.shape:
            raise GeometryError(f"shape mismatch: {lo.shape} != {hi.shape}")
        if lo.shape[1] < 1:
            raise GeometryError("rectangles must have at least one dimension")
        if np.isnan(lo).any() or np.isnan(hi).any():
            raise GeometryError("NaN coordinates are not allowed")
        if (lo > hi).any():
            raise GeometryError("lo > hi for at least one rectangle")
        out = cls.__new__(cls)
        out.lo = lo
        out.hi = hi
        out._hash = None
        return out

    @classmethod
    def from_points(cls, points: np.ndarray) -> "RectArray":
        """Degenerate rectangles from an ``(n, d)`` array of points."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise GeometryError("points must be an (n, d) array")
        return cls(points, points)

    @classmethod
    def empty(cls, dim: int) -> "RectArray":
        """An array of zero rectangles (useful as an identity for concat)."""
        z = np.empty((0, dim), dtype=np.float64)
        return cls(z, z)

    @classmethod
    def concatenate(cls, parts: Sequence["RectArray"]) -> "RectArray":
        """Concatenate several arrays of matching dimensionality."""
        if not parts:
            raise GeometryError("concatenate() requires at least one part")
        dim = parts[0].dim
        if any(p.dim != dim for p in parts):
            raise GeometryError("mixed dimensionality in concatenate()")
        lo = np.concatenate([p.lo for p in parts], axis=0)
        hi = np.concatenate([p.hi for p in parts], axis=0)
        return cls(lo, hi)

    # ------------------------------------------------------------------
    # Shape and indexing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.lo.shape[0]

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return self.lo.shape[1]

    def __getitem__(self, index) -> "RectArray":
        """Slice / fancy-index into a new (possibly smaller) array."""
        lo = np.atleast_2d(self.lo[index])
        hi = np.atleast_2d(self.hi[index])
        return RectArray(lo, hi)

    def rect(self, i: int) -> Rect:
        """The ``i``-th rectangle as a :class:`Rect`."""
        return Rect(tuple(self.lo[i]), tuple(self.hi[i]))

    def __iter__(self) -> Iterator[Rect]:
        for i in range(len(self)):
            yield self.rect(i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectArray):
            return NotImplemented
        return (
            self.lo.shape == other.lo.shape
            and bool(np.array_equal(self.lo, other.lo))
            and bool(np.array_equal(self.hi, other.hi))
        )

    def __hash__(self) -> int:
        # tobytes() serialises both arrays, so the hash is computed at
        # most once; the arrays are read-only, making it stable.
        if self._hash is None:
            self._hash = hash(
                (self.lo.shape, self.lo.tobytes(), self.hi.tobytes())
            )
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RectArray(n={len(self)}, dim={self.dim})"

    # ------------------------------------------------------------------
    # Bulk measures
    # ------------------------------------------------------------------
    def extents(self) -> np.ndarray:
        """``(n, d)`` array of side lengths."""
        return self.hi - self.lo

    def centers(self) -> np.ndarray:
        """``(n, d)`` array of center points."""
        return (self.lo + self.hi) / 2.0

    def areas(self) -> np.ndarray:
        """``(n,)`` array of d-dimensional volumes (``A_ij``)."""
        return np.prod(self.extents(), axis=1)

    def margins(self) -> np.ndarray:
        """``(n,)`` array of summed side lengths (perimeter/2 in 2-D)."""
        return np.sum(self.extents(), axis=1)

    def total_area(self) -> float:
        """Sum of all areas — the paper's ``A``."""
        return float(np.sum(self.areas()))

    def total_extent(self, axis: int) -> float:
        """Sum of extents along one axis — the paper's ``L_x`` / ``L_y``."""
        return float(np.sum(self.extents()[:, axis]))

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the whole collection."""
        if len(self) == 0:
            raise GeometryError("mbr() of an empty RectArray")
        return Rect(tuple(self.lo.min(axis=0)), tuple(self.hi.max(axis=0)))

    # ------------------------------------------------------------------
    # Bulk transforms
    # ------------------------------------------------------------------
    def extended(self, amounts: Sequence[float]) -> "RectArray":
        """Kamel–Faloutsos extension of every rectangle (grow ``hi``)."""
        amounts = np.asarray(amounts, dtype=np.float64)
        if amounts.shape != (self.dim,):
            raise GeometryError("amounts must have one entry per axis")
        if (amounts < 0).any():
            raise GeometryError("extension amounts must be non-negative")
        return RectArray(self.lo, self.hi + amounts)

    def expanded_centered(self, amounts: Sequence[float]) -> "RectArray":
        """Center-preserving expansion of every rectangle (§3.2, Fig. 4)."""
        amounts = np.asarray(amounts, dtype=np.float64)
        if amounts.shape != (self.dim,):
            raise GeometryError("amounts must have one entry per axis")
        if (amounts < 0).any():
            raise GeometryError("expansion amounts must be non-negative")
        half = amounts / 2.0
        return RectArray(self.lo - half, self.hi + half)

    def clipped(self, window: Rect) -> "RectArray":
        """Clip every rectangle to ``window``.

        Rectangles disjoint from the window collapse to degenerate
        (zero-area) slivers on the window boundary, which contribute
        zero to every area-based quantity — exactly the behaviour the
        clipped access-probability formula of §3.1 needs.
        """
        if window.dim != self.dim:
            raise GeometryError("window dimensionality mismatch")
        w_lo = np.asarray(window.lo)
        w_hi = np.asarray(window.hi)
        lo = np.clip(self.lo, w_lo, w_hi)
        hi = np.clip(self.hi, w_lo, w_hi)
        hi = np.maximum(hi, lo)
        return RectArray(lo, hi)

    def clipped_areas(self, window: Rect) -> np.ndarray:
        """``(n,)`` areas of ``R ∩ window`` (zero where disjoint).

        This is the numerator of the clipped access probability without
        materialising an intermediate :class:`RectArray`.
        """
        if window.dim != self.dim:
            raise GeometryError("window dimensionality mismatch")
        lo = np.maximum(self.lo, np.asarray(window.lo))
        hi = np.minimum(self.hi, np.asarray(window.hi))
        sides = np.maximum(hi - lo, 0.0)
        return np.prod(sides, axis=1)

    def translated(self, offsets: Sequence[float]) -> "RectArray":
        """Shift every rectangle by ``offsets``."""
        offsets = np.asarray(offsets, dtype=np.float64)
        if offsets.shape != (self.dim,):
            raise GeometryError("offsets must have one entry per axis")
        return RectArray(self.lo + offsets, self.hi + offsets)

    def normalized(self, window: Rect | None = None) -> "RectArray":
        """Affinely map the collection into the unit cube.

        Parameters
        ----------
        window:
            The source window to map from.  Defaults to the collection's
            own MBR, which maps the data snugly into ``[0, 1]^d`` — the
            normalisation step the paper applies to every data set.

        Axes along which the window is degenerate are centred at 0.5.
        """
        if window is None:
            window = self.mbr()
        w_lo = np.asarray(window.lo)
        span = np.asarray(window.hi) - w_lo
        safe = np.where(span > 0.0, span, 1.0)
        lo = (self.lo - w_lo) / safe
        hi = (self.hi - w_lo) / safe
        flat = span <= 0.0
        if flat.any():
            lo[:, flat] = 0.5
            hi[:, flat] = 0.5
        return RectArray(lo, hi)

    # ------------------------------------------------------------------
    # Bulk predicates
    # ------------------------------------------------------------------
    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Boolean ``(n_points, n_rects)`` containment matrix.

        ``out[q, j]`` is True iff rectangle ``j`` contains point ``q``
        (closed on all sides).  This is the dense oracle the sparse
        kernels of :mod:`repro.accel` are verified against; peak
        memory is bounded the same way :meth:`count_points_inside`
        bounds it — the work proceeds in point chunks of ~16M cells
        and one axis at a time, so the only full-size allocation is
        the output matrix itself (never the ``(n_points, n_rects, d)``
        broadcast temporaries, which would OOM on large trees during
        equivalence tests).
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise GeometryError("points must be (n_points, d)")
        n_points = points.shape[0]
        n_rects = len(self)
        out = np.empty((n_points, n_rects), dtype=bool)
        if n_points == 0 or n_rects == 0:
            return out
        chunk = max(1, _DENSE_CHUNK_CELLS // n_rects)
        lo_t = self.lo.T
        hi_t = self.hi.T
        for start in range(0, n_points, chunk):
            stop = min(start + chunk, n_points)
            block = out[start:stop]
            np.less_equal(lo_t[0], points[start:stop, 0, None], out=block)
            for axis in range(1, self.dim):
                coords = points[start:stop, axis, None]
                block &= lo_t[axis] <= coords
                block &= coords <= hi_t[axis]
            block &= points[start:stop, 0, None] <= hi_t[0]
        return out

    def count_points_inside(self, points: np.ndarray) -> np.ndarray:
        """``(n_rects,)`` count of ``points`` inside each rectangle.

        Used by the data-driven access model (Eq. 4): the access
        probability of an (expanded) MBR is the fraction of data centres
        it contains.  Chunked over points to bound peak memory.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self.dim:
            raise GeometryError("points must be (n_points, d)")
        n_rects = len(self)
        counts = np.zeros(n_rects, dtype=np.int64)
        if n_rects == 0 or points.shape[0] == 0:
            return counts
        # ~16M boolean cells per chunk keeps peak memory modest.
        chunk = max(1, _DENSE_CHUNK_CELLS // max(n_rects, 1))
        for start in range(0, points.shape[0], chunk):
            block = points[start : start + chunk]
            counts += self.contains_points(block).sum(axis=0)
        return counts

    def intersects_rect(self, rect: Rect) -> np.ndarray:
        """Boolean ``(n,)`` mask of rectangles intersecting ``rect``."""
        if rect.dim != self.dim:
            raise GeometryError("rect dimensionality mismatch")
        r_lo = np.asarray(rect.lo)
        r_hi = np.asarray(rect.hi)
        return np.all((self.lo <= r_hi) & (r_lo <= self.hi), axis=1)
