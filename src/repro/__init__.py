"""repro — "The Effect of Buffering on the Performance of R-Trees".

A full reproduction of Leutenegger & López (ICDE 1998 / TKDE 2000):
R-trees, loading algorithms (TAT, NX, HS, STR), an LRU buffer
simulator, and — the paper's contribution — an analytical buffer model
predicting the expected number of *disk accesses* per query.

Quick tour (see ``examples/quickstart.py`` for a runnable version)::

    import numpy as np
    from repro import (
        LRUBuffer, RTree, TreeDescription, UniformPointWorkload,
        buffer_model, load_description, simulate, synthetic_region,
    )

    data = synthetic_region(20_000, rng=42)
    desc = load_description("hs", data, capacity=100)
    workload = UniformPointWorkload()
    predicted = buffer_model(desc, workload, buffer_size=100)
    measured = simulate(desc, workload, buffer_size=100)
"""

from __future__ import annotations

from .buffer import (
    BufferPool,
    BufferStats,
    ClockBuffer,
    FIFOBuffer,
    LRUBuffer,
    PinningError,
    RandomBuffer,
)
from .datasets import (
    CFD_SIZE,
    TIGER_SIZE,
    cfd_like,
    load_rects,
    save_rects,
    synthetic_point,
    synthetic_region,
    tiger_like,
)
from .geometry import GeometryError, Rect, RectArray, mbr_of, unit_rect
from .obs import (
    LevelStats,
    LevelStatsTable,
    MetricsRegistry,
    NullSink,
    QueryTrace,
    QueryTraceEntry,
)
from .model import (
    BufferModelResult,
    buffer_model,
    buffer_model_sweep,
    expected_distinct_nodes,
    expected_node_accesses,
    kamel_faloutsos_estimate,
    max_pinnable_levels,
    pinning_improvement,
    queries_to_fill_buffer,
    steady_state_disk_accesses,
    sweep_pinning,
)
from .packing import (
    LOADERS,
    load_description,
    load_tree,
    pack_description,
    pack_tree,
    tat_tree,
)
from .queries import (
    DataDrivenWorkload,
    MixedWorkload,
    QueryWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)
from .rtree import (
    InvariantViolation,
    QueryResult,
    RStarTree,
    RTree,
    TreeDescription,
    check_tree,
)
from .simulation import (
    BatchMeansEstimate,
    SimulationResult,
    ValidationReport,
    batch_means,
    simulate,
    validate_model,
)

__version__ = "1.0.0"

__all__ = [
    "BatchMeansEstimate",
    "BufferModelResult",
    "BufferPool",
    "BufferStats",
    "CFD_SIZE",
    "ClockBuffer",
    "DataDrivenWorkload",
    "FIFOBuffer",
    "GeometryError",
    "InvariantViolation",
    "LOADERS",
    "LRUBuffer",
    "LevelStats",
    "LevelStatsTable",
    "MetricsRegistry",
    "MixedWorkload",
    "NullSink",
    "PinningError",
    "QueryTrace",
    "QueryTraceEntry",
    "QueryResult",
    "QueryWorkload",
    "RStarTree",
    "RTree",
    "RandomBuffer",
    "Rect",
    "RectArray",
    "SimulationResult",
    "TIGER_SIZE",
    "TreeDescription",
    "UniformPointWorkload",
    "ValidationReport",
    "UniformRegionWorkload",
    "batch_means",
    "buffer_model",
    "buffer_model_sweep",
    "cfd_like",
    "check_tree",
    "expected_distinct_nodes",
    "expected_node_accesses",
    "kamel_faloutsos_estimate",
    "load_description",
    "load_rects",
    "load_tree",
    "max_pinnable_levels",
    "mbr_of",
    "pack_description",
    "pack_tree",
    "pinning_improvement",
    "queries_to_fill_buffer",
    "save_rects",
    "simulate",
    "steady_state_disk_accesses",
    "sweep_pinning",
    "synthetic_point",
    "synthetic_region",
    "tat_tree",
    "tiger_like",
    "unit_rect",
    "validate_model",
    "__version__",
]


def _maybe_install_sanitizer() -> None:
    """Activate the shared-state sanitizer when REPRO_SANITIZE=1.

    Lazy imports keep the cost at zero for normal runs: the analysis
    package is only pulled in when the flag is set.
    """
    import os

    if os.environ.get("REPRO_SANITIZE", "").strip() in ("1", "true", "on"):
        from .analysis.sanitize import install

        install()


_maybe_install_sanitizer()
