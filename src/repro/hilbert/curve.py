"""Hilbert space-filling curve indices.

The Hilbert-sort packing algorithm (Kamel & Faloutsos [4]) orders
rectangle centres "based on their distance from the origin as measured
along the Hilbert curve".  We provide:

* :func:`hilbert_index_2d` — the classic bit-interleaving 2-D algorithm
  (the one relevant to the paper's experiments), and
* :func:`hilbert_index` — arbitrary-dimension indices via Skilling's
  transpose algorithm, supporting the paper's "generalizations to
  higher dimensions are straightforward" remark.

Both are vectorised over numpy integer arrays and are exact for grids
up to ``2**order`` cells per axis (with ``order * dim`` result bits,
held in Python/object-free ``uint64`` for ``order * dim <= 64``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_ORDER",
    "hilbert_index",
    "hilbert_index_2d",
    "hilbert_sort_key",
    "morton_index",
    "morton_sort_key",
    "quantize",
]

DEFAULT_ORDER = 16
"""Default grid resolution: 2**16 cells per axis, ample for ~1e5 rects."""


def quantize(coords: np.ndarray, order: int = DEFAULT_ORDER) -> np.ndarray:
    """Map unit-cube coordinates to integer grid cells in ``[0, 2**order)``.

    Values outside ``[0, 1]`` are clamped; the top edge maps to the last
    cell (the grid cells are half-open except the final one).
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    coords = np.asarray(coords, dtype=np.float64)
    side = 1 << order
    cells = np.floor(coords * side).astype(np.int64)
    return np.clip(cells, 0, side - 1).astype(np.uint64)


def hilbert_index_2d(x: np.ndarray, y: np.ndarray, order: int = DEFAULT_ORDER) -> np.ndarray:
    """Distance along the 2-D Hilbert curve of grid cells ``(x, y)``.

    Implements the standard iterative rotate-and-accumulate algorithm
    (the ``xy2d`` routine of Warren's "Hacker's Delight" presentation),
    vectorised over numpy arrays.

    Parameters
    ----------
    x, y:
        Integer arrays with values in ``[0, 2**order)``.
    order:
        Number of bits per axis; the result uses ``2 * order`` bits.

    Returns
    -------
    ``uint64`` array of curve indices in ``[0, 4**order)``.
    """
    if order < 1 or 2 * order > 64:
        raise ValueError("order must satisfy 1 <= order <= 32")
    x = np.array(x, dtype=np.uint64, copy=True)
    y = np.array(y, dtype=np.uint64, copy=True)
    if x.shape != y.shape:
        raise ValueError("x and y must have matching shapes")
    side = np.uint64(1 << order)
    if (x >= side).any() or (y >= side).any():
        raise ValueError("coordinates out of range for the given order")

    d = np.zeros_like(x, dtype=np.uint64)
    s = np.uint64(1 << (order - 1))
    one = np.uint64(1)
    zero = np.uint64(0)
    while s > 0:
        rx = np.where((x & s) > 0, one, zero)
        ry = np.where((y & s) > 0, one, zero)
        d += s * s * ((np.uint64(3) * rx) ^ ry)
        # Rotate the quadrant so the curve stays continuous.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - one - x, x)
        y_f = np.where(flip, s - one - y, y)
        x, y = np.where(swap, y_f, x_f), np.where(swap, x_f, y_f)
        s >>= one
    return d


def hilbert_index(cells: np.ndarray, order: int = DEFAULT_ORDER) -> np.ndarray:
    """Hilbert curve index of grid cells in arbitrary dimension.

    Uses Skilling's "transpose" algorithm (AIP Conf. Proc. 707, 2004):
    the axes are converted in place to the transposed Hilbert
    representation, then the bits are interleaved into a single index.

    Parameters
    ----------
    cells:
        ``(n, d)`` integer array with values in ``[0, 2**order)``.
    order:
        Bits per axis; ``order * d`` must be at most 64 so the result
        fits a ``uint64``.

    Returns
    -------
    ``uint64`` array of shape ``(n,)``.
    """
    cells = np.array(cells, dtype=np.uint64, copy=True)
    if cells.ndim != 2:
        raise ValueError("cells must be an (n, d) array")
    n, dim = cells.shape
    if dim < 1:
        raise ValueError("dimension must be >= 1")
    if order < 1 or order * dim > 64:
        raise ValueError("order * dim must be at most 64")
    side = np.uint64(1 << order)
    if (cells >= side).any():
        raise ValueError("coordinates out of range for the given order")
    if dim == 1:
        return cells[:, 0].copy()

    x = cells.T.copy()  # (dim, n): axis-major for the in-place sweeps
    one = np.uint64(1)

    # --- Inverse undo: map Gray-code positions to transposed Hilbert ---
    m = np.uint64(1 << (order - 1))
    q = m
    while q > one:
        p = q - one
        for i in range(dim):
            invert = (x[i] & q) > 0
            # invert low bits of axis 0 where bit set
            x[0] = np.where(invert, x[0] ^ p, x[0])
            # exchange low bits of axis i and axis 0 where bit clear
            t = (x[0] ^ x[i]) & p
            t = np.where(invert, np.uint64(0), t)
            x[0] ^= t
            x[i] ^= t
        q >>= one

    # --- Gray encode ---
    for i in range(1, dim):
        x[i] ^= x[i - 1]
    t = np.zeros(n, dtype=np.uint64)
    q = m
    while q > one:
        t = np.where((x[dim - 1] & q) > 0, t ^ (q - one), t)
        q >>= one
    for i in range(dim):
        x[i] ^= t

    # --- Interleave the transposed bits into a single index ---
    # Bit b of axis i contributes to result bit (b * dim + (dim-1-i)).
    result = np.zeros(n, dtype=np.uint64)
    for b in range(order):
        for i in range(dim):
            bit = (x[i] >> np.uint64(b)) & one
            shift = np.uint64(b * dim + (dim - 1 - i))
            result |= bit << shift
    return result


def morton_index(cells: np.ndarray, order: int = DEFAULT_ORDER) -> np.ndarray:
    """Z-order (Morton) curve index: plain bit interleaving.

    Kamel & Faloutsos compared Hilbert ordering against Z-order when
    proposing Hilbert packing; this provides the baseline.  Unlike the
    Hilbert curve, consecutive Z-order cells can be far apart in space
    (the curve "jumps"), which is exactly why Hilbert packs better.

    Parameters mirror :func:`hilbert_index`; ``order * d`` must be at
    most 64.
    """
    cells = np.asarray(cells, dtype=np.uint64)
    if cells.ndim != 2:
        raise ValueError("cells must be an (n, d) array")
    n, dim = cells.shape
    if dim < 1:
        raise ValueError("dimension must be >= 1")
    if order < 1 or order * dim > 64:
        raise ValueError("order * dim must be at most 64")
    side = np.uint64(1 << order)
    if (cells >= side).any():
        raise ValueError("coordinates out of range for the given order")
    one = np.uint64(1)
    result = np.zeros(n, dtype=np.uint64)
    for b in range(order):
        for i in range(dim):
            bit = (cells[:, i] >> np.uint64(b)) & one
            shift = np.uint64(b * dim + (dim - 1 - i))
            result |= bit << shift
    return result


def morton_sort_key(points: np.ndarray, order: int = DEFAULT_ORDER) -> np.ndarray:
    """Z-order curve index of unit-cube points (any dimension)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    return morton_index(quantize(points, order=order), order=order)


def hilbert_sort_key(points: np.ndarray, order: int = DEFAULT_ORDER) -> np.ndarray:
    """Hilbert curve index of unit-cube points (any dimension).

    Quantises ``points`` onto a ``2**order`` grid and returns curve
    indices; in 2-D the specialised algorithm is used (it is both the
    paper-relevant path and the faster one).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be an (n, d) array")
    cells = quantize(points, order=order)
    if points.shape[1] == 2:
        return hilbert_index_2d(cells[:, 0], cells[:, 1], order=order)
    return hilbert_index(cells, order=order)
