"""Hilbert space-filling curve indices (2-D fast path + d-dimensional)."""

from __future__ import annotations

from .curve import (
    DEFAULT_ORDER,
    hilbert_index,
    hilbert_index_2d,
    hilbert_sort_key,
    morton_index,
    morton_sort_key,
    quantize,
)

__all__ = [
    "DEFAULT_ORDER",
    "hilbert_index",
    "hilbert_index_2d",
    "hilbert_sort_key",
    "morton_index",
    "morton_sort_key",
    "quantize",
]
