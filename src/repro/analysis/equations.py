"""The paper-equation map: the single source of truth for ``Eq. N``.

Every ``Eq. N`` reference in a source docstring (rule RL006) and in
``docs/MODEL.md`` (checked by ``tests/analysis/test_equations.py``)
must name a key of :data:`PAPER_EQUATIONS`.  This keeps prose and code
from drifting into citing equations the paper does not have — the
buffering analyses this reproduction builds on live or die by exactly
these formulas.
"""

from __future__ import annotations

__all__ = ["PAPER_EQUATIONS", "known_equation"]

PAPER_EQUATIONS: dict[int, str] = {
    1: "EPT(0,0) = Σ A_ij — expected node accesses per uniform point query",
    2: "EPT(qx,qy) = A + qx·Ly + qy·Lx + M·qx·qy — Kamel–Faloutsos region cost",
    3: "A^Q_ij = area(R' ∩ U') / area(U') — boundary-corrected access probability",
    4: "A^Q_ij = (1/n) Σ_k y_ijk — data-driven access probability",
    5: "D(N) = M − Σ_j (1−p_j)^N — expected distinct nodes touched in N queries",
    6: "ED = Σ_j p_j (1−p_j)^{N*} — steady-state disk accesses per query",
}
"""Equation number → statement, following the paper's §3 numbering."""


def known_equation(number: int) -> bool:
    """True if the paper defines equation ``number``."""
    return number in PAPER_EQUATIONS
