"""RL003 — purity of geometry and packing kernels.

The geometry and packing layers are the numerical foundation of the
reproduction: the model's probability sums are only reproducible if
the kernels beneath them never mutate their inputs or reach for module
state.  (``RectArray`` documents this contract: "all bulk operations
return fresh arrays and never mutate ``self``".)  This rule enforces
it structurally: inside ``repro/geometry`` and ``repro/packing``,
functions may not

* assign to a subscript or attribute of a parameter
  (``param[i] = ...``, ``param.x = ...``),
* call an in-place mutator method on a parameter
  (``param.sort()``, ``param.fill(0)``, ...),
* use ``global`` or ``nonlocal`` declarations.

A parameter that is re-bound by a plain assignment first (the standard
"copy then own" idiom, e.g. ``lo = np.array(lo, copy=True)``) is
considered owned by the function and exempt.  ``self``/``cls`` are
exempt: constructors initialise their own instance.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry

__all__ = ["KernelPurityRule"]

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "clear",
        "extend",
        "fill",
        "insert",
        "itemset",
        "partition",
        "pop",
        "popitem",
        "put",
        "remove",
        "resize",
        "reverse",
        "setdefault",
        "setfield",
        "setflags",
        "sort",
        "update",
    }
)


def _base_name(node: ast.expr) -> str | None:
    """The root ``Name`` of a subscript/attribute chain, if any."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _own_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """All descendants of ``func`` excluding nested function/class bodies."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _rebound_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter names the function re-binds with a plain assignment."""
    rebound: set[str] = set()
    for node in _own_nodes(func):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = [node.target]
        elif isinstance(node, ast.NamedExpr):
            targets = [node.target]
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            targets = [node.optional_vars]
        for target in targets:
            _collect_plain_names(target, rebound)
    return rebound


def _collect_plain_names(target: ast.expr, out: set[str]) -> None:
    """Names bound by ``target`` — *not* names inside subscript stores."""
    if isinstance(target, ast.Name):
        out.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _collect_plain_names(element, out)
    elif isinstance(target, ast.Starred):
        _collect_plain_names(target.value, out)


@registry.register
class KernelPurityRule(Rule):
    """Flag parameter mutation and global state in pure kernels."""

    id = "RL003"
    name = "kernel-purity"
    description = (
        "geometry/packing kernels must not mutate parameters or module "
        "globals; return fresh arrays instead"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        if not ctx.in_any(ctx.config.kernel_paths):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: ModuleContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Violation]:
        args = func.args
        params = {
            a.arg
            for a in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            )
        }
        params -= {"self", "cls"}
        params -= _rebound_names(func)

        for node in _own_nodes(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                keyword = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield ctx.violation(
                    node,
                    self.id,
                    f"`{keyword}` in kernel `{func.name}`; kernels must not "
                    "touch enclosing state",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        name = _base_name(target)
                        if name in params:
                            yield ctx.violation(
                                node,
                                self.id,
                                f"kernel `{func.name}` writes into parameter "
                                f"`{name}`; return a fresh array instead",
                            )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                value = node.func.value
                if (
                    isinstance(value, ast.Name)
                    and value.id in params
                    and node.func.attr in _MUTATOR_METHODS
                ):
                    yield ctx.violation(
                        node,
                        self.id,
                        f"kernel `{func.name}` calls in-place "
                        f"`{value.id}.{node.func.attr}()` on a parameter",
                    )
