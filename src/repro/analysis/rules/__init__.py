"""Rule modules for reprolint.

Importing this package registers every rule with
:data:`repro.analysis.core.registry`; add new rules by dropping a
module here and importing it below.  RL001–RL007 are single-module
rules; RL008–RL012 are whole-program rules built on
:mod:`repro.analysis.graph`.
"""

from __future__ import annotations

from .rl001_float_eq import FloatEqualityRule
from .rl002_prob_stability import ProbabilityStabilityRule
from .rl003_purity import KernelPurityRule
from .rl004_experiment_meta import ExperimentMetaRule
from .rl005_all_hygiene import AllHygieneRule
from .rl006_equation_refs import EquationReferenceRule
from .rl007_determinism import DeterminismRule
from .rl008_layering import LayeringRule
from .rl009_concurrency import ConcurrencySafetyRule
from .rl010_aliasing import ArrayAliasingRule
from .rl011_dead_exports import DeadExportRule
from .rl012_resources import ResourceHygieneRule

__all__ = [
    "AllHygieneRule",
    "ArrayAliasingRule",
    "ConcurrencySafetyRule",
    "DeadExportRule",
    "DeterminismRule",
    "EquationReferenceRule",
    "ExperimentMetaRule",
    "FloatEqualityRule",
    "KernelPurityRule",
    "LayeringRule",
    "ProbabilityStabilityRule",
    "ResourceHygieneRule",
]
