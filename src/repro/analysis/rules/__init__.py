"""Rule modules for reprolint.

Importing this package registers every rule with
:data:`repro.analysis.core.registry`; add new rules by dropping a
module here and importing it below.
"""

from __future__ import annotations

from .rl001_float_eq import FloatEqualityRule
from .rl002_prob_stability import ProbabilityStabilityRule
from .rl003_purity import KernelPurityRule
from .rl004_experiment_meta import ExperimentMetaRule
from .rl005_all_hygiene import AllHygieneRule
from .rl006_equation_refs import EquationReferenceRule
from .rl007_determinism import DeterminismRule

__all__ = [
    "AllHygieneRule",
    "DeterminismRule",
    "EquationReferenceRule",
    "ExperimentMetaRule",
    "FloatEqualityRule",
    "KernelPurityRule",
    "ProbabilityStabilityRule",
]
