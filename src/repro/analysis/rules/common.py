"""Shared AST predicates used by several reprolint rules."""

from __future__ import annotations

import ast

__all__ = [
    "attribute_chain",
    "is_float_constant",
    "is_one_minus",
    "module_bindings",
    "public_defs",
    "string_list",
]


def is_float_constant(node: ast.expr) -> bool:
    """True for a float literal, including a negated one (``-1.0``)."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def is_one_minus(node: ast.expr) -> bool:
    """True for ``1 - x`` / ``1.0 - x`` expressions (probability misses)."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Sub)
        and isinstance(node.left, ast.Constant)
        and not isinstance(node.left.value, bool)
        and node.left.value in (1, 1.0)
    )


def attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def string_list(node: ast.expr) -> list[tuple[str, int]] | None:
    """Elements of a list/tuple of string literals with their lines.

    Returns ``None`` when the value is not a literal sequence of
    strings (the caller then reports it as un-analyzable).
    """
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: list[tuple[str, int]] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        out.append((element.value, element.lineno))
    return out


def _bind_target(target: ast.expr, names: set[str]) -> None:
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_target(element, names)
    elif isinstance(target, ast.Starred):
        _bind_target(target.value, names)


def module_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module level, and whether a ``*`` import occurs.

    Descends into module-level ``if``/``try`` blocks (the usual homes
    of conditional imports) but not into function or class bodies.
    """
    names: set[str] = set()
    star_import = False
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                _bind_target(target, names)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            _bind_target(stmt.target, names)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                names.add(alias.asname or alias.name.partition(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    star_import = True
                else:
                    names.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)
        elif isinstance(stmt, (ast.With, ast.For, ast.While)):
            stack.extend(stmt.body)
    return names, star_import


def public_defs(
    tree: ast.Module,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef]:
    """Top-level public function/class definitions of a module."""
    return [
        stmt
        for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        and not stmt.name.startswith("_")
    ]
