"""RL005 — ``__all__`` hygiene.

The package's public surface is what the README and examples import;
a name listed in ``__all__`` that does not exist breaks
``from repro.x import *`` and documentation tooling, while a public
def/class missing from ``__all__`` silently drops out of the API.
Every source module with public definitions must declare ``__all__``
as a literal list/tuple of strings, each naming a real module-level
binding, and every public top-level function/class must be exported.

Public *assignments* (constants, registries) may stay unexported —
only defs and classes are required entries.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry
from .common import module_bindings, public_defs, string_list

__all__ = ["AllHygieneRule"]


def _find_dunder_all(tree: ast.Module) -> ast.Assign | None:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return stmt
    return None


@registry.register
class AllHygieneRule(Rule):
    """Flag missing, stale, or incomplete ``__all__`` declarations."""

    id = "RL005"
    name = "all-hygiene"
    description = (
        "__all__ must exist (when public defs do), name only real "
        "bindings, and cover every public def/class"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        tree = ctx.tree
        dunder_all = _find_dunder_all(tree)
        publics = public_defs(tree)

        if dunder_all is None:
            if publics:
                yield ctx.violation(
                    publics[0],
                    self.id,
                    f"module defines public `{publics[0].name}` but no "
                    "__all__",
                )
            return

        exported = string_list(dunder_all.value)
        if exported is None:
            yield ctx.violation(
                dunder_all,
                self.id,
                "__all__ must be a literal list/tuple of strings",
            )
            return

        names = [name for name, _ in exported]
        duplicates = {name for name in names if names.count(name) > 1}
        for name in sorted(duplicates):
            yield ctx.violation(
                dunder_all, self.id, f"__all__ lists {name!r} more than once"
            )

        bound, star_import = module_bindings(tree)
        if not star_import:
            for name, line in exported:
                if name not in bound:
                    yield Violation(
                        path=ctx.display_path,
                        line=line,
                        col=1,
                        rule_id=self.id,
                        message=f"__all__ exports {name!r} which is not "
                        "defined in the module",
                    )

        for definition in publics:
            if definition.name not in names:
                yield ctx.violation(
                    definition,
                    self.id,
                    f"public `{definition.name}` is missing from __all__",
                )
