"""RL002 — probability-domain numerical stability.

``D(N) = M − Σ (1−p)^N`` (Eq. 5) and ``ED = Σ p (1−p)^{N*}`` (Eq. 6)
involve miss probabilities ``(1−p)`` raised to astronomically large
``N`` (``N*`` is found by search up to ``2**62``).  Evaluating them as
written loses all precision for ``p`` below ~1e-16: ``1 - p`` rounds
to 1.0 and the model silently reports a full buffer miss rate of zero.
The hot paths therefore compute ``exp(N · log1p(−p))``; this rule
keeps the unstable spellings from creeping back in.

Flagged patterns:

* ``log(1 - p)`` — rewrite as ``log1p(-p)``;
* ``(1 - p) ** n`` with a non-trivial exponent — rewrite as
  ``exp(n * log1p(-p))``;
* ``power(1 - p, n)`` — same rewrite.

Small constant integer exponents (squares, cubes) are exact and
exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry
from .common import is_one_minus

__all__ = ["ProbabilityStabilityRule"]

_MAX_EXACT_EXPONENT = 4


def _small_constant_exponent(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and abs(node.value) <= _MAX_EXACT_EXPONENT
    )


@registry.register
class ProbabilityStabilityRule(Rule):
    """Flag numerically unstable spellings of miss-probability math."""

    id = "RL002"
    name = "probability-stability"
    description = (
        "no raw log(1 - p) or (1 - p)**n in probability code; "
        "use log1p(-p) / exp(n * log1p(-p))"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func_name = self._call_name(node)
                if (
                    func_name == "log"
                    and len(node.args) >= 1
                    and is_one_minus(node.args[0])
                ):
                    yield ctx.violation(
                        node,
                        self.id,
                        "log(1 - p) loses precision for small p; "
                        "use log1p(-p)",
                    )
                elif (
                    func_name == "power"
                    and len(node.args) >= 2
                    and is_one_minus(node.args[0])
                    and not _small_constant_exponent(node.args[1])
                ):
                    yield ctx.violation(
                        node,
                        self.id,
                        "power(1 - p, n) underflows for small p; "
                        "use exp(n * log1p(-p))",
                    )
            elif (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Pow)
                and is_one_minus(node.left)
                and not _small_constant_exponent(node.right)
            ):
                yield ctx.violation(
                    node,
                    self.id,
                    "(1 - p) ** n underflows for small p; "
                    "use exp(n * log1p(-p))",
                )

    @staticmethod
    def _call_name(node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        if isinstance(node.func, ast.Name):
            return node.func.id
        return None
