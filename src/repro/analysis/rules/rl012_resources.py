"""RL012 — resource hygiene.

Executors, file handles, and memory maps hold OS resources (threads,
descriptors, address space).  The sweep engine creates them in hot
loops, so a leak is not cosmetic: a ``ThreadPoolExecutor`` that is
never shut down keeps its workers alive for the life of the process,
and an unclosed ``mmap`` pins its file.

Every construction of such a resource must be one of:

* context-managed (``with open(p) as f: …``);
* bound to a name that is explicitly released in the same scope
  (``pool.shutdown()`` / ``handle.close()`` — typically in a
  ``finally`` block) or context-managed later;
* stored on an attribute that some method of the module releases
  (``self._pool = …`` with a ``self._pool.shutdown()`` elsewhere);
* returned to the caller (ownership transfer).

Anything else — a bare ``open(p).read()``, an executor bound and
forgotten — is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry

__all__ = ["ResourceHygieneRule"]

_EXECUTORS = frozenset({"ThreadPoolExecutor", "ProcessPoolExecutor"})
_RELEASE = frozenset({"close", "shutdown"})


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _resource_kind(call: ast.Call) -> str | None:
    name = _callee_name(call)
    if name in _EXECUTORS:
        return "executor"
    if name == "open":
        return "file handle"
    if name == "mmap":
        return "mmap"
    return None


def _value_calls(expr: ast.expr) -> Iterator[ast.Call]:
    """Calls in *result position* of an assigned expression.

    ``pool = ThreadPoolExecutor(...) if workers > 1 else None`` binds
    the executor to ``pool`` just as surely as a direct assignment, so
    conditional and boolean expressions are transparent; calls in
    argument position are not (``x = f(open(p))`` does not bind the
    handle to ``x``).
    """
    if isinstance(expr, ast.Call):
        yield expr
    elif isinstance(expr, ast.IfExp):
        yield from _value_calls(expr.body)
        yield from _value_calls(expr.orelse)
    elif isinstance(expr, ast.BoolOp):
        for value in expr.values:
            yield from _value_calls(value)
    elif isinstance(expr, ast.NamedExpr):
        yield from _value_calls(expr.value)


def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Every node of a scope, not descending into nested scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


@registry.register
class ResourceHygieneRule(Rule):
    """Flag resources that are neither context-managed nor released."""

    id = "RL012"
    name = "resource-hygiene"
    description = (
        "executors, file handles, and mmaps must be context-managed, "
        "explicitly released, or returned to the caller"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        released_attrs = self._released_attrs(ctx.tree)
        yield from self._check_scope(ctx, ctx.tree, released_attrs)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, node, released_attrs)

    @staticmethod
    def _released_attrs(tree: ast.Module) -> set[str]:
        """Attribute names released anywhere in the module
        (``self._pool.shutdown()`` → ``_pool``)."""
        out: set[str] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RELEASE
                and isinstance(node.func.value, ast.Attribute)
            ):
                out.add(node.func.value.attr)
        return out

    def _check_scope(
        self,
        ctx: ModuleContext,
        scope: ast.AST,
        released_attrs: set[str],
    ) -> Iterator[Violation]:
        nodes = list(_own_nodes(scope))

        in_with: set[int] = set()
        in_return: set[int] = set()
        assigned_to: dict[int, ast.expr] = {}
        released_names: set[str] = set()
        transferred_names: set[str] = set()

        for node in nodes:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        in_with.add(id(sub))
                    if isinstance(item.context_expr, ast.Name):
                        released_names.add(item.context_expr.id)
            elif isinstance(node, ast.Return) and node.value is not None:
                # only result-position calls transfer ownership:
                # `return open(p)` does, `return open(p).read()` leaks
                for call in _value_calls(node.value):
                    in_return.add(id(call))
                if isinstance(node.value, ast.Name):
                    transferred_names.add(node.value.id)
            elif isinstance(node, ast.Assign):
                for call in _value_calls(node.value):
                    for target in node.targets:
                        assigned_to[id(call)] = target
            elif isinstance(node, ast.NamedExpr):
                for call in _value_calls(node.value):
                    assigned_to[id(call)] = node.target
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RELEASE
                and isinstance(node.func.value, ast.Name)
            ):
                released_names.add(node.func.value.id)

        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            kind = _resource_kind(node)
            if kind is None or id(node) in in_with or id(node) in in_return:
                continue
            target = assigned_to.get(id(node))
            if isinstance(target, ast.Name):
                if (
                    target.id in released_names
                    or target.id in transferred_names
                ):
                    continue
                yield ctx.violation(
                    node,
                    self.id,
                    f"{kind} bound to `{target.id}` is never "
                    "context-managed, released, or returned in this "
                    "scope",
                )
            elif isinstance(target, ast.Attribute):
                if target.attr in released_attrs:
                    continue
                yield ctx.violation(
                    node,
                    self.id,
                    f"{kind} stored on `{target.attr}` but no method "
                    f"releases it (`.{target.attr}.close()` / "
                    f"`.shutdown()` not found in this module)",
                )
            else:
                yield ctx.violation(
                    node,
                    self.id,
                    f"{kind} is created without a `with` block and "
                    "never released (bare expression or argument)",
                )
