"""RL007 — determinism: no bare excepts, no unseeded randomness.

Every experiment in this repository is reproducible because every
random stream is seeded (``DATASET_SEEDS`` pins the data sets; the
simulator and buffer policies take explicit ``rng`` arguments with
seeded defaults).  Unseeded randomness makes figures unrepeatable and
turns model-vs-simulation comparisons into noise; bare ``except:``
clauses swallow the very errors (``KeyboardInterrupt`` included) that
would reveal a broken run.  This rule flags

* bare ``except:`` handlers,
* ``default_rng()`` called without a seed,
* calls into the legacy global NumPy RNG (``np.random.rand`` & co.),
* calls through the stdlib ``random`` module (``random.random()``,
  ``random.seed()``, ...) — except ``random.Random(seed)`` instances.

Modules listed in ``rng-helper-paths`` (sanctioned RNG factories) are
exempt from the seeding checks.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry
from .common import attribute_chain

__all__ = ["DeterminismRule"]

_NP_RANDOM_ALLOWED = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@registry.register
class DeterminismRule(Rule):
    """Flag bare excepts and unseeded random-number generation."""

    id = "RL007"
    name = "determinism"
    description = (
        "no bare except; no unseeded random/np.random outside the "
        "sanctioned RNG helpers"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        rng_exempt = ctx.in_any(ctx.config.rng_helper_paths)
        numpy_aliases, random_aliases, bare_default_rng = self._imports(ctx.tree)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.violation(
                    node,
                    self.id,
                    "bare `except:` swallows every error (including "
                    "KeyboardInterrupt); catch a specific exception",
                )
            elif isinstance(node, ast.Call) and not rng_exempt:
                yield from self._check_call(
                    ctx, node, numpy_aliases, random_aliases, bare_default_rng
                )

    @staticmethod
    def _imports(tree: ast.Module) -> tuple[set[str], set[str], set[str]]:
        """Local names bound to numpy, stdlib random, and default_rng."""
        numpy_aliases: set[str] = set()
        random_aliases: set[str] = set()
        bare_default_rng: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "random":
                        random_aliases.add(alias.asname or "random")
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("numpy.random", "numpy.random._generator"):
                    for alias in node.names:
                        if alias.name == "default_rng":
                            bare_default_rng.add(alias.asname or alias.name)
        return numpy_aliases, random_aliases, bare_default_rng

    def _check_call(
        self,
        ctx: ModuleContext,
        node: ast.Call,
        numpy_aliases: set[str],
        random_aliases: set[str],
        bare_default_rng: set[str],
    ) -> Iterator[Violation]:
        func = node.func
        if isinstance(func, ast.Name) and func.id in bare_default_rng:
            if not node.args and not node.keywords:
                yield ctx.violation(
                    node,
                    self.id,
                    "default_rng() without a seed is irreproducible; pass "
                    "an explicit seed or Generator",
                )
            return

        chain = attribute_chain(func)
        if chain is None:
            return
        if len(chain) == 3 and chain[0] in numpy_aliases and chain[1] == "random":
            attr = chain[2]
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    yield ctx.violation(
                        node,
                        self.id,
                        "default_rng() without a seed is irreproducible; "
                        "pass an explicit seed or Generator",
                    )
            elif attr not in _NP_RANDOM_ALLOWED:
                yield ctx.violation(
                    node,
                    self.id,
                    f"np.random.{attr}() uses the unseeded global RNG; use "
                    "a seeded np.random.default_rng(seed) Generator",
                )
        elif len(chain) == 2 and chain[0] in random_aliases:
            attr = chain[1]
            if attr == "Random" and (node.args or node.keywords):
                return  # random.Random(seed) is explicitly seeded
            yield ctx.violation(
                node,
                self.id,
                f"random.{attr}() draws from the process-global stdlib RNG; "
                "use a seeded generator instead",
            )
