"""RL008 — package layering.

The repository's subpackages form a documented DAG (see
``docs/ARCHITECTURE.md``): geometry and the other foundations at the
bottom, packing/rtree above them, model/simulation/accel above those,
experiments on top, with ``obs`` and ``analysis`` as dependency-free
leaves.  An import that cuts against that order — ``geometry``
reaching up into ``model``, say — couples layers that the paper's
pipeline keeps separate and eventually produces import cycles.

This rule checks every *module-level* import against the configured
DAG (``package-dag`` in ``[tool.repro.analysis]``) and reports any
import cycle among project modules.  Function-level (deferred)
imports are exempt: they do not execute at import time and are the
sanctioned escape hatch for tooling that must reach across layers.
"""

from __future__ import annotations

from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry
from ..graph import ImportRecord, find_cycles

__all__ = ["LayeringRule", "parse_dag"]


def parse_dag(entries: tuple[str, ...]) -> dict[str, frozenset[str]]:
    """Parse ``"pkg -> dep dep ..."`` config entries into an edge map.

    A package listed with no right-hand side (``"obs ->"``) is a leaf:
    it may import nothing from its sibling packages.
    """
    dag: dict[str, frozenset[str]] = {}
    for entry in entries:
        head, arrow, tail = entry.partition("->")
        if not arrow:
            raise ValueError(
                f"package-dag entry missing '->': {entry!r}"
            )
        dag[head.strip()] = frozenset(tail.split())
    return dag


def _package_of(module: str, root: str) -> str | None:
    """The immediate subpackage of ``root`` holding ``module``."""
    prefix = f"{root}."
    if not module.startswith(prefix):
        return None
    return module[len(prefix) :].partition(".")[0]


@registry.register
class LayeringRule(Rule):
    """Enforce the canonical package DAG and reject import cycles."""

    id = "RL008"
    name = "layering"
    description = (
        "module-level imports must follow the canonical package DAG "
        "(docs/ARCHITECTURE.md) and form no cycles"
    )
    requires_project = True

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        project = ctx.project
        module = ctx.module_name
        if project is None or module is None:
            return
        root = ctx.config.dag_root
        dag = parse_dag(ctx.config.package_dag)
        yield from self._check_edges(ctx, module, root, dag)
        yield from self._check_cycles(ctx, module)

    def _check_edges(
        self,
        ctx: ModuleContext,
        module: str,
        root: str,
        dag: dict[str, frozenset[str]],
    ) -> Iterator[Violation]:
        package = _package_of(module, root)
        if package is None:
            # the facade (`repro/__init__.py`) sits above every layer
            # and may aggregate freely; modules outside the root are
            # not layered at all.
            return
        records = [
            r
            for r in ctx.project.imports.imports_of(module)
            if r.toplevel
        ]
        if package not in dag:
            if records:
                yield _record(
                    ctx,
                    records[0],
                    self.id,
                    f"package `{package}` is not in the canonical DAG "
                    "(package-dag in pyproject.toml / "
                    "docs/ARCHITECTURE.md)",
                )
            return
        allowed = dag[package]
        for record in records:
            target_pkg = _package_of(record.target, root)
            if target_pkg is None:
                yield _record(
                    ctx,
                    record,
                    self.id,
                    f"`{package}` must not import the top-level "
                    f"`{root}` facade at module level",
                )
                continue
            if target_pkg == package or target_pkg in allowed:
                continue
            yield _record(
                ctx,
                record,
                self.id,
                f"layering: `{package}` may not import "
                f"`{target_pkg}` (allowed: "
                f"{', '.join(sorted(allowed)) or 'nothing'}); defer "
                "the import into a function if it is tooling-only",
            )

    def _check_cycles(
        self, ctx: ModuleContext, module: str
    ) -> Iterator[Violation]:
        """Report each cycle once, on its first member (sorted order)."""
        for cycle in find_cycles(ctx.project.imports.edges()):
            if module != cycle[0]:
                continue
            members = set(cycle)
            line = 1
            for record in ctx.project.imports.imports_of(module):
                if record.toplevel and record.target in members:
                    line = record.lineno
                    break
            yield Violation(
                path=ctx.display_path,
                line=line,
                col=1,
                rule_id=self.id,
                message=(
                    "import cycle: " + " -> ".join(cycle + [cycle[0]])
                ),
            )


def _record(
    ctx: ModuleContext,
    record: ImportRecord,
    rule_id: str,
    message: str,
) -> Violation:
    """A violation anchored at an import record's line."""
    return Violation(
        path=ctx.display_path,
        line=record.lineno,
        col=1,
        rule_id=rule_id,
        message=message,
    )
