"""RL006 — docstring ``Eq. N`` references must exist in the paper.

The code cites the paper's equations throughout its docstrings
(``D(N) = M − Σ (1−p)^N`` is "Eq. 5", ``ED`` is "Eq. 6", ...).  A
citation of an equation the paper does not define — a typo, or a
leftover from an edit — sends readers chasing nothing.  Every
``Eq. N`` / ``Eqs. N–M`` reference in a module, class, or function
docstring must resolve against :data:`repro.analysis.equations
.PAPER_EQUATIONS`, the same map ``docs/MODEL.md`` is checked against.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry
from ..equations import PAPER_EQUATIONS

__all__ = ["EquationReferenceRule", "iter_equation_numbers"]

_EQ_REF = re.compile(r"\bEqs?\.\s*(\d+)(?:\s*[-–—]\s*(\d+))?")


def iter_equation_numbers(text: str) -> Iterator[int]:
    """All equation numbers referenced in ``text`` (ranges expanded)."""
    for match in _EQ_REF.finditer(text):
        first = int(match.group(1))
        last = int(match.group(2)) if match.group(2) else first
        if last < first:  # nonsense range: report both endpoints
            yield first
            yield last
            continue
        yield from range(first, last + 1)


@registry.register
class EquationReferenceRule(Rule):
    """Flag docstring references to unknown paper equations."""

    id = "RL006"
    name = "equation-references"
    description = (
        "docstring Eq. N references must appear in the paper-equation "
        "map (repro.analysis.equations)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node,
                (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                continue
            docstring = ast.get_docstring(node, clean=False)
            if not docstring:
                continue
            anchor = node.body[0] if isinstance(node, ast.Module) else node
            for number in iter_equation_numbers(docstring):
                if number not in PAPER_EQUATIONS:
                    known = ", ".join(str(n) for n in sorted(PAPER_EQUATIONS))
                    yield ctx.violation(
                        anchor,
                        self.id,
                        f"docstring cites Eq. {number}, which is not in the "
                        f"paper-equation map (known: {known})",
                    )
