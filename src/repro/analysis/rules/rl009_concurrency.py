"""RL009 — concurrency safety of executor-reachable functions.

The sweep engine fans work out over ``ThreadPoolExecutor`` (and the
roadmap adds process sharding).  Any function reachable from an
``executor.submit``/``executor.map`` site may run on a worker thread,
so it must not write shared mutable state — module-level bindings or
closure-captured variables — without synchronization.

Detected hazards, for every project function reachable from a submit
site (via the approximate call graph):

* assignment to a ``global``/``nonlocal``-declared name;
* element writes into a captured or module-level container
  (``shared[i] = x``) — *slice* writes are exempt, because handing
  each worker a disjoint slice of a preallocated array is the
  sanctioned sharding idiom (it is how the stack-distance sweep
  partitions its output);
* mutator-method calls (``.append``, ``.update``, …) on captured or
  module-level containers.

A mutation inside a ``with`` block whose context expression mentions
a lock (any name containing ``lock`` or ``mutex``) is considered
synchronized.  Instance-attribute writes are left to the dynamic
sanitizer (``repro.analysis.sanitize``), which sees real objects and
real threads.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry
from ..graph import CallGraph, FunctionNode

__all__ = ["ConcurrencySafetyRule"]

_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "insert",
        "setdefault",
        "sort",
        "reverse",
    }
)
_LOCK_HINTS = ("lock", "mutex")


def _mentions_lock(expr: ast.expr) -> bool:
    """Does the with-context expression name a lock?"""
    for node in ast.walk(expr):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and any(
            hint in name.lower() for hint in _LOCK_HINTS
        ):
            return True
    return False


def _module_data_names(tree: ast.Module) -> set[str]:
    """Names bound to *data* at module level (not defs or imports)."""
    names: set[str] = set()
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.update(_name_targets(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            names.update(_name_targets(stmt.target))
        elif isinstance(stmt, (ast.If, ast.Try)):
            for block in _sub_blocks(stmt):
                stack.extend(block)
    names.discard("__all__")
    return names


def _sub_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
    if isinstance(stmt, ast.If):
        return [stmt.body, stmt.orelse]
    if isinstance(stmt, ast.Try):
        blocks = [stmt.body, stmt.orelse, stmt.finalbody]
        blocks.extend(handler.body for handler in stmt.handlers)
        return blocks
    return []


def _name_targets(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in target.elts:
            out.extend(_name_targets(element))
        return out
    if isinstance(target, ast.Starred):
        return _name_targets(target.value)
    return []


def _scope_bindings(fn: ast.AST) -> set[str]:
    """Names bound locally in a function scope (params, assignments,
    loop targets, …) — *excluding* nested function/class bodies."""
    bound: set[str] = set()
    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = fn.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            bound.add(arg.arg)
    for child in _own_nodes(fn):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                bound.update(_name_targets(target))
        elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
            bound.update(_name_targets(child.target))
        elif isinstance(child, ast.NamedExpr):
            bound.update(_name_targets(child.target))
        elif isinstance(child, ast.For):
            bound.update(_name_targets(child.target))
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                if item.optional_vars is not None:
                    bound.update(_name_targets(item.optional_vars))
        elif isinstance(child, ast.comprehension):
            bound.update(_name_targets(child.target))
        elif isinstance(child, ast.ExceptHandler) and child.name:
            bound.add(child.name)
        elif isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            bound.add(child.name)
        elif isinstance(child, ast.Import):
            for alias in child.names:
                bound.add(alias.asname or alias.name.partition(".")[0])
        elif isinstance(child, ast.ImportFrom):
            for alias in child.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
    return bound


def _declared(fn: ast.AST) -> set[str]:
    """Names declared ``global`` or ``nonlocal`` in this scope."""
    out: set[str] = set()
    for child in _own_nodes(fn):
        if isinstance(child, (ast.Global, ast.Nonlocal)):
            out.update(child.names)
    return out


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Every node of a scope, not descending into nested scopes."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


@registry.register
class ConcurrencySafetyRule(Rule):
    """Flag unsynchronized shared-state writes in worker-reachable code."""

    id = "RL009"
    name = "concurrency-safety"
    description = (
        "functions reachable from executor submit sites must not "
        "write module-level or closure-captured state without a lock"
    )
    requires_project = True

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        project = ctx.project
        module = ctx.module_name
        if project is None or module is None:
            return
        callgraph = project.callgraph
        roots = callgraph.submit_roots()
        if not roots:
            return
        reachable = callgraph.reachable(roots)
        module_data = _module_data_names(ctx.tree)
        for key in sorted(reachable):
            fn = callgraph.functions[key]
            if fn.module != module:
                continue
            yield from self._check_worker(ctx, fn, callgraph, module_data)

    def _check_worker(
        self,
        ctx: ModuleContext,
        fn: FunctionNode,
        callgraph: CallGraph,
        module_data: set[str],
    ) -> Iterator[Violation]:
        declared = _declared(fn.node)
        local = _scope_bindings(fn.node) - declared
        captured = self._captured_names(fn, callgraph)
        # containers whose element writes / mutator calls are shared:
        shared = (module_data | captured | declared) - local
        seen: set[tuple[int, str]] = set()

        def emit(
            node: ast.AST, name: str, how: str
        ) -> Iterator[Violation]:
            mark = (getattr(node, "lineno", 1), name)
            if mark in seen:
                return
            seen.add(mark)
            yield ctx.violation(node, self.id, how)

        def walk(node: ast.AST, guarded: bool) -> Iterator[Violation]:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (
                        ast.FunctionDef,
                        ast.AsyncFunctionDef,
                        ast.Lambda,
                        ast.ClassDef,
                    ),
                ):
                    continue
                inner = guarded
                if isinstance(
                    child, (ast.With, ast.AsyncWith)
                ) and any(
                    _mentions_lock(item.context_expr)
                    for item in child.items
                ):
                    inner = True
                if not inner:
                    yield from self._check_node(
                        child, fn, declared, shared, emit
                    )
                yield from walk(child, inner)

        yield from walk(fn.node, False)

    def _check_node(self, node, fn, declared, shared, emit):
        label = f"worker-reachable `{fn.name}`"
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            targets = []
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared:
                scope = (
                    "global"
                    if target.id in _globals_of(fn.node)
                    else "nonlocal"
                )
                yield from emit(
                    node,
                    target.id,
                    f"{label} assigns {scope} `{target.id}` without "
                    "holding a lock",
                )
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                name = target.value.id
                if name in shared and not isinstance(
                    target.slice, ast.Slice
                ):
                    yield from emit(
                        node,
                        name,
                        f"{label} writes element(s) of shared "
                        f"`{name}` without a lock (give each worker "
                        "a disjoint slice, or lock)",
                    )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in shared
        ):
            name = node.func.value.id
            yield from emit(
                node,
                name,
                f"{label} mutates shared `{name}` via "
                f"`.{node.func.attr}(...)` without holding a lock",
            )

    @staticmethod
    def _captured_names(
        fn: FunctionNode, callgraph: CallGraph
    ) -> set[str]:
        """Names bound in the enclosing function scopes (closures)."""
        captured: set[str] = set()
        parts = fn.qualname.split(".")
        for depth in range(1, len(parts)):
            ancestor = f"{fn.module}:{'.'.join(parts[:depth])}"
            outer = callgraph.functions.get(ancestor)
            if outer is not None:
                captured |= _scope_bindings(outer.node)
        return captured


def _globals_of(fn: ast.AST) -> set[str]:
    out: set[str] = set()
    for child in _own_nodes(fn):
        if isinstance(child, ast.Global):
            out.update(child.names)
    return out
