"""RL001 — no float ``==``/``!=`` in the geometry and model packages.

The model's outputs are sums of products of floating-point areas and
probabilities; exact equality against a float literal is either dead
code (the value is never exactly hit) or a latent bug (it is hit only
on some platforms).  Comparisons must go through the tolerance helpers
in :mod:`repro.geometry.tolerance` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry
from .common import is_float_constant

__all__ = ["FloatEqualityRule"]


@registry.register
class FloatEqualityRule(Rule):
    """Flag ``==`` / ``!=`` comparisons against float literals."""

    id = "RL001"
    name = "float-equality"
    description = (
        "no float ==/!= in geometry/model code; use "
        "repro.geometry.tolerance.isclose / near_zero"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        if not ctx.in_any(ctx.config.float_eq_paths):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    is_float_constant(left) or is_float_constant(right)
                ):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield ctx.violation(
                        node,
                        self.id,
                        f"float `{symbol}` comparison; use tolerance helpers "
                        "(repro.geometry.tolerance.isclose/near_zero)",
                    )
                left = right
