"""RL011 — dead exports.

``__all__`` is the package's advertised API; a name that sits there
but is never imported anywhere — not by another source module, not by
tests, benchmarks, or tools — is either dead code or an API the repo
forgot to exercise.  Both are worth a finding: dead exports accrete
maintenance cost, and unexercised API is unverified API.

Usage is computed project-wide by :mod:`repro.analysis.graph`: every
``import``/``from … import`` in the analyzed tree *plus* the
configured consumer-only trees (``usage-paths``: tests, benchmarks,
tools, examples) counts, as do dotted attribute accesses on imported
project modules (``repro.obs.Tracer``) and star imports (which use
every export of their source).
"""

from __future__ import annotations

from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry
from ..graph import ProjectGraph

__all__ = ["DeadExportRule"]


def _module_used(project: ProjectGraph, module: str) -> bool:
    """Is the module itself imported (as a module object) anywhere?"""
    parent, _, stem = module.rpartition(".")
    if project.usage.is_used(parent, stem):
        return True
    return any(
        record.target == module
        for importer, records in project.imports.records.items()
        if importer != module
        for record in records
    )


@registry.register
class DeadExportRule(Rule):
    """Flag ``__all__`` entries never imported outside their module."""

    id = "RL011"
    name = "dead-exports"
    description = (
        "__all__ names must be imported somewhere in src/, tests/, "
        "benchmarks/, or tools/"
    )
    requires_project = True

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        project = ctx.project
        module = ctx.module_name
        if project is None or module is None:
            return
        table = project.symbols.get(module)
        if table is None or table.all_names is None:
            return
        for name, line in table.all_names:
            if project.usage.is_used(module, name):
                continue
            # A facade re-export is alive when its *origin* is used:
            # `repro/__init__.py` re-exporting BufferPool is not dead
            # while tests import it from repro.buffer directly.
            symbol = table.resolve(name)
            if symbol is not None and symbol.origin != module:
                if symbol.kind == "module" and _module_used(
                    project, symbol.origin
                ):
                    continue
                if symbol.kind == "def" and project.usage.is_used(
                    symbol.origin, symbol.attr
                ):
                    continue
            yield Violation(
                path=ctx.display_path,
                line=line,
                col=1,
                rule_id=self.id,
                message=(
                    f"`{name}` is exported in __all__ but never "
                    "imported outside this module"
                ),
            )
