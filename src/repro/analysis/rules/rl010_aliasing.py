"""RL010 — no in-place mutation of array parameters outside kernels.

The geometry and packing kernels are the sanctioned home of in-place
array operations (RL003 polices *them*); everywhere else, a function
that mutates an array it received — ``np.add(a, b, out=buf)``,
``x[:] = …``, ``x += …``, ``x.sort()`` — silently aliases its
caller's data, and the paper's figures stop being reproducible the
day two call sites share a buffer.

Outside the configured ``kernel-paths``, a parameter may therefore
not be the target of:

* a subscript store or augmented assignment (``p[i] = v``,
  ``p[:] += v``, ``p *= 2``);
* an in-place numpy method (``.sort()``, ``.fill()``, ``.resize()``,
  ``.partition()``, ``.put()``);
* an ``out=`` keyword argument.

The copy-then-own idiom is honoured: once a parameter is rebound by a
plain assignment (``p = np.asarray(p).copy()``), the function owns
the value and later mutation is fine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import ModuleContext, Rule, Violation, registry

__all__ = ["ArrayAliasingRule"]

_INPLACE_METHODS = frozenset(
    {"sort", "fill", "resize", "partition", "put", "itemset"}
)


def _params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = fn.args
    names = {
        arg.arg
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    }
    names.discard("self")
    names.discard("cls")
    return names


def _rebound(fn: ast.AST, params: set[str]) -> set[str]:
    """Parameters rebound by a plain assignment (copy-then-own)."""
    owned: set[str] = set()
    for node in _own_nodes(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in params:
                    owned.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if (
                isinstance(node.target, ast.Name)
                and node.target.id in params
            ):
                owned.add(node.target.id)
    return owned


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Every node of a scope, not descending into nested scopes."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


@registry.register
class ArrayAliasingRule(Rule):
    """Flag in-place mutation of parameters outside kernel paths."""

    id = "RL010"
    name = "array-aliasing"
    description = (
        "outside kernel-paths, functions must not mutate array "
        "parameters in place (out=, augmented assignment, .sort())"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        if ctx.in_any(ctx.config.kernel_paths):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Violation]:
        params = _params(fn) - _rebound(fn, _params(fn))
        if not params:
            return
        label = f"`{fn.name}`"
        for node in _own_nodes(fn):
            if isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Name) and target.id in params:
                    yield ctx.violation(
                        node,
                        self.id,
                        f"{label} mutates parameter `{target.id}` via "
                        "augmented assignment; copy first "
                        "(copy-then-own) or move this into a kernel "
                        "path",
                    )
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in params
                ):
                    yield ctx.violation(
                        node,
                        self.id,
                        f"{label} writes into parameter "
                        f"`{target.value.id}` in place; copy first or "
                        "move this into a kernel path",
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in params
                    ):
                        yield ctx.violation(
                            node,
                            self.id,
                            f"{label} writes into parameter "
                            f"`{target.value.id}` in place; copy "
                            "first or move this into a kernel path",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, label, params, node)

    def _check_call(
        self,
        ctx: ModuleContext,
        label: str,
        params: set[str],
        call: ast.Call,
    ) -> Iterator[Violation]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _INPLACE_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in params
        ):
            yield ctx.violation(
                call,
                self.id,
                f"{label} calls in-place `.{func.attr}()` on "
                f"parameter `{func.value.id}`; use the returning "
                "variant (np.sort, …) or copy first",
            )
        for keyword in call.keywords:
            if (
                keyword.arg == "out"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id in params
            ):
                yield ctx.violation(
                    call,
                    self.id,
                    f"{label} writes into parameter "
                    f"`{keyword.value.id}` via out=; allocate the "
                    "output locally or move this into a kernel path",
                )
