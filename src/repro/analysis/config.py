"""Configuration for reprolint, read from ``[tool.repro.analysis]``.

The analyzer must run on Python 3.10, where ``tomllib`` does not exist
and the environment is offline (no ``tomli`` wheel).  A minimal
fallback parser therefore handles the small TOML subset the config
block actually uses: string values, booleans, and (possibly
multi-line) arrays of strings inside one table.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields, replace
from pathlib import Path

__all__ = ["Config", "find_pyproject", "load_config"]

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]

_TABLE = ("tool", "repro", "analysis")


@dataclass(frozen=True)
class Config:
    """Resolved analyzer settings.

    Path scopes are lists of posix-path *fragments* matched as plain
    substrings (see :meth:`ModuleContext.in_any`), so they work from
    any checkout location.
    """

    paths: tuple[str, ...] = ("src",)
    """Default targets when the CLI is invoked without paths."""
    exclude: tuple[str, ...] = ()
    """Path fragments to skip entirely."""
    select: tuple[str, ...] | None = None
    """If set, only these rule ids run."""
    ignore: tuple[str, ...] = ()
    """Rule ids disabled globally."""
    float_eq_paths: tuple[str, ...] = ("repro/geometry/", "repro/model/")
    """Where RL001 (no float ==/!=) applies."""
    kernel_paths: tuple[str, ...] = ("repro/geometry/", "repro/packing/")
    """Where RL003 (kernel purity) applies."""
    experiment_paths: tuple[str, ...] = ("repro/experiments/",)
    """Where RL004 (experiment registration) applies."""
    rng_helper_paths: tuple[str, ...] = ()
    """Modules allowed to call ``default_rng()`` without a seed (RL007)."""
    usage_paths: tuple[str, ...] = ("tests", "benchmarks", "tools", "examples")
    """Consumer-only trees scanned (relative to the repo root) when
    building the export-usage index for RL011 — their imports count as
    usage, but no rules run on them."""
    dag_root: str = "repro"
    """The package whose immediate subpackages the canonical DAG
    (RL008) layers.  Modules outside it are not layered."""
    package_dag: tuple[str, ...] = (
        # The canonical dependency DAG, mirrored in
        # docs/ARCHITECTURE.md ("Dependency graph").  One entry per
        # subpackage: "pkg -> dep dep ..." ("pkg ->" for leaves).
        "geometry ->",
        "hilbert ->",
        "buffer ->",
        "obs ->",
        "analysis ->",
        "accel -> geometry obs",
        "rtree -> geometry obs",
        "datasets -> geometry",
        "packing -> geometry hilbert rtree obs",
        "model -> accel buffer geometry obs rtree",
        "queries -> accel geometry model",
        "simulation -> accel buffer model obs queries rtree",
        "serving -> buffer obs queries rtree simulation",
        "experiments -> buffer datasets geometry model obs packing "
        "queries rtree serving simulation",
    )
    """Allowed package-level import edges for RL008."""

    _KEY_MAP = {
        "paths": "paths",
        "exclude": "exclude",
        "select": "select",
        "ignore": "ignore",
        "float-eq-paths": "float_eq_paths",
        "kernel-paths": "kernel_paths",
        "experiment-paths": "experiment_paths",
        "rng-helper-paths": "rng_helper_paths",
        "usage-paths": "usage_paths",
        "dag-root": "dag_root",
        "package-dag": "package_dag",
    }

    @classmethod
    def from_mapping(cls, data: dict[str, object]) -> "Config":
        """Build a config from the raw ``[tool.repro.analysis]`` table."""
        known = {f.name for f in fields(cls)}
        kwargs: dict[str, object] = {}
        for key, value in data.items():
            attr = cls._KEY_MAP.get(key, key.replace("-", "_"))
            if attr not in known:
                raise ValueError(f"unknown reprolint config key: {key!r}")
            if isinstance(value, list):
                value = tuple(str(v) for v in value)
            kwargs[attr] = value
        return cls(**kwargs)  # type: ignore[arg-type]

    def override(self, **changes: object) -> "Config":
        """A copy with the given fields replaced (CLI overrides)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def find_pyproject(start: Path) -> Path | None:
    """Walk upward from ``start`` to the nearest ``pyproject.toml``."""
    for directory in [start, *start.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(pyproject: Path | None) -> Config:
    """Load the ``[tool.repro.analysis]`` table (defaults if absent)."""
    if pyproject is None or not pyproject.is_file():
        return Config()
    text = pyproject.read_text(encoding="utf-8")
    if tomllib is not None:
        data: dict[str, object] = tomllib.loads(text)
        table = data
        for part in _TABLE:
            nxt = table.get(part) if isinstance(table, dict) else None
            if not isinstance(nxt, dict):
                return Config()
            table = nxt
        return Config.from_mapping(table)
    return Config.from_mapping(_parse_table_fallback(text, ".".join(_TABLE)))


_HEADER_RE = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _parse_table_fallback(text: str, table_name: str) -> dict[str, object]:
    """Extract one TOML table without ``tomllib`` (Python 3.10 path).

    Supports exactly the shapes the analyzer config uses: ``key = "s"``,
    ``key = true/false``, and ``key = ["a", "b", ...]`` where the array
    may span multiple lines.  Anything fancier belongs on 3.11+.
    """
    lines = text.splitlines()
    in_table = False
    collected: list[str] = []
    for line in lines:
        header = _HEADER_RE.match(line)
        if header is not None:
            in_table = header.group("name").strip() == table_name
            continue
        if in_table:
            collected.append(line.split("#", 1)[0])

    data: dict[str, object] = {}
    buffer = ""
    key: str | None = None
    for line in collected:
        if key is None:
            if "=" not in line:
                continue
            key, _, rhs = line.partition("=")
            key = key.strip().strip('"')
            buffer = rhs.strip()
        else:
            buffer += " " + line.strip()
        if buffer.startswith("[") and not buffer.endswith("]"):
            continue  # multi-line array: keep accumulating
        data[key] = _parse_value_fallback(buffer)
        key, buffer = None, ""
    return data


def _parse_value_fallback(raw: str) -> object:
    raw = raw.strip()
    if raw.startswith("["):
        return [m.group(1) for m in _STRING_RE.finditer(raw)]
    if raw in ("true", "false"):
        return raw == "true"
    match = _STRING_RE.match(raw)
    if match is not None:
        return match.group(1)
    raise ValueError(f"unsupported TOML value in reprolint config: {raw!r}")
