"""reprolint — repo-specific static analysis for the reproduction.

The buffer model's conclusions rest on numerically delicate
probability sums (Eqs. 5–6) and on structural conventions — pure
geometry kernels, seeded RNGs, registered experiments — that nothing
in the type system enforces.  This package is the enforcement layer: a
stdlib-``ast`` rule framework with a CLI (``repro-analysis`` /
``python -m repro.analysis``) and a pytest gate that fails the suite
on any violation in ``src/``.

See ``docs/ANALYSIS.md`` for the rule catalogue and rationale.
"""

from __future__ import annotations

from . import rules as _rules  # noqa: F401  (import populates the registry)
from .config import Config, find_pyproject, load_config
from .core import (
    ModuleContext,
    Rule,
    Violation,
    check_module,
    iter_python_files,
    registry,
    run_analysis,
)
from .equations import PAPER_EQUATIONS, known_equation

__all__ = [
    "Config",
    "ModuleContext",
    "PAPER_EQUATIONS",
    "Rule",
    "Violation",
    "check_module",
    "find_pyproject",
    "iter_python_files",
    "known_equation",
    "load_config",
    "registry",
    "run_analysis",
]
