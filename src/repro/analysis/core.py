"""Core machinery of reprolint: rules, violations, pragmas, the runner.

The analyzer is a deliberately small framework over the stdlib ``ast``
module — no third-party dependencies, so it runs in the same offline
environment as the reproduction itself.  A *rule* inspects one parsed
module at a time and yields :class:`Violation` records; the runner
walks the configured paths, applies every selected rule, filters
suppressed findings and returns a deterministic, sorted report.

Suppression works through inline pragmas::

    x == 0.0  # reprolint: disable=RL001
    # reprolint: disable-file=RL006   (anywhere in the file)

``disable`` silences the named rules on its own line; ``disable-file``
silences them for the whole module.  ``disable=all`` is accepted in
both forms.  Every baseline pragma is an auditable marker of a
deliberate exception — grep for ``reprolint: disable`` to review them.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .config import Config
from .graph import ProjectGraph, build_project

__all__ = [
    "ModuleContext",
    "Rule",
    "RuleRegistry",
    "Violation",
    "check_module",
    "iter_python_files",
    "registry",
    "run_analysis",
]

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: ``path:line:col RLxxx message``."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render in the canonical ``file:line:col RLxxx message`` form."""
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by ``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class ModuleContext:
    """Everything a rule may look at for one module."""

    path: Path
    """Filesystem path of the module being checked."""
    display_path: str
    """Path as reported in violations (posix, relative when possible)."""
    source: str
    """Raw module source."""
    tree: ast.Module
    """Parsed AST."""
    config: Config
    """The active analyzer configuration."""
    project: ProjectGraph | None = None
    """Whole-program context (import/symbol/call graphs), present when
    the run was started through :func:`run_analysis` and at least one
    selected rule sets ``requires_project``.  Per-module invocations
    (:func:`check_module` without a project) leave it ``None``, and
    whole-program rules yield nothing."""

    @property
    def module_name(self) -> str | None:
        """This module's dotted name in the project graph, if known."""
        if self.project is None:
            return None
        info = self.project.module_at(self.path)
        return info.name if info is not None else None

    @property
    def stem(self) -> str:
        """Module filename without the ``.py`` suffix."""
        return self.path.stem

    def in_any(self, fragments: Iterable[str]) -> bool:
        """True if the module path matches any configured path fragment.

        Fragments are plain substrings of the posix path (``""`` matches
        everything), which keeps scoping config readable:
        ``"repro/geometry/"`` selects the geometry package wherever the
        repository is checked out.
        """
        posix = self.path.as_posix()
        return any(frag in posix for frag in fragments)

    def violation(self, node: ast.AST, rule_id: str, message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        )


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``id``/``name``/``description`` and implement
    :meth:`check`.  Rules must be stateless across modules — one
    instance is shared by the whole run.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    requires_project: bool = False
    """Set by whole-program rules: :func:`run_analysis` then builds a
    :class:`~repro.analysis.graph.ProjectGraph` once for the run and
    every :class:`ModuleContext` carries it in ``ctx.project``."""

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Yield every violation found in ``ctx``."""
        raise NotImplementedError
        yield  # pragma: no cover - makes the method a generator


class RuleRegistry:
    """Registry mapping rule ids to rule instances."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, cls: type[Rule]) -> type[Rule]:
        """Class decorator: instantiate and register ``cls``."""
        rule = cls()
        if not rule.id:
            raise ValueError(f"rule {cls.__name__} has no id")
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id}")
        self._rules[rule.id] = rule
        return cls

    def get(self, rule_id: str) -> Rule:
        """Look up one rule by id (raises ``KeyError`` if unknown)."""
        return self._rules[rule_id]

    def selected(self, config: Config) -> list[Rule]:
        """The rules enabled by ``config``, in id order."""
        ids = sorted(self._rules)
        if config.select is not None:
            unknown = [r for r in config.select if r not in self._rules]
            if unknown:
                raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
            ids = [r for r in ids if r in config.select]
        ids = [r for r in ids if r not in config.ignore]
        return [self._rules[r] for r in ids]

    def all_rules(self) -> list[Rule]:
        """Every registered rule, in id order."""
        return [self._rules[r] for r in sorted(self._rules)]


registry = RuleRegistry()
"""The process-wide rule registry (populated by :mod:`repro.analysis.rules`)."""


@dataclass
class _Suppressions:
    """Pragma state for one file."""

    file_rules: set[str] = field(default_factory=set)
    line_rules: dict[int, set[str]] = field(default_factory=dict)

    def suppresses(self, violation: Violation) -> bool:
        for rules in (self.file_rules, self.line_rules.get(violation.line, ())):
            if "all" in rules or violation.rule_id in rules:
                return True
        return False


def _parse_pragmas(source: str) -> _Suppressions:
    sup = _Suppressions()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        rules = {
            token.strip().lower() if token.strip().lower() == "all" else token.strip()
            for token in match.group("rules").split(",")
            if token.strip()
        }
        if match.group("kind") == "disable-file":
            sup.file_rules |= rules
        else:
            sup.line_rules.setdefault(lineno, set()).update(rules)
    return sup


def iter_python_files(paths: Iterable[Path], config: Config) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths``, honouring excludes."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            posix = candidate.as_posix()
            if any(frag and frag in posix for frag in config.exclude):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def _display_path(path: Path, root: Path | None) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def check_module(
    path: Path,
    config: Config,
    *,
    root: Path | None = None,
    project: ProjectGraph | None = None,
) -> list[Violation]:
    """Run every selected rule over one module and filter pragmas.

    When ``project`` is given (the :func:`run_analysis` path) the
    already-parsed AST is reused; otherwise the file is parsed here
    and whole-program rules see no project context.
    """
    display = _display_path(path, root)
    info = project.module_at(path) if project is not None else None
    if info is not None:
        source, tree = info.source, info.tree
    else:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [
                Violation(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule_id="E001",
                    message=f"syntax error: {exc.msg}",
                )
            ]
    ctx = ModuleContext(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        config=config,
        project=project,
    )
    suppressions = _parse_pragmas(source)
    violations: list[Violation] = []
    for rule in registry.selected(config):
        for violation in rule.check(ctx):
            if not suppressions.suppresses(violation):
                violations.append(violation)
    return violations


def _usage_files(config: Config, root: Path | None) -> list[Path]:
    """Consumer-only files for the export-usage index (RL011)."""
    base = root if root is not None else Path.cwd()
    roots = [base / fragment for fragment in config.usage_paths]
    return list(iter_python_files([p for p in roots if p.exists()], config))


def run_analysis(
    paths: Iterable[Path], config: Config, *, root: Path | None = None
) -> tuple[list[Violation], int]:
    """Analyze all of ``paths``.

    Returns the sorted violation list and the number of files checked.
    ``root`` anchors the relative paths used in reports (defaults to
    the current working directory).  When any selected rule is a
    whole-program rule, every file is parsed exactly once and a
    project graph is built over the parsed set before rules run.
    """
    files = list(iter_python_files(paths, config))
    project: ProjectGraph | None = None
    if any(rule.requires_project for rule in registry.selected(config)):
        project = build_project(
            files, usage_files=_usage_files(config, root), root=root
        )
    violations: list[Violation] = []
    for path in files:
        violations.extend(
            check_module(path, config, root=root, project=project)
        )
    violations.sort()
    return violations, len(files)
