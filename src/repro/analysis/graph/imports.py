"""The project import graph: who imports whom, and any cycles.

Edges are recorded per import statement with their line numbers (so
RL008 can point at the offending line) and with a ``toplevel`` flag:
imports inside function bodies are *deferred* — they do not execute at
import time, cannot create import-time cycles, and are the sanctioned
escape hatch for tooling that must reach across layers (the sanitizer
wraps runtime classes this way).  Cycle detection and layering
therefore consider module-level imports only.

Cycles come from Tarjan's strongly-connected-components algorithm
(iterative — analyzer recursion must not depend on project size),
reported as sorted member lists for deterministic output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .modules import ModuleInfo
from .symbols import _project_prefix, _resolve_relative

__all__ = ["ImportGraph", "ImportRecord", "build_import_graph", "find_cycles"]


@dataclass(frozen=True)
class ImportRecord:
    """One resolved project-internal import."""

    importer: str
    """Module containing the import statement."""
    target: str
    """Project module imported (longest-prefix resolution)."""
    raw: str
    """The dotted name as written (absolute form)."""
    lineno: int
    toplevel: bool
    """True when the import executes at module import time."""


@dataclass
class ImportGraph:
    """Project-internal import records, keyed by importer."""

    records: dict[str, list[ImportRecord]] = field(default_factory=dict)

    def edges(self, *, toplevel_only: bool = True) -> dict[str, set[str]]:
        """Importer → set of imported project modules."""
        out: dict[str, set[str]] = {}
        for importer, records in self.records.items():
            targets = {
                r.target
                for r in records
                if r.toplevel or not toplevel_only
            }
            out[importer] = targets
        return out

    def imports_of(self, module: str) -> list[ImportRecord]:
        """All project imports made by ``module`` (empty when none)."""
        return self.records.get(module, [])


def build_import_graph(modules: dict[str, ModuleInfo]) -> ImportGraph:
    """Resolve every import statement against the project module map."""
    graph = ImportGraph()
    for name, info in sorted(modules.items()):
        records: list[ImportRecord] = []
        for node, toplevel in _imports_with_depth(info.tree):
            if isinstance(node, ast.Import):
                raws = [alias.name for alias in node.names]
            else:
                base = _resolve_relative(
                    info.package, node.level, node.module
                )
                raws = []
                for alias in node.names:
                    if alias.name == "*":
                        raws.append(base)
                    elif f"{base}.{alias.name}" in modules:
                        # importing a submodule binds (and imports) it
                        raws.append(f"{base}.{alias.name}")
                    else:
                        raws.append(base)
            for raw in raws:
                target = _project_prefix(raw, modules)
                if target is None or target == name:
                    continue
                records.append(
                    ImportRecord(
                        importer=name,
                        target=target,
                        raw=raw,
                        lineno=node.lineno,
                        toplevel=toplevel,
                    )
                )
        if records:
            graph.records[name] = records
    return graph


def _imports_with_depth(
    tree: ast.Module,
) -> list[tuple[ast.Import | ast.ImportFrom, bool]]:
    """Every import node paired with whether it runs at module level."""
    out: list[tuple[ast.Import | ast.ImportFrom, bool]] = []
    stack: list[tuple[ast.AST, bool]] = [
        (stmt, True) for stmt in reversed(tree.body)
    ]
    while stack:
        node, toplevel = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            out.append((node, toplevel))
            continue
        inner = toplevel and not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, inner))
    return out


def find_cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Import cycles: every SCC with more than one member (or a
    self-loop), each sorted internally, cycles sorted by first member.

    Iterative Tarjan — deterministic because roots and successors are
    visited in sorted order.
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[str]] = []

    def strongconnect(root: str) -> None:
        work: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(edges.get(root, ()))))
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in edges.get(node, ()):
                    cycles.append(sorted(component))

    for node in sorted(edges):
        if node not in index:
            strongconnect(node)
    cycles.sort()
    return cycles
