"""An approximate, deterministic call graph over the project ASTs.

"Approximate" is doing honest work here: Python's dynamism makes a
sound static call graph impossible, so this one is built for the
concurrency rule's real question — *which project functions can run on
a worker thread?* — and resolves what can be resolved cheaply:

* direct calls to module-level functions, including names imported
  from other project modules (via the symbol tables);
* class instantiation → the class's ``__init__``;
* ``self.method()`` / ``cls.method()`` → the enclosing class's method;
* ``alias.func()`` where ``alias`` is an imported project module;
* ``obj.method()`` on an unknown receiver → *every* project class
  method of that name (the conservative fallback that lets
  ``stabber.stab(...)`` reach each stabber implementation);
* lambdas are first-class nodes (``outer.<lambda:LINE>``), so a
  lambda handed to ``pool.map`` carries its body's calls into the
  reachable set.

Submit sites — ``executor.submit(f, ...)`` / ``executor.map(f, ...)``
on a name bound to a ``ThreadPoolExecutor``/``ProcessPoolExecutor``
construction — are extracted here too, with their callable arguments
resolved to function nodes; RL009 walks reachability from them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .modules import ModuleInfo
from .symbols import SymbolTable

__all__ = ["CallGraph", "FunctionNode", "SubmitSite", "build_call_graph"]

_EXECUTOR_NAMES = frozenset(
    {"ThreadPoolExecutor", "ProcessPoolExecutor"}
)
_SUBMIT_METHODS = frozenset({"submit", "map"})


@dataclass(frozen=True)
class FunctionNode:
    """One function, method, or lambda in the project."""

    key: str
    """Global id: ``module:qualname``."""
    module: str
    qualname: str
    """Dotted path inside the module (``Class.method``,
    ``outer.inner``, ``outer.<lambda:12>``)."""
    node: ast.AST
    """The ``FunctionDef`` / ``AsyncFunctionDef`` / ``Lambda`` node."""
    lineno: int
    class_name: str | None = None
    """Immediately enclosing class, for methods."""

    @property
    def name(self) -> str:
        """The unqualified function name."""
        return self.qualname.rpartition(".")[2]


@dataclass(frozen=True)
class SubmitSite:
    """One ``executor.submit``/``executor.map`` call."""

    module: str
    caller: str
    """Key of the function containing the call ('' at module level)."""
    method: str
    """``submit`` or ``map``."""
    lineno: int
    targets: tuple[str, ...]
    """Resolved function keys of the submitted callable."""


@dataclass
class CallGraph:
    """Function nodes, call edges, and executor submit sites."""

    functions: dict[str, FunctionNode] = field(default_factory=dict)
    edges: dict[str, set[str]] = field(default_factory=dict)
    submit_sites: list[SubmitSite] = field(default_factory=list)

    def calls_from(self, key: str) -> set[str]:
        """Keys of functions ``key`` may call."""
        return self.edges.get(key, set())

    def reachable(self, roots: list[str]) -> set[str]:
        """Every function key reachable from ``roots`` (inclusive)."""
        seen: set[str] = set()
        frontier = [key for key in roots if key in self.functions]
        while frontier:
            key = frontier.pop()
            if key in seen:
                continue
            seen.add(key)
            frontier.extend(sorted(self.edges.get(key, ())))
        return seen

    def submit_roots(self) -> list[str]:
        """All callables handed to any executor, sorted and unique."""
        out: set[str] = set()
        for site in self.submit_sites:
            out.update(site.targets)
        return sorted(out)


def build_call_graph(
    modules: dict[str, ModuleInfo],
    symbols: dict[str, SymbolTable],
) -> CallGraph:
    """Collect nodes, then resolve call and submit edges."""
    graph = CallGraph()
    method_index: dict[str, list[str]] = {}
    for name, info in sorted(modules.items()):
        _collect_functions(graph, method_index, info)
    for name, info in sorted(modules.items()):
        resolver = _Resolver(
            graph, method_index, symbols.get(name), name
        )
        resolver.resolve_module(info.tree)
    for key in graph.edges:
        graph.edges[key] = set(graph.edges[key])
    graph.submit_sites.sort(key=lambda s: (s.module, s.lineno))
    return graph


def _collect_functions(
    graph: CallGraph,
    method_index: dict[str, list[str]],
    info: ModuleInfo,
) -> None:
    def visit(node: ast.AST, prefix: str, class_name: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                key = f"{info.name}:{qualname}"
                graph.functions[key] = FunctionNode(
                    key=key,
                    module=info.name,
                    qualname=qualname,
                    node=child,
                    lineno=child.lineno,
                    class_name=class_name,
                )
                if class_name is not None:
                    method_index.setdefault(child.name, []).append(key)
                visit(child, f"{qualname}.", None)
            elif isinstance(child, ast.Lambda):
                qualname = f"{prefix}<lambda:{child.lineno}>"
                key = f"{info.name}:{qualname}"
                graph.functions[key] = FunctionNode(
                    key=key,
                    module=info.name,
                    qualname=qualname,
                    node=child,
                    lineno=child.lineno,
                    class_name=class_name,
                )
                visit(child, f"{qualname}.", None)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.", child.name)
            else:
                visit(child, prefix, class_name)

    visit(info.tree, "", None)


class _Resolver:
    """Resolves the calls of one module into graph edges."""

    def __init__(
        self,
        graph: CallGraph,
        method_index: dict[str, list[str]],
        table: SymbolTable | None,
        module: str,
    ) -> None:
        self.graph = graph
        self.method_index = method_index
        self.table = table
        self.module = module
        self._module_tree: ast.Module | None = None

    def resolve_module(self, tree: ast.Module) -> None:
        self._module_tree = tree
        self._walk_scope(tree, caller="", prefix="", class_name=None)

    # -- scope walking --------------------------------------------------

    def _walk_scope(
        self,
        node: ast.AST,
        *,
        caller: str,
        prefix: str,
        class_name: str | None,
    ) -> None:
        """Attribute calls in this scope to ``caller``; recurse into
        nested defs with their own keys."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                self._walk_scope(
                    child,
                    caller=f"{self.module}:{qualname}",
                    prefix=f"{qualname}.",
                    class_name=class_name,
                )
            elif isinstance(child, ast.Lambda):
                qualname = f"{prefix}<lambda:{child.lineno}>"
                self._walk_scope(
                    child,
                    caller=f"{self.module}:{qualname}",
                    prefix=f"{qualname}.",
                    class_name=class_name,
                )
            elif isinstance(child, ast.ClassDef):
                self._walk_scope(
                    child,
                    caller=caller,
                    prefix=f"{prefix}{child.name}.",
                    class_name=child.name,
                )
            else:
                if isinstance(child, ast.Call):
                    self._record_call(
                        child, caller, prefix, class_name
                    )
                self._walk_scope(
                    child,
                    caller=caller,
                    prefix=prefix,
                    class_name=class_name,
                )

    # -- call resolution ------------------------------------------------

    def _record_call(
        self,
        call: ast.Call,
        caller: str,
        prefix: str,
        class_name: str | None,
    ) -> None:
        submit = self._submit_site(call, caller, prefix, class_name)
        if submit is not None:
            self.graph.submit_sites.append(submit)
        for target in self._resolve_expr(call.func, prefix, class_name):
            self.graph.edges.setdefault(caller, set()).add(target)

    def _resolve_expr(
        self,
        expr: ast.expr,
        prefix: str,
        class_name: str | None,
    ) -> list[str]:
        """Function keys an expression may call (or refer to)."""
        if isinstance(expr, ast.Lambda):
            return [f"{self.module}:{prefix}<lambda:{expr.lineno}>"]
        if isinstance(expr, ast.Name):
            return self._resolve_name(expr.id, prefix)
        if isinstance(expr, ast.Attribute):
            return self._resolve_attribute(expr, class_name)
        return []

    def _resolve_name(self, name: str, prefix: str) -> list[str]:
        # innermost enclosing scopes first: outer.inner sees outer.helper
        parts = prefix.rstrip(".").split(".") if prefix else []
        for depth in range(len(parts), -1, -1):
            scoped = ".".join(parts[:depth] + [name])
            key = f"{self.module}:{scoped}"
            if key in self.graph.functions:
                return [key]
            init = f"{self.module}:{scoped}.__init__"
            if init in self.graph.functions:
                return [init]
        symbol = self.table.resolve(name) if self.table else None
        if symbol is None or symbol.kind != "def" or not symbol.attr:
            return []
        return self._project_function(symbol.origin, symbol.attr)

    def _resolve_attribute(
        self, expr: ast.Attribute, class_name: str | None
    ) -> list[str]:
        base, attr = expr.value, expr.attr
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls") and class_name is not None:
                key = f"{self.module}:{class_name}.{attr}"
                if key in self.graph.functions:
                    return [key]
                return sorted(self.method_index.get(attr, []))
            symbol = self.table.resolve(base.id) if self.table else None
            if symbol is not None and symbol.kind == "module":
                return self._project_function(symbol.origin, attr)
            if symbol is not None and symbol.kind == "external":
                return []
        # unknown receiver: every project method of that name
        return sorted(self.method_index.get(attr, []))

    def _project_function(self, module: str, attr: str) -> list[str]:
        key = f"{module}:{attr}"
        if key in self.graph.functions:
            return [key]
        init = f"{module}:{attr}.__init__"
        if init in self.graph.functions:
            return [init]
        return []

    # -- submit sites ---------------------------------------------------

    def _submit_site(
        self,
        call: ast.Call,
        caller: str,
        prefix: str,
        class_name: str | None,
    ) -> SubmitSite | None:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _SUBMIT_METHODS
            and call.args
        ):
            return None
        if not self._is_executor(func.value, caller):
            return None
        targets = self._resolve_expr(call.args[0], prefix, class_name)
        return SubmitSite(
            module=self.module,
            caller=caller,
            method=func.attr,
            lineno=call.lineno,
            targets=tuple(sorted(targets)),
        )

    def _is_executor(self, expr: ast.expr, caller: str) -> bool:
        """Does ``expr`` plausibly evaluate to an executor?

        True for a direct ``ThreadPoolExecutor(...)`` construction and
        for any name that is assigned (or ``with``-bound) from one
        anywhere in the enclosing function or module — an
        over-approximation that errs on the side of finding sites.
        """
        if _constructs_executor(expr):
            return True
        if not isinstance(expr, ast.Name):
            return False
        scopes: list[ast.AST] = []
        fn = self.graph.functions.get(caller)
        if fn is not None:
            scopes.append(fn.node)
        if self._module_tree is not None:
            scopes.append(self._module_tree)
        for scope in scopes:
            if expr.id in _executor_names(scope):
                return True
        return False


def _constructs_executor(expr: ast.expr) -> bool:
    """Does this expression (or a branch of it) build an executor?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            callee = node.func
            name = (
                callee.attr
                if isinstance(callee, ast.Attribute)
                else callee.id
                if isinstance(callee, ast.Name)
                else None
            )
            if name in _EXECUTOR_NAMES:
                return True
    return False


def _executor_names(scope: ast.AST) -> set[str]:
    """Names bound to an executor construction inside ``scope``."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _constructs_executor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.withitem) and _constructs_executor(
            node.context_expr
        ):
            if isinstance(node.optional_vars, ast.Name):
                names.add(node.optional_vars.id)
    return names
