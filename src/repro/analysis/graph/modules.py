"""Module discovery: files on disk → named, parsed project modules.

A whole-program pass needs a stable identity for every module so the
import graph, symbol tables and call graph can cross-reference each
other.  The identity is the *dotted module name* derived from the
package structure on disk (``src/repro/obs/spans.py`` →
``repro.obs.spans``), computed by walking up through ``__init__.py``
parents — the same resolution the interpreter performs, so relative
imports resolve identically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

__all__ = ["ModuleInfo", "module_name_for", "parse_modules"]


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed project module."""

    name: str
    """Dotted module name (``repro.obs.spans``)."""
    path: Path
    """Filesystem path of the source file."""
    display_path: str
    """Path as reported in violations (posix, relative when possible)."""
    source: str
    """Raw module source."""
    tree: ast.Module
    """Parsed AST (shared with the per-module rules)."""

    @property
    def is_package(self) -> bool:
        """True for ``__init__.py`` modules."""
        return self.path.name == "__init__.py"

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]


def module_name_for(path: Path) -> str:
    """The dotted module name of ``path``, from its package ancestry.

    Walks upward while an ``__init__.py`` sibling exists, exactly like
    the import system: the first directory *without* one is the import
    root.  A lone script outside any package is just its stem.
    """
    path = path.resolve()
    parts: list[str] = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.append(directory.name)
        parent = directory.parent
        if parent == directory:  # filesystem root
            break
        directory = parent
    parts.reverse()
    return ".".join(parts) if parts else path.stem


def parse_modules(
    paths: list[Path], *, root: Path | None = None
) -> dict[str, ModuleInfo]:
    """Parse ``paths`` into a name-keyed module map.

    Files that fail to parse are silently skipped — the per-module
    pass reports the syntax error with its location, and a broken
    module contributes nothing reliable to a whole-program graph
    anyway.  On a (pathological) dotted-name collision the module
    whose posix path sorts first wins, keeping the map deterministic.
    """
    modules: dict[str, ModuleInfo] = {}
    for path in sorted(paths, key=lambda p: p.as_posix()):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError):
            continue
        name = module_name_for(path)
        if name in modules:
            continue
        modules[name] = ModuleInfo(
            name=name,
            path=path,
            display_path=_display_path(path, root),
            source=source,
            tree=tree,
        )
    return modules


def _display_path(path: Path, root: Path | None) -> str:
    base = root if root is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()
