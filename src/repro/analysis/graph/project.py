"""The :class:`ProjectGraph` bundle handed to whole-program rules.

``run_analysis`` builds one per run (parsing every file exactly once)
and threads it through ``ModuleContext.project``; a rule that sets
``requires_project = True`` can then reach the import graph, symbol
tables, call graph, and the export-usage index from any module's
context.

The usage index deserves a note: dead-export analysis (RL011) must
see *consumers* that are not themselves analyzed — tests, benchmarks,
tools.  Those trees are parsed as "usage-only" files: their imports
and module-attribute accesses are indexed, but they contribute no
modules, no rules run on them, and their own exports are not checked.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .callgraph import CallGraph, build_call_graph
from .imports import ImportGraph, build_import_graph
from .modules import ModuleInfo, module_name_for, parse_modules
from .symbols import (
    SymbolTable,
    _project_prefix,
    _resolve_relative,
    build_symbol_tables,
)

__all__ = ["ProjectGraph", "UsageIndex", "build_project"]


@dataclass
class UsageIndex:
    """Where exported names are consumed, across the whole repo."""

    used: set[tuple[str, str]] = field(default_factory=set)
    """(defining module, name) pairs imported or attribute-accessed by
    some *other* module."""
    star_imported: set[str] = field(default_factory=set)
    """Modules star-imported by another module: every export used."""

    def is_used(self, module: str, name: str) -> bool:
        """Is ``module.name`` consumed anywhere outside ``module``?"""
        return (
            (module, name) in self.used or module in self.star_imported
        )


@dataclass
class ProjectGraph:
    """Everything a whole-program rule may look at."""

    modules: dict[str, ModuleInfo]
    imports: ImportGraph
    symbols: dict[str, SymbolTable]
    callgraph: CallGraph
    usage: UsageIndex
    by_path: dict[Path, ModuleInfo] = field(default_factory=dict)

    def module_at(self, path: Path) -> ModuleInfo | None:
        """The project module living at ``path``, if any."""
        return self.by_path.get(path.resolve())


def build_project(
    files: list[Path],
    *,
    usage_files: list[Path] = (),
    root: Path | None = None,
) -> ProjectGraph:
    """Parse, then build every graph layer over the parsed modules."""
    modules = parse_modules(list(files), root=root)
    symbols = build_symbol_tables(modules)
    graph = ProjectGraph(
        modules=modules,
        imports=build_import_graph(modules),
        symbols=symbols,
        callgraph=build_call_graph(modules, symbols),
        usage=_build_usage(modules, list(usage_files)),
        by_path={
            info.path.resolve(): info for info in modules.values()
        },
    )
    return graph


def _build_usage(
    modules: dict[str, ModuleInfo], usage_files: list[Path]
) -> UsageIndex:
    index = UsageIndex()
    consumers: list[tuple[str, str, ast.Module]] = [
        (info.name, info.package, info.tree)
        for info in modules.values()
    ]
    for path in sorted(set(usage_files), key=lambda p: p.as_posix()):
        try:
            tree = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )
        except (OSError, SyntaxError):
            continue
        name = module_name_for(path)
        package = name if path.name == "__init__.py" else name.rpartition(".")[0]
        consumers.append((name, package, tree))
    for consumer, package, tree in consumers:
        _index_consumer(index, modules, consumer, package, tree)
    return index


def _index_consumer(
    index: UsageIndex,
    modules: dict[str, ModuleInfo],
    consumer: str,
    package: str,
    tree: ast.Module,
) -> None:
    """Record every project name ``consumer`` imports or touches."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                project = _project_prefix(alias.name, modules)
                if project is None:
                    continue
                bound = alias.asname or alias.name.partition(".")[0]
                aliases[bound] = alias.name if alias.asname else bound
                # `import repro.obs` marks repro's attribute `obs` used
                _mark_chain(index, modules, alias.name.split("."), consumer)
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(package, node.level, node.module)
            project = _project_prefix(target, modules)
            if project is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    if target in modules:
                        index.star_imported.add(target)
                    continue
                if target != consumer:
                    index.used.add((target, alias.name))
                if f"{target}.{alias.name}" in modules:
                    aliases[alias.asname or alias.name] = (
                        f"{target}.{alias.name}"
                    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            chain = _attribute_chain(node)
            if chain is None:
                continue
            base = aliases.get(chain[0])
            if base is not None:
                chain = base.split(".") + chain[1:]
            _mark_chain(index, modules, chain, consumer)


def _mark_chain(
    index: UsageIndex,
    modules: dict[str, ModuleInfo],
    chain: list[str],
    consumer: str,
) -> None:
    """For ``a.b.c``, mark ``c`` used on the longest module prefix —
    and each intermediate submodule used on its parent package."""
    for end in range(len(chain) - 1, 0, -1):
        prefix = ".".join(chain[:end])
        if prefix in modules:
            if prefix != consumer:
                index.used.add((prefix, chain[end]))
            return


def _attribute_chain(node: ast.Attribute) -> list[str] | None:
    parts: list[str] = []
    cursor: ast.expr = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    parts.reverse()
    return parts
