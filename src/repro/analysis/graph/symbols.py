"""Per-module symbol tables and export resolution.

The call graph and the dead-export rule both need to answer "what
does this name mean in this module?" — including names that arrive
through ``from pkg import name``, aliased module imports, and
``from pkg import *``.  A :class:`SymbolTable` maps every module-level
binding to its origin; star imports are resolved to the source
module's export list by fixpoint iteration (star chains and even star
cycles terminate because the resolved sets only ever grow).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .modules import ModuleInfo

__all__ = ["Symbol", "SymbolTable", "build_symbol_tables"]


@dataclass(frozen=True)
class Symbol:
    """Origin of one module-level name.

    ``kind`` is ``"module"`` (the name is a module object, ``origin``
    its dotted name), ``"external"`` (imported from outside the
    project), or ``"def"`` (defined here or imported from a project
    module: ``origin`` is the defining module, ``attr`` the name
    there).
    """

    kind: str
    origin: str
    attr: str = ""

    @property
    def qualified(self) -> str:
        """``module.attr`` (or just the module name) for messages."""
        return f"{self.origin}.{self.attr}" if self.attr else self.origin


@dataclass
class SymbolTable:
    """Module-level names of one module and where they come from."""

    module: str
    names: dict[str, Symbol] = field(default_factory=dict)
    all_names: list[tuple[str, int]] | None = None
    """Literal ``__all__`` entries with their line numbers (None when
    the module declares no analyzable ``__all__``)."""
    star_sources: list[str] = field(default_factory=list)
    """Project modules star-imported at module level."""

    def exports(self) -> list[str]:
        """Names ``from module import *`` would bind, sorted.

        The declared ``__all__`` when present, else every public
        binding — the import system's own fallback rule.
        """
        if self.all_names is not None:
            return sorted({name for name, _ in self.all_names})
        return sorted(
            name for name in self.names if not name.startswith("_")
        )

    def resolve(self, name: str) -> Symbol | None:
        """The origin of ``name`` in this module, if bound at top level."""
        return self.names.get(name)


def _resolve_relative(package: str, level: int, module: str | None) -> str:
    """Absolute dotted target of a (possibly relative) import."""
    if level == 0:
        return module or ""
    parts = package.split(".") if package else []
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    if module:
        parts += module.split(".")
    return ".".join(parts)


def _project_prefix(target: str, modules: dict[str, ModuleInfo]) -> str | None:
    """Longest prefix of ``target`` that names a project module."""
    parts = target.split(".")
    for end in range(len(parts), 0, -1):
        prefix = ".".join(parts[:end])
        if prefix in modules:
            return prefix
    return None


def build_symbol_tables(
    modules: dict[str, ModuleInfo],
) -> dict[str, SymbolTable]:
    """Symbol tables for every module, star imports fully resolved."""
    tables = {
        name: _collect_table(info, modules)
        for name, info in sorted(modules.items())
    }
    _resolve_stars(tables)
    return tables


def _collect_table(
    info: ModuleInfo, modules: dict[str, ModuleInfo]
) -> SymbolTable:
    table = SymbolTable(module=info.name)
    for stmt in _toplevel_statements(info.tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                bound = alias.asname or alias.name.partition(".")[0]
                origin = alias.name if alias.asname else bound
                project = _project_prefix(alias.name, modules)
                kind = "module" if project else "external"
                table.names[bound] = Symbol(kind=kind, origin=origin)
        elif isinstance(stmt, ast.ImportFrom):
            target = _resolve_relative(
                info.package, stmt.level, stmt.module
            )
            project = _project_prefix(target, modules)
            for alias in stmt.names:
                if alias.name == "*":
                    if project == target and project is not None:
                        table.star_sources.append(target)
                    continue
                bound = alias.asname or alias.name
                if project is None:
                    table.names[bound] = Symbol(
                        kind="external", origin=target, attr=alias.name
                    )
                elif f"{target}.{alias.name}" in modules:
                    # `from pkg import submodule` binds a module object
                    table.names[bound] = Symbol(
                        kind="module", origin=f"{target}.{alias.name}"
                    )
                else:
                    table.names[bound] = Symbol(
                        kind="def", origin=target, attr=alias.name
                    )
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            table.names[stmt.name] = Symbol(
                kind="def", origin=info.name, attr=stmt.name
            )
        elif isinstance(stmt, ast.Assign):
            for target_node in stmt.targets:
                for name in _bound_names(target_node):
                    if name == "__all__":
                        table.all_names = _string_elements(stmt.value)
                    else:
                        table.names[name] = Symbol(
                            kind="def", origin=info.name, attr=name
                        )
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            for name in _bound_names(stmt.target):
                table.names[name] = Symbol(
                    kind="def", origin=info.name, attr=name
                )
    return table


def _resolve_stars(tables: dict[str, SymbolTable]) -> None:
    """Fixpoint: propagate star-imported names into importing tables.

    Names already bound locally win over star imports (matching
    runtime semantics, where the star import executes first and later
    definitions shadow it — bindings here are keyed by name, so an
    explicit binding is never overwritten).
    """
    changed = True
    while changed:
        changed = False
        for table in tables.values():
            for source in table.star_sources:
                source_table = tables.get(source)
                if source_table is None:
                    continue
                for name in source_table.exports():
                    if name in table.names:
                        continue
                    symbol = source_table.resolve(name)
                    if symbol is None:
                        # exported via __all__ but bound dynamically
                        symbol = Symbol(
                            kind="def", origin=source, attr=name
                        )
                    table.names[name] = symbol
                    changed = True


def _toplevel_statements(tree: ast.Module) -> list[ast.stmt]:
    """Module-level statements, descending into ``if``/``try`` blocks
    (the usual homes of conditional imports) but not into defs."""
    out: list[ast.stmt] = []
    stack: list[ast.stmt] = list(reversed(tree.body))
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        if isinstance(stmt, ast.If):
            stack.extend(reversed(stmt.body + stmt.orelse))
        elif isinstance(stmt, ast.Try):
            blocks = stmt.body + stmt.orelse + stmt.finalbody
            for handler in stmt.handlers:
                blocks += handler.body
            stack.extend(reversed(blocks))
    return out


def _bound_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in target.elts:
            out.extend(_bound_names(element))
        return out
    if isinstance(target, ast.Starred):
        return _bound_names(target.value)
    return []


def _string_elements(node: ast.expr) -> list[tuple[str, int]] | None:
    """Literal string list/tuple elements with lines (else ``None``)."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: list[tuple[str, int]] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        out.append((element.value, element.lineno))
    return out
