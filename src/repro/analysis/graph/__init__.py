"""Whole-program analysis graphs for reprolint.

PR 1's rules see one module at a time; the concurrency and layering
rules (RL008–RL012) need the *project*: which module imports which,
what every name resolves to, and what is reachable from a thread-pool
submit site.  This subpackage builds those views from the same parsed
ASTs the per-module rules use — stdlib only, deterministic (all
iteration orders are sorted), and cheap enough to run on every lint
(`tools/bench_analysis.py` holds the whole-program pass under 10 s).

Layers, bottom up:

* :mod:`modules` — module discovery and dotted-name assignment;
* :mod:`symbols` — per-module symbol tables, ``__all__``/public
  exports, and ``from … import *`` resolution (fixpoint);
* :mod:`imports` — the project import graph, package-level edges, and
  import-cycle detection (Tarjan SCC over module-level imports);
* :mod:`callgraph` — the approximate call graph: function/method
  nodes, name- and attribute-resolved call edges, executor submit
  sites, and reachability;
* :mod:`project` — :class:`ProjectGraph`, the bundle handed to rules
  through ``ModuleContext.project``, plus the export-usage index that
  RL011 builds over ``src``/``tests``/``benchmarks``/``tools``.
"""

from __future__ import annotations

from .callgraph import CallGraph, FunctionNode, SubmitSite
from .imports import ImportGraph, ImportRecord, find_cycles
from .modules import ModuleInfo, module_name_for, parse_modules
from .project import ProjectGraph, UsageIndex, build_project
from .symbols import SymbolTable, build_symbol_tables

__all__ = [
    "CallGraph",
    "FunctionNode",
    "ImportGraph",
    "ImportRecord",
    "ModuleInfo",
    "ProjectGraph",
    "SubmitSite",
    "SymbolTable",
    "UsageIndex",
    "build_project",
    "build_symbol_tables",
    "find_cycles",
    "module_name_for",
    "parse_modules",
]
