"""Command-line front end: ``repro-analysis [paths] [options]``.

Exit status: 0 when the tree is clean (or every finding is covered by
the ``--baseline`` file), 1 when *new* violations are found, 2 on
usage errors.  Formats:

``text``
    One ``file:line:col RLxxx message`` line per violation —
    greppable and editor-clickable.
``json``
    The same records plus a summary, for tooling and CI artifacts.
``github``
    GitHub Actions workflow commands (``::error file=…``), so new
    findings annotate the offending lines directly in a PR diff.

``--select`` accepts ranges: ``--select RL001-RL012`` expands to
every registered rule in the numeric range.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from . import rules as _rules  # noqa: F401  (import populates the registry)
from .baseline import apply_baseline, load_baseline, write_baseline
from .config import Config, find_pyproject, load_config
from .core import Violation, registry, run_analysis

__all__ = ["build_parser", "expand_select", "format_github", "main"]

_RANGE_RE = re.compile(r"^(?P<prefix>[A-Za-z]+)(?P<lo>\d+)-(?P=prefix)?(?P<hi>\d+)$")


def expand_select(tokens: tuple[str, ...]) -> tuple[str, ...]:
    """Expand ``RL001-RL012``-style ranges to registered rule ids."""
    registered = [rule.id for rule in registry.all_rules()]
    out: list[str] = []
    for token in tokens:
        match = _RANGE_RE.match(token)
        if match is None:
            out.append(token)
            continue
        prefix = match.group("prefix")
        lo, hi = int(match.group("lo")), int(match.group("hi"))
        width = len(match.group("lo"))
        wanted = {f"{prefix}{i:0{width}d}" for i in range(lo, hi + 1)}
        expanded = [r for r in registered if r in wanted]
        if not expanded:
            raise ValueError(f"rule range matches nothing: {token!r}")
        out.extend(expanded)
    return tuple(dict.fromkeys(out))


def format_github(violation: Violation) -> str:
    """One GitHub Actions ``::error`` workflow command per finding."""
    message = violation.message.replace("%", "%25").replace("\n", "%0A")
    return (
        f"::error file={violation.path},line={violation.line},"
        f"col={violation.col},title={violation.rule_id}::{message}"
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: from pyproject)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids or ranges (RL001-RL012) to run",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="accepted-violations file: exit 0 unless NEW findings "
        "appear beyond it",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the current findings as the accepted baseline "
        "and exit 0",
    )
    parser.add_argument(
        "--pyproject",
        metavar="PATH",
        help="pyproject.toml to read [tool.repro.analysis] from "
        "(default: nearest ancestor of the working directory)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _resolve_config(
    args: argparse.Namespace,
) -> tuple[Config, Path | None]:
    """The effective config, and the analysis root (pyproject's home).

    Anchoring the root at the pyproject keeps reported paths and the
    usage index stable no matter where the CLI is invoked from — a
    baseline written in CI must match one written from an editor.
    """
    pyproject = (
        Path(args.pyproject) if args.pyproject else find_pyproject(Path.cwd())
    )
    config = load_config(pyproject)
    overrides: dict[str, object] = {}
    if args.select:
        overrides["select"] = expand_select(
            tuple(
                token.strip()
                for token in args.select.split(",")
                if token.strip()
            )
        )
    if args.ignore:
        overrides["ignore"] = tuple(
            token.strip() for token in args.ignore.split(",") if token.strip()
        )
    if overrides:
        config = config.override(**overrides)
    return config, pyproject.parent if pyproject else None


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-analysis`` / ``python -m repro.analysis``."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in registry.all_rules():
            print(f"{rule.id}  {rule.name}: {rule.description}")
        return 0

    try:
        config, root = _resolve_config(args)
    except ValueError as exc:
        parser.error(str(exc))

    paths = [Path(p) for p in (args.paths or config.paths)]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(str(p) for p in missing)}")

    try:
        violations, n_files = run_analysis(paths, config, root=root)
    except ValueError as exc:  # unknown rule id in --select
        parser.error(str(exc))

    if args.write_baseline:
        entries = write_baseline(Path(args.write_baseline), violations)
        print(
            f"reprolint: wrote {entries} baseline entr"
            f"{'y' if entries == 1 else 'ies'} "
            f"({len(violations)} finding(s)) to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    matched = 0
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load baseline: {exc}")
        violations, matched = apply_baseline(violations, baseline)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": n_files,
                    "baseline_matched": matched,
                    "violations": [v.to_dict() for v in violations],
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            if args.format == "github":
                print(format_github(violation))
            else:
                print(violation.format())
        noun = "file" if n_files == 1 else "files"
        suffix = f" ({matched} baselined)" if matched else ""
        if violations:
            print(
                f"reprolint: {len(violations)} new violation(s) in "
                f"{n_files} {noun} checked{suffix}",
                file=sys.stderr,
            )
        else:
            print(
                f"reprolint: {n_files} {noun} clean{suffix}",
                file=sys.stderr,
            )
    return 1 if violations else 0
