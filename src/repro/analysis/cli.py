"""Command-line front end: ``repro-analysis [paths] --format text|json``.

Exit status: 0 when the tree is clean, 1 when violations are found,
2 on usage errors.  The text format is one ``file:line:col RLxxx
message`` line per violation — greppable and editor-clickable; the
JSON format carries the same records plus a summary for tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import rules as _rules  # noqa: F401  (import populates the registry)
from .config import Config, find_pyproject, load_config
from .core import registry, run_analysis

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: from pyproject)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--pyproject",
        metavar="PATH",
        help="pyproject.toml to read [tool.repro.analysis] from "
        "(default: nearest ancestor of the working directory)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _resolve_config(args: argparse.Namespace) -> Config:
    pyproject = (
        Path(args.pyproject) if args.pyproject else find_pyproject(Path.cwd())
    )
    config = load_config(pyproject)
    overrides: dict[str, object] = {}
    if args.select:
        overrides["select"] = tuple(
            token.strip() for token in args.select.split(",") if token.strip()
        )
    if args.ignore:
        overrides["ignore"] = tuple(
            token.strip() for token in args.ignore.split(",") if token.strip()
        )
    return config.override(**overrides) if overrides else config


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-analysis`` / ``python -m repro.analysis``."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in registry.all_rules():
            print(f"{rule.id}  {rule.name}: {rule.description}")
        return 0

    try:
        config = _resolve_config(args)
    except ValueError as exc:
        parser.error(str(exc))

    paths = [Path(p) for p in (args.paths or config.paths)]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(str(p) for p in missing)}")

    try:
        violations, n_files = run_analysis(paths, config)
    except ValueError as exc:  # unknown rule id in --select
        parser.error(str(exc))

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": n_files,
                    "violations": [v.to_dict() for v in violations],
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.format())
        noun = "file" if n_files == 1 else "files"
        if violations:
            print(
                f"reprolint: {len(violations)} violation(s) in {n_files} "
                f"{noun} checked",
                file=sys.stderr,
            )
        else:
            print(f"reprolint: {n_files} {noun} clean", file=sys.stderr)
    return 1 if violations else 0
