"""Opt-in shared-state sanitizer: the dynamic half of RL009.

The static rule reasons about *code*; this module watches *objects*.
When installed (``REPRO_SANITIZE=1`` in the environment, or an
explicit :func:`install`), the mutable runtime classes that matter —
:class:`~repro.buffer.base.BufferPool`,
:class:`~repro.buffer.base.BufferStats`, and
:class:`~repro.obs.spans.Tracer` — are patched in place so that
unsynchronized cross-thread mutation raises :class:`SanitizerError`
at the exact write, instead of silently corrupting a counter and
shifting a figure by a fraction nobody can bisect.

Mechanics:

* **Thread affinity** (pool + stats): each instance is stamped with
  its creating thread; any attribute write (stats) or ``request()``
  (pool) from a different thread raises.  Objects are not locked to
  a thread forever — :func:`adopt` transfers ownership explicitly,
  which is itself a synchronization statement in the code.
* **Lock discipline** (tracer, telemetry sink): spans legitimately
  finish on many threads, so affinity is the wrong check.  Instead
  the tracer's shared containers (``_finished``, ``_threads``) are
  replaced with guards that assert ``self._lock`` is held during
  every mutation.  The telemetry sink
  (:class:`~repro.obs.telemetry.TelemetrySink`) gets the same
  treatment: its sliding-window list mutates only inside the tick
  path, which must hold the sink lock — a tick that mutates the
  window without it raises at the exact ``append``/``pop``.
* **Lock guards** (sharded pool): a
  :class:`~repro.buffer.sharded.ShardedBufferPool` hands each shard's
  plain pool to *many* threads by design — the shard lock, not thread
  affinity, is the synchronization statement.  :func:`guard`
  registers a lock as an object's guard; every subsequent mutation
  check requires that lock to be held instead of checking affinity.
  ``ShardedBufferPool.__init__`` is patched to register each shard's
  pool and stats with the shard's lock, so reaching around the
  sharded pool into ``_pools[s]`` without holding ``_locks[s]``
  raises at the exact ``request()``/counter write.
* **Grant discipline** (shared memory): the sharded sweep's
  :class:`~repro.simulation.shard.SharedArray` hands workers
  :class:`~repro.simulation.shard.WriteGrant` slices.  Two grants
  overlapping within one phase means two processes may write the same
  bytes — ``grant()`` is patched to raise at issue time, before a
  worker ever runs.  ``dispose()`` (close + unlink) is patched to
  reject any process other than the creator: a forked child inherits
  ``owner=True`` by copy, and a child unlink would yank the segment
  out from under every sibling.  A *pid-addressed* grant (the serving
  worker topology's per-worker stats slots) additionally refuses to
  map writable in any process other than its addressee —
  ``WriteGrant.writable`` is patched to check at map time.
* Ownership lives in a module-level table keyed by ``id(obj)``
  (``BufferStats`` has ``__slots__`` and accepts no new attributes).
  The patched ``__init__`` re-stamps on construction, so id reuse
  after garbage collection cannot mis-attribute an object.

The patches are applied to the classes *in place* (method assignment,
not subclassing), so instances created before :func:`install` — and
references imported anywhere — are covered.  :func:`uninstall`
restores the originals; both are idempotent.

All runtime imports are deferred into the install path: ``analysis``
is a leaf package in the canonical DAG (RL008) and must not import
``buffer``/``obs`` at module level.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable

__all__ = [
    "ENV_FLAG",
    "SanitizerError",
    "adopt",
    "enabled_by_env",
    "guard",
    "install",
    "is_installed",
    "uninstall",
]

ENV_FLAG = "REPRO_SANITIZE"

_owner_lock = threading.Lock()
_owners: dict[int, int] = {}
_guards: dict[int, threading.Lock] = {}
_saved: list[tuple[type, str, Any]] = []
_installed = False


class SanitizerError(RuntimeError):
    """An unsynchronized cross-thread mutation was detected."""


def enabled_by_env() -> bool:
    """Is the sanitizer requested via ``REPRO_SANITIZE``?"""
    return os.environ.get(ENV_FLAG, "").strip() in ("1", "true", "on")


def is_installed() -> bool:
    """Is the sanitizer currently active?"""
    return _installed


def adopt(obj: object) -> None:
    """Transfer ownership of ``obj`` to the calling thread.

    The explicit hand-off for legitimate single-owner migrations
    (build on the main thread, then give the object to a worker).
    Clears any lock guard: adoption reverts to thread affinity.
    """
    with _owner_lock:
        _guards.pop(id(obj), None)
        _owners[id(obj)] = threading.get_ident()


def guard(obj: object, lock: threading.Lock) -> None:
    """Declare ``lock`` the guard of ``obj``.

    From now on mutations of ``obj`` are legal from *any* thread as
    long as ``lock`` is held at the moment of the write — the check
    for objects shared by design (a sharded pool's per-shard pools
    and stats).  Replaces any thread-affinity stamp.
    """
    with _owner_lock:
        _owners.pop(id(obj), None)
        _guards[id(obj)] = lock


def _stamp(obj: object) -> None:
    with _owner_lock:
        # drop a stale guard left by a freed object that reused this id
        _guards.pop(id(obj), None)
        _owners[id(obj)] = threading.get_ident()


def _check_owner(obj: object, action: str) -> None:
    me = threading.get_ident()
    with _owner_lock:
        lock = _guards.get(id(obj))
        owner = None if lock is not None else _owners.setdefault(id(obj), me)
    if lock is not None:
        if not lock.locked():
            raise SanitizerError(
                f"unguarded {action}: {type(obj).__name__} is "
                "registered to a guard lock that is not held — "
                "acquire the shard's lock (or go through "
                "ShardedBufferPool.request) instead of touching the "
                "shard directly"
            )
        return
    if owner != me:
        raise SanitizerError(
            f"unsynchronized cross-thread {action}: "
            f"{type(obj).__name__} owned by thread {owner} "
            f"mutated from thread {me}; guard it with a lock or "
            "adopt() it explicitly"
        )


class _GuardedList(list):
    """A list that insists its lock is held during every mutation."""

    __slots__ = ("_guard_lock", "_owner_name")

    def __init__(self, lock: threading.Lock, owner_name: str) -> None:
        super().__init__()
        self._guard_lock = lock
        self._owner_name = owner_name

    def _assert_held(self, action: str) -> None:
        if not self._guard_lock.locked():
            raise SanitizerError(
                f"{self._owner_name} mutated via {action} without "
                "holding its lock"
            )

    def append(self, item: Any) -> None:
        self._assert_held("append")
        super().append(item)

    def extend(self, items: Any) -> None:
        self._assert_held("extend")
        super().extend(items)

    def clear(self) -> None:
        self._assert_held("clear")
        super().clear()

    def pop(self, *args: Any) -> Any:
        self._assert_held("pop")
        return super().pop(*args)


class _GuardedDict(dict):
    """A dict that insists its lock is held during every mutation."""

    __slots__ = ("_guard_lock", "_owner_name")

    def __init__(self, lock: threading.Lock, owner_name: str) -> None:
        super().__init__()
        self._guard_lock = lock
        self._owner_name = owner_name

    def _assert_held(self, action: str) -> None:
        if not self._guard_lock.locked():
            raise SanitizerError(
                f"{self._owner_name} mutated via {action} without "
                "holding its lock"
            )

    def __setitem__(self, key: Any, value: Any) -> None:
        self._assert_held("__setitem__")
        super().__setitem__(key, value)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._assert_held("setdefault")
        return super().setdefault(key, default)

    def clear(self) -> None:
        self._assert_held("clear")
        super().clear()


def _save(cls: type, attr: str) -> None:
    _saved.append((cls, attr, cls.__dict__.get(attr)))


def _wrap_init(cls: type) -> None:
    """Stamp ownership at construction, before any attribute lands."""
    original: Callable = cls.__init__
    _save(cls, "__init__")

    def __init__(self: object, *args: Any, **kwargs: Any) -> None:
        _stamp(self)
        original(self, *args, **kwargs)

    __init__.__wrapped__ = original  # type: ignore[attr-defined]
    cls.__init__ = __init__  # type: ignore[misc]


def _patch_stats(cls: type) -> None:
    """Every attribute write on a stats object checks thread affinity."""
    _wrap_init(cls)
    _save(cls, "__setattr__")

    def __setattr__(self: object, name: str, value: Any) -> None:
        _check_owner(self, f"write of .{name}")
        object.__setattr__(self, name, value)

    cls.__setattr__ = __setattr__  # type: ignore[assignment]


def _patch_pool(cls: type) -> None:
    """``request()`` — the pool's mutating entry point — checks
    affinity once per call (policy structures mutate inside it)."""
    _wrap_init(cls)
    original: Callable = cls.request
    _save(cls, "request")

    def request(self: object, page: Any) -> bool:
        _check_owner(self, "request()")
        return original(self, page)

    request.__wrapped__ = original  # type: ignore[attr-defined]
    cls.request = request  # type: ignore[assignment]


def _patch_tracer(cls: type) -> None:
    """Replace the tracer's shared containers with lock-asserting ones."""
    original: Callable = cls.__init__
    _save(cls, "__init__")

    def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
        original(self, *args, **kwargs)
        finished = _GuardedList(self._lock, "Tracer._finished")
        list.extend(finished, self._finished)
        self._finished = finished
        threads = _GuardedDict(self._lock, "Tracer._threads")
        dict.update(threads, self._threads)
        self._threads = threads

    __init__.__wrapped__ = original  # type: ignore[attr-defined]
    cls.__init__ = __init__  # type: ignore[misc]


def _patch_shard(cls: type) -> None:
    """Overlapping write grants and non-creator unlinks raise.

    ``grant()`` consults the per-phase ledger *before* delegating: an
    overlap means two worker processes were about to share writable
    bytes.  ``dispose()`` compares the calling pid against the
    recorded creator — ``owner`` is a plain attribute and survives a
    fork, so the flag alone cannot distinguish parent from child.
    """
    original_grant: Callable = cls.grant
    _save(cls, "grant")

    def grant(self: Any, lo: int, hi: int, *, pid: int | None = None) -> Any:
        for got_lo, got_hi in self._grants:
            if lo < got_hi and got_lo < hi:
                raise SanitizerError(
                    f"overlapping write grant [{lo}, {hi}) on shared "
                    f"segment: [{got_lo}, {got_hi}) is already granted "
                    "this phase — two workers would race on the "
                    "intersection; release_grants() at the barrier "
                    "first"
                )
        return original_grant(self, lo, hi, pid=pid)

    grant.__wrapped__ = original_grant  # type: ignore[attr-defined]
    cls.grant = grant  # type: ignore[assignment]

    original_dispose: Callable = cls.dispose
    _save(cls, "dispose")

    def dispose(self: Any) -> None:
        if os.getpid() != self.created_pid:
            raise SanitizerError(
                f"shared segment disposed from pid {os.getpid()} but "
                f"created by pid {self.created_pid}; only the creating "
                "process may unlink (RL012 ownership)"
            )
        original_dispose(self)

    dispose.__wrapped__ = original_dispose  # type: ignore[attr-defined]
    cls.dispose = dispose  # type: ignore[assignment]


def _patch_grant(cls: type) -> None:
    """A pid-addressed grant mapped writable by any other process raises.

    The serving worker topology hands each long-lived shard worker a
    grant over its own stats slots, addressed to the worker's pid at
    issue time (the parent knows it after ``start()``).  The unpatched
    ``writable()`` would happily map the slice in *any* process that
    holds the (picklable) grant; this check turns the address into an
    enforced ownership statement — the cross-process sibling of the
    thread-affinity stamp.
    """
    original: Callable = cls.writable
    _save(cls, "writable")

    def writable(self: Any) -> Any:
        if self.pid is not None and os.getpid() != self.pid:
            raise SanitizerError(
                f"write grant [{self.lo}, {self.hi}) is addressed to "
                f"pid {self.pid} but was mapped writable from pid "
                f"{os.getpid()}; a pid-addressed slice belongs to "
                "exactly one worker process"
            )
        return original(self)

    writable.__wrapped__ = original  # type: ignore[attr-defined]
    cls.writable = writable  # type: ignore[assignment]


def _patch_telemetry(cls: type) -> None:
    """Replace the sink's sliding window with a lock-asserting list.

    The window is touched only by :meth:`TelemetrySink.
    _build_tick_locked`, whose contract is "caller holds the sink
    lock" — this patch turns that docstring contract into a runtime
    check, exactly as for the tracer's containers.
    """
    original: Callable = cls.__init__
    _save(cls, "__init__")

    def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
        original(self, *args, **kwargs)
        window = _GuardedList(self._lock, "TelemetrySink._window_deltas")
        list.extend(window, self._window_deltas)
        self._window_deltas = window

    __init__.__wrapped__ = original  # type: ignore[attr-defined]
    cls.__init__ = __init__  # type: ignore[misc]


def _patch_sharded(cls: type) -> None:
    """Register every shard's pool and stats with the shard's lock.

    Runs *after* the sharded pool's own ``__init__`` (which builds the
    shard pools — each freshly affinity-stamped by the patched
    ``BufferPool.__init__``) and converts them to lock-guarded:
    mutating a shard from any thread is legal exactly while its lock
    is held, which is what ``ShardedBufferPool.request`` guarantees.
    """
    original: Callable = cls.__init__
    _save(cls, "__init__")

    def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
        original(self, *args, **kwargs)
        for pool, lock in zip(self._pools, self._locks):
            guard(pool, lock)
            guard(pool.stats, lock)

    __init__.__wrapped__ = original  # type: ignore[attr-defined]
    cls.__init__ = __init__  # type: ignore[misc]


def install() -> None:
    """Patch the runtime classes in place (idempotent)."""
    global _installed
    if _installed:
        return
    from repro.buffer.base import BufferPool, BufferStats
    from repro.buffer.sharded import ShardedBufferPool
    from repro.obs.spans import Tracer
    from repro.obs.telemetry import TelemetrySink
    from repro.simulation.shard import SharedArray, WriteGrant

    _patch_stats(BufferStats)
    _patch_pool(BufferPool)
    _patch_sharded(ShardedBufferPool)
    _patch_tracer(Tracer)
    _patch_telemetry(TelemetrySink)
    _patch_shard(SharedArray)
    _patch_grant(WriteGrant)
    _installed = True


def uninstall() -> None:
    """Restore every patched attribute (idempotent)."""
    global _installed
    if not _installed:
        return
    for cls, attr, value in reversed(_saved):
        if value is None:
            # the attribute was inherited, not defined on the class
            if attr in cls.__dict__:
                delattr(cls, attr)
        else:
            setattr(cls, attr, value)
    _saved.clear()
    with _owner_lock:
        _owners.clear()
        _guards.clear()
    _installed = False
