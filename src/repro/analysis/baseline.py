"""Violation baselines: gate CI on *new* findings only.

Introducing a whole-program rule to a living tree surfaces existing
debt; blocking every PR on all of it at once would only teach people
to disable the analyzer.  The committed baseline
(``analysis-baseline.json``) records the findings the project has
explicitly accepted; the CLI subtracts them and fails only when a
finding is not covered.

Matching is by ``(path, rule, message)`` with multiplicity — line
numbers are deliberately excluded, because unrelated edits move
accepted findings around and a baseline that rots with every reflow
is worse than none.  Fixing a baselined finding leaves a stale entry
behind; regenerate with ``--write-baseline`` to shed it.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from .core import Violation

__all__ = [
    "SCHEMA",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

SCHEMA = "repro-analysis-baseline/1"

_Key = tuple[str, str, str]


def _key(violation: Violation) -> _Key:
    return (violation.path, violation.rule_id, violation.message)


def write_baseline(path: Path, violations: Iterable[Violation]) -> int:
    """Write a baseline accepting ``violations``; returns entry count."""
    counts = Counter(_key(v) for v in violations)
    entries = [
        {"path": p, "rule": rule, "message": message, "count": count}
        for (p, rule, message), count in sorted(counts.items())
    ]
    payload = {"schema": SCHEMA, "entries": entries}
    path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return len(entries)


def load_baseline(path: Path) -> Counter:
    """Load accepted-violation multiplicities from a baseline file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: not a {SCHEMA!r} baseline "
            f"(schema={data.get('schema')!r})"
        )
    counts: Counter = Counter()
    for entry in data.get("entries", []):
        key = (
            str(entry["path"]),
            str(entry["rule"]),
            str(entry["message"]),
        )
        counts[key] += int(entry.get("count", 1))
    return counts


def apply_baseline(
    violations: list[Violation], baseline: Counter
) -> tuple[list[Violation], int]:
    """Split findings into (new, matched-count) against a baseline.

    Each accepted entry absorbs up to ``count`` identical findings;
    any excess — a finding repeated more often than the baseline
    allows — is new.
    """
    budget = Counter(baseline)
    new: list[Violation] = []
    matched = 0
    for violation in violations:
        key = _key(violation)
        if budget[key] > 0:
            budget[key] -= 1
            matched += 1
        else:
            new.append(violation)
    return new, matched
